//! `pim-tradeoffs` — command-line front end to the PIM design-tradeoff models.
//!
//! ```text
//! pim-tradeoffs list    [--spec FILE|DIR]
//! pim-tradeoffs run     figure5 table1 [--jobs N] [--out artifacts/] [--seed S]
//! pim-tradeoffs run     --all [--spec FILE|DIR] [--jobs N] [--out artifacts/] [--seed S]
//!                       [--cache DIR] [--no-cache] [--shard I/N]
//! pim-tradeoffs serve   [--addr HOST:PORT] [--cache DIR] [--jobs N] [--seed S]
//!                       [--workers N] [--timeout-ms MS] [--drain-ms MS]
//! pim-tradeoffs cache   stats|gc|clear DIR [--max-mib N]
//! pim-tradeoffs cache   merge DEST SRC... | pull DEST SRC
//! pim-tradeoffs spec    check FILE|DIR...
//! pim-tradeoffs audit   [--root DIR] [--format human|json]
//! pim-tradeoffs point   --nodes 32 --wl 0.8 [--pmiss 0.1] [--mix 0.3] [--simulate]
//! pim-tradeoffs sweep   [--max-nodes 64] [--simulate]
//! pim-tradeoffs nb      [--pmiss 0.1] [--mix 0.3] [--lwp-cycle 5] [--tml 30] [--tmh 90]
//! pim-tradeoffs parcels --parallelism 16 --latency 1000 --remote 0.4 [--nodes 8] [--overhead 4]
//! ```
//!
//! `list` and `run` front the scenario registry in `pim-harness`: `run --all --out
//! artifacts/` regenerates every paper figure/table/ablation as versioned JSON in one
//! deterministic batch. `--cache DIR` makes the batch incremental: unit results are
//! served from and stored to the content-addressed cache (see `pim_harness::cache`),
//! so a warm re-run recomputes only what a spec or seed edit actually changed, and
//! `cache stats|gc|clear` maintains the directory. `--shard I/N` executes only the
//! I-th of N deterministic unit partitions (see `pim_harness::shard`), so N
//! processes — or N machines — can split one sweep; `cache merge` reunites their
//! caches, after which an unsharded run is all-hits and writes the complete
//! artifacts byte-identically. `--spec` loads declarative
//! scenario specs (schema v1 JSON, see `pim_harness::spec` and `examples/specs/`)
//! into the registry beside the builtins; `spec check` validates spec files without
//! running them. Argument parsing is intentionally hand-rolled (no CLI dependency):
//! every flag is `--name value`, unknown flags are an error, and `--help` prints the
//! grammar above.

use pim_repro::pim_analytic::{AnalyticModel, ParcelAnalyticModel};
use pim_repro::pim_audit::{self, diag, diag::Diagnostic};
use pim_repro::pim_core::prelude::*;
use pim_repro::pim_harness::prelude::*;
use pim_repro::pim_parcels::prelude::*;
use pim_repro::pim_workload::InstructionMix;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
pim-tradeoffs — PIM architecture design-tradeoff models (SC 2004 reproduction)

USAGE:
  pim-tradeoffs list    [--spec FILE|DIR]
  pim-tradeoffs run     SCENARIO... [--spec FILE|DIR] [--jobs N] [--out DIR] [--seed S]
  pim-tradeoffs run     --all [--spec FILE|DIR] [--jobs N] [--out DIR] [--seed S]
  pim-tradeoffs run     --spec FILE|DIR [--jobs N] [--out DIR] [--seed S]
  pim-tradeoffs run     ... [--cache DIR] [--no-cache] [--shard I/N]
  pim-tradeoffs serve   [--addr HOST:PORT] [--cache DIR] [--jobs N] [--seed S] [--quiet 1]
                        [--workers N] [--timeout-ms MS] [--drain-ms MS]
  pim-tradeoffs cache   stats DIR | gc DIR [--max-mib N] | clear DIR
  pim-tradeoffs cache   merge DEST SRC... | pull DEST SRC
  pim-tradeoffs spec    check FILE|DIR...
  pim-tradeoffs audit   [--root DIR] [--format human|json]
  pim-tradeoffs point   --nodes N --wl FRACTION [--pmiss P] [--mix M] [--simulate]
  pim-tradeoffs sweep   [--max-nodes N] [--simulate]
  pim-tradeoffs nb      [--pmiss P] [--mix M] [--lwp-cycle NS] [--tml CYCLES] [--tmh CYCLES]
  pim-tradeoffs parcels --parallelism P --latency CYCLES --remote FRACTION
                        [--nodes N] [--overhead CYCLES]

`list` names every registered scenario. `run` executes scenarios in parallel worker
threads and either prints their JSON reports (no --out) or writes one artifact per
scenario plus a manifest under DIR; artifacts are byte-identical for a given --seed
whatever --jobs is. `--cache DIR` makes the run incremental: per-unit results are
served from and stored to a content-addressed cache, so a warm re-run recomputes only
what changed (the manifest records per-scenario hits/misses); `--no-cache` forces a
full recompute, and `cache stats|gc|clear` maintains a cache directory. `--shard
I/N` runs only the I-th of N deterministic unit partitions (1-based; requires
--cache or --out): N shard invocations split one sweep across processes or
machines, `cache merge DEST SRC...` copies their cache entries into DEST (`cache
pull DEST SRC` is the one-source form), and a final unsharded run over the merged
cache is all-hits and writes artifacts byte-identical to a single-process run.
`gc --max-mib 0` is a deliberate full-eviction pass: a zero-byte budget puts every
entry over budget.
`serve` turns the sweep into a service: POST a spec document to /run (the same JSON
`run --spec FILE` reads; `?seed=S` overrides the base seed, `?progress=1` streams
ndjson progress) and get back the report, byte-identical to the CLI's output for the
same spec and seed. All requests share one persistent scheduler — warm results are
served from memory and the `--cache` directory, and concurrent submissions that
overlap deduplicate per unit, computing each grid point exactly once (--quiet 1
silences the per-request stderr log). Connections are handled by a bounded pool of
--workers threads over a bounded pending queue: at saturation new connections get
503 + Retry-After instead of stacking threads, silent clients are reaped after
--timeout-ms, GET /metrics exposes the service counters, and SIGTERM/SIGINT drains
gracefully (stop accepting, finish in-flight work up to --drain-ms, exit 0 with a
summary on stderr; /healthz reports 503 draining meanwhile).
`--spec` loads user-defined scenario specs (schema v1 JSON; see examples/specs/) into the
registry beside the 13 builtins; `run --spec DIR` with no scenario names runs exactly
the spec-defined scenarios, and `spec check` validates spec files without running
anything. `audit` runs the determinism & purity lint pass over the workspace sources
(the same checks CI gates on; see the pim-audit crate) and fails on any finding.
Run a model subcommand with no arguments to use the paper's Table 1 defaults.";

/// Parsed `--flag value` arguments.
struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `--flag value` pairs plus bare positional arguments (scenario names).
    fn parse_mixed(raw: &[String]) -> Result<(Vec<String>, Args), String> {
        let mut flags = HashMap::new();
        let mut positionals = Vec::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                positionals.push(arg.clone());
                continue;
            };
            // A repeated flag is always a mistake (a typo'd sweep script, a stale
            // alias): reject it by name instead of silently letting the last
            // occurrence win.
            if name == "simulate" || name == "help" || name == "all" || name == "no-cache" {
                if flags.insert(name.to_string(), "true".to_string()).is_some() {
                    return Err(format!("flag --{name} given more than once"));
                }
                continue;
            }
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            if flags.insert(name.to_string(), value.clone()).is_some() {
                return Err(format!("flag --{name} given more than once"));
            }
        }
        Ok((positionals, Args { flags }))
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got '{v}'")),
        }
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown flag --{key}"));
            }
        }
        Ok(())
    }
}

/// The builtin registry, augmented with every spec named by `--spec` (a file or a
/// directory of `*.json`). Returns the registry plus the spec-defined names.
fn registry_with_specs(args: &Args) -> Result<(Registry, Vec<String>), String> {
    let mut registry = Registry::builtin();
    let mut spec_names = Vec::new();
    if let Some(path) = args.flags.get("spec") {
        // File-aware registration: a name collision between two spec files names
        // both paths, not just the duplicated scenario name.
        spec_names = register_spec_files(&mut registry, std::path::Path::new(path))?;
    }
    Ok((registry, spec_names))
}

fn cmd_list(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["spec"])?;
    let (registry, _) = registry_with_specs(args)?;
    for scenario in registry.iter() {
        println!("{:<24} {}", scenario.name(), scenario.description());
    }
    Ok(())
}

fn cmd_run(scenarios: &[String], args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "all", "jobs", "out", "seed", "spec", "cache", "no-cache", "shard",
    ])?;
    let (registry, spec_names) = registry_with_specs(args)?;
    if args.has("all") && !scenarios.is_empty() {
        return Err("pass scenario names or --all, not both".into());
    }
    let names: Vec<String> = if args.has("all") {
        registry.names().iter().map(|s| s.to_string()).collect()
    } else if !scenarios.is_empty() {
        scenarios.to_vec()
    } else {
        // `run --spec DIR` with no names runs exactly the spec-defined scenarios.
        spec_names
    };
    if names.is_empty() {
        return Err("run needs scenario names, --all, or --spec (see `pim-tradeoffs list`)".into());
    }
    // `--no-cache` beats `--cache` so a wrapper script's standing cache flag can be
    // overridden for one forced-recompute run.
    let cache_dir = if args.has("no-cache") {
        None
    } else {
        args.flags.get("cache").map(std::path::PathBuf::from)
    };
    let shard = match args.flags.get("shard") {
        Some(s) => Some(ShardSpec::parse(s)?),
        None => None,
    };
    let opts = BatchOptions {
        jobs: args.get_usize("jobs", 0)?,
        seeds: SeedPolicy::new(args.get_u64("seed", DEFAULT_SEED)?),
        out_dir: args.flags.get("out").map(std::path::PathBuf::from),
        cache_dir,
        shard,
    };
    let outcome = run_batch(&registry, &names, &opts)?;
    if outcome.cache_enabled {
        let (mut hits, mut misses, mut recomputed) = (0, 0, 0);
        for c in &outcome.cache_counts {
            hits += c.hits;
            misses += c.misses;
            recomputed += c.recomputed;
        }
        eprintln!("cache: {hits} hit(s), {misses} miss(es), {recomputed} recomputed");
    }
    if let Some(shard) = outcome.shard {
        // A sharded run has no reports to print — its results live in the cache
        // (and the partial artifacts when --out is set); summarize the partition.
        for s in &outcome.shard_scenarios {
            println!(
                "{:<20} shard {shard}: executed {} of {} unit(s)",
                s.scenario,
                s.executed.len(),
                s.units_total
            );
        }
        for path in &outcome.written {
            eprintln!("wrote {}", path.display());
        }
        return Ok(());
    }
    if opts.out_dir.is_some() {
        for path in &outcome.written {
            eprintln!("wrote {}", path.display());
        }
        for report in &outcome.reports {
            let metrics: Vec<String> = report
                .metrics
                .iter()
                .map(|m| format!("{}={:.6}", m.name, m.value))
                .collect();
            println!(
                "{:<20} {} table(s){}{}",
                report.scenario,
                report.tables.len(),
                if metrics.is_empty() { "" } else { "; " },
                metrics.join(", ")
            );
        }
    } else if let [report] = outcome.reports.as_slice() {
        print!("{}", report.to_json());
    } else {
        let mut json = serde_json::to_string_pretty(&outcome.reports)
            .map_err(|e| format!("could not serialize reports: {e}"))?;
        json.push('\n');
        print!("{json}");
    }
    Ok(())
}

/// `cache stats|gc|clear DIR` / `cache merge DEST SRC...` / `cache pull DEST SRC`:
/// inspect, maintain and assemble unit-result cache directories.
fn cmd_cache(positionals: &[String], args: &Args) -> Result<(), String> {
    args.reject_unknown(&["max-mib"])?;
    let Some((sub, rest)) = positionals.split_first() else {
        return Err(
            "cache needs a subcommand: `cache stats|gc|clear DIR`, `cache merge DEST SRC...` \
             or `cache pull DEST SRC`"
                .into(),
        );
    };
    // The assembly verbs take multiple directories; handle them before the
    // single-directory maintenance verbs below.
    match sub.as_str() {
        "merge" => {
            let Some((dest, sources)) = rest.split_first() else {
                return Err("cache merge needs a destination and at least one source: \
                            `cache merge DEST SRC...`"
                    .into());
            };
            if sources.is_empty() {
                return Err("cache merge needs at least one source directory".into());
            }
            let sources: Vec<std::path::PathBuf> =
                sources.iter().map(std::path::PathBuf::from).collect();
            return print_merge(cache_merge(std::path::Path::new(dest), &sources)?);
        }
        "pull" => {
            let [dest, src] = rest else {
                return Err(
                    "cache pull needs exactly a destination and one source: `cache pull DEST SRC`"
                        .into(),
                );
            };
            let sources = vec![std::path::PathBuf::from(src)];
            return print_merge(cache_merge(std::path::Path::new(dest), &sources)?);
        }
        _ => {}
    }
    let [dir] = rest else {
        return Err(format!("cache {sub} needs exactly one cache directory"));
    };
    let dir = std::path::Path::new(dir);
    match sub.as_str() {
        "stats" => {
            let stats = pim_repro::pim_harness::cache::cache_stats(dir)?;
            println!("entries : {}", stats.entries);
            println!("bytes   : {}", stats.bytes);
            for (scenario, n) in &stats.per_scenario {
                println!("  {scenario:<32} {n}");
            }
            Ok(())
        }
        "gc" => {
            // `--max-mib 0` is a deliberate full-eviction pass (budget of zero
            // bytes: every entry is over budget), and huge values must not wrap
            // into a tiny budget that silently evicts everything.
            let budget = match args.flags.get("max-mib") {
                Some(_) => {
                    let mib = args.get_u64("max-mib", 0)?;
                    Some(
                        mib.checked_mul(1024 * 1024)
                            .ok_or_else(|| format!("--max-mib {mib} overflows the byte budget"))?,
                    )
                }
                None => None,
            };
            let out = pim_repro::pim_harness::cache::cache_gc(dir, budget)?;
            println!(
                "scanned {} entr{}; removed {} invalid, {} over budget; {} bytes kept",
                out.scanned,
                if out.scanned == 1 { "y" } else { "ies" },
                out.removed_invalid,
                out.removed_for_size,
                out.bytes_after
            );
            Ok(())
        }
        "clear" => {
            let removed = pim_repro::pim_harness::cache::cache_clear(dir)?;
            println!(
                "removed {removed} entr{}",
                if removed == 1 { "y" } else { "ies" }
            );
            Ok(())
        }
        other => Err(format!(
            "unknown cache subcommand '{other}' (expected stats, gc, clear, merge or pull)"
        )),
    }
}

/// `serve`: run the sweep service — spec submissions over HTTP, executed on one
/// persistent unit pool with warm in-memory results, the on-disk unit cache and
/// single-flight deduplication shared across every client (see
/// `pim_harness::serve`). Prints the bound address (the way to learn the port
/// after `--addr host:0`) and then serves until killed.
fn cmd_serve(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "addr",
        "cache",
        "jobs",
        "seed",
        "quiet",
        "workers",
        "timeout-ms",
        "drain-ms",
    ])?;
    let opts = ServeOptions {
        addr: args
            .flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8787".to_string()),
        cache_dir: args.flags.get("cache").map(std::path::PathBuf::from),
        jobs: args.get_usize("jobs", 0)?,
        seed: args.get_u64("seed", DEFAULT_SEED)?,
        log: args.flags.get("quiet").map(String::as_str) != Some("1"),
        workers: args.get_usize("workers", 0)?,
        timeout_ms: args.get_u64("timeout-ms", 30_000)?,
        drain_ms: args.get_u64("drain-ms", 5_000)?,
        // The CLI owns the process, so SIGTERM/SIGINT become a graceful
        // drain (stop accepting, finish in-flight work, exit 0).
        handle_signals: true,
        ..ServeOptions::default()
    };
    let server = SweepServer::bind(&opts)?;
    println!("serving on {}", server.local_addr()?);
    // Port discovery must not race the first client: flush before accepting.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let summary = server.serve_forever()?;
    eprintln!("serve: {summary}");
    Ok(())
}

/// Print a [`MergeOutcome`] summary line (shared by `cache merge` and `cache pull`).
fn print_merge(out: MergeOutcome) -> Result<(), String> {
    println!(
        "merged {} source(s): {} entr{} copied, {} already present, {} invalid skipped; \
         {} entr{} in destination",
        out.sources,
        out.copied,
        if out.copied == 1 { "y" } else { "ies" },
        out.skipped_existing,
        out.skipped_invalid,
        out.entries_after,
        if out.entries_after == 1 { "y" } else { "ies" },
    );
    Ok(())
}

/// `spec check PATH...`: parse, validate and dry-compile every spec, reporting one
/// line per spec and failing if any spec is invalid or collides with a registered
/// name (builtin or another checked spec).
fn cmd_spec(positionals: &[String], args: &Args) -> Result<(), String> {
    args.reject_unknown(&[])?;
    let Some((sub, paths)) = positionals.split_first() else {
        return Err("spec needs a subcommand: `spec check FILE|DIR...`".into());
    };
    if sub != "check" {
        return Err(format!(
            "unknown spec subcommand '{sub}' (expected 'check')"
        ));
    }
    if paths.is_empty() {
        return Err("spec check needs at least one file or directory".into());
    }
    let mut registry = Registry::builtin();
    // Failures accumulate as diagnostics and print through the shared pipeline
    // (pim_audit::diag), so `spec check` and `audit` report in one format.
    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut checked = 0usize;
    for path in paths {
        // Enumerate files first so one bad spec in a directory still lets every
        // other spec in it get its own ok/error line (and collision check).
        let files = match spec_files(std::path::Path::new(path)) {
            Ok(files) => files,
            Err(e) => {
                checked += 1;
                findings.push(Diagnostic::file_level("spec-check", path, e));
                continue;
            }
        };
        for file in files {
            checked += 1;
            let shown = file.display().to_string();
            let spec = match load_spec_file(&file) {
                Ok(spec) => spec,
                Err(e) => {
                    // load_spec_file prefixes its own path; the span already says it.
                    let msg = e
                        .strip_prefix(&format!("{shown}: "))
                        .map(str::to_string)
                        .unwrap_or(e);
                    findings.push(Diagnostic::file_level("spec-check", &shown, msg));
                    continue;
                }
            };
            let line = format!(
                "{:<24} {}: {} points x {} replications = {} units, {} columns",
                spec.name,
                spec.family(),
                spec.grid_points(),
                spec.replications,
                spec.units(),
                spec.output_columns().len()
            );
            match register_specs(&mut registry, vec![spec]) {
                Ok(_) => println!("ok   {line}"),
                Err(e) => findings.push(Diagnostic::file_level("spec-check", &shown, e)),
            }
        }
    }
    eprint!("{}", diag::render_human(&findings));
    let checked = format!("{checked} spec{}", if checked == 1 { "" } else { "s" });
    if findings.is_empty() {
        eprintln!("{}", diag::summary_line(&checked, 0, 0));
        Ok(())
    } else {
        Err(diag::summary_line(&checked, findings.len(), 0))
    }
}

/// `audit`: run the determinism & purity lint pass over the workspace sources —
/// the same pass the `pim-audit` binary and the gating CI job run (see the
/// pim-audit crate for the rule set and the allow grammar).
fn cmd_audit(args: &Args) -> Result<(), String> {
    let root = args
        .flags
        .get("root")
        .cloned()
        .unwrap_or_else(|| ".".into());
    let format = args
        .flags
        .get("format")
        .cloned()
        .unwrap_or_else(|| "human".into());
    args.reject_unknown(&["root", "format"])?;
    let report = pim_audit::audit_workspace(std::path::Path::new(&root))?;
    match format.as_str() {
        "json" => print!(
            "{}",
            diag::render_json(&report.diagnostics, report.files_scanned, report.suppressed)
        ),
        "human" => {
            print!("{}", diag::render_human(&report.diagnostics));
            println!("{}", report.summary());
        }
        other => return Err(format!("unknown --format '{other}' (human | json)")),
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(report.summary())
    }
}

fn study_config(args: &Args) -> Result<SystemConfig, String> {
    let mut config = SystemConfig::table1();
    config.p_miss = args.get_f64("pmiss", config.p_miss)?;
    config.lwp_cycle_ns = args.get_f64("lwp-cycle", config.lwp_cycle_ns)?;
    config.lwp_memory_cycles = args.get_f64("tml", config.lwp_memory_cycles)?;
    config.hwp_memory_cycles = args.get_f64("tmh", config.hwp_memory_cycles)?;
    let mix = args.get_f64("mix", config.mix.memory_fraction())?;
    if !(0.0..=1.0).contains(&mix) {
        return Err(format!("--mix must lie in [0,1], got {mix}"));
    }
    config.mix = InstructionMix::with_memory_fraction(mix);
    config.validate()?;
    Ok(config)
}

fn cmd_point(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "nodes",
        "wl",
        "pmiss",
        "mix",
        "lwp-cycle",
        "tml",
        "tmh",
        "simulate",
    ])?;
    let nodes = args.get_usize("nodes", 32)?;
    if nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    let wl = args.get_f64("wl", 0.8)?;
    if !(0.0..=1.0).contains(&wl) {
        return Err(format!("--wl must lie in [0,1], got {wl}"));
    }
    let config = study_config(args)?;
    let study = PartitionStudy::new(config);
    let mode = if args.has("simulate") {
        EvalMode::sampled(1)
    } else {
        EvalMode::Expected
    };
    let point = study.evaluate(nodes, wl, mode);
    println!("nodes            : {nodes}");
    println!("%WL              : {:.0}%", wl * 100.0);
    println!("control time     : {:.3e} ns", point.control_ns);
    println!("test time        : {:.3e} ns", point.test_ns);
    println!("gain             : {:.3}x", point.gain);
    println!("relative time    : {:.4}", point.relative_time);
    println!("break-even NB    : {:.3}", config.nb());
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "max-nodes",
        "pmiss",
        "mix",
        "lwp-cycle",
        "tml",
        "tmh",
        "simulate",
    ])?;
    let max_nodes = args.get_usize("max-nodes", 64)?;
    if max_nodes == 0 {
        return Err("--max-nodes must be at least 1".into());
    }
    let config = study_config(args)?;
    let mut node_counts = vec![];
    let mut n = 1;
    while n <= max_nodes {
        node_counts.push(n);
        n *= 2;
    }
    let spec = SweepSpec {
        node_counts,
        lwp_fractions: (0..=10).map(|i| i as f64 / 10.0).collect(),
    };
    let mode = if args.has("simulate") {
        EvalMode::sampled(1)
    } else {
        EvalMode::Expected
    };
    let sweep = run_sweep(config, &spec, mode, 4);
    print!("{}", csv_to_markdown(&figure5_gain_table(&sweep)));
    Ok(())
}

fn cmd_nb(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["pmiss", "mix", "lwp-cycle", "tml", "tmh"])?;
    let config = study_config(args)?;
    let model = AnalyticModel::new(config);
    println!("HWP time per op : {:.3} ns", config.hwp_op_time_ns());
    println!("LWP time per op : {:.3} ns", config.lwp_op_time_ns());
    println!("NB              : {:.3}", model.nb());
    println!("break-even nodes: {}", model.break_even_nodes());
    println!("gain @ 32 nodes, 100% WL: {:.2}x", model.gain(32.0, 1.0));
    Ok(())
}

fn cmd_parcels(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "parallelism",
        "latency",
        "remote",
        "nodes",
        "overhead",
        "mix",
    ])?;
    let config = ParcelConfig {
        nodes: args.get_usize("nodes", 8)?,
        parallelism: args.get_usize("parallelism", 16)?,
        latency_cycles: args.get_f64("latency", 1_000.0)?,
        remote_fraction: args.get_f64("remote", 0.4)?,
        parcel_overhead_cycles: args.get_f64("overhead", 4.0)?,
        mix: InstructionMix::with_memory_fraction(args.get_f64("mix", 0.3)?),
        horizon_cycles: 500_000.0,
        ..Default::default()
    };
    config.validate()?;
    let point = evaluate_point(config, 1);
    let analytic = ParcelAnalyticModel::new(config);
    println!(
        "nodes / parallelism      : {} / {}",
        config.nodes, config.parallelism
    );
    println!(
        "latency / remote fraction: {:.0} cycles / {:.0}%",
        config.latency_cycles,
        config.remote_fraction * 100.0
    );
    println!("work ratio (simulated)   : {:.3}x", point.ops_ratio);
    println!("work ratio (analytic)    : {:.3}x", analytic.ops_ratio());
    println!("test idle fraction       : {:.3}", point.test_idle_fraction);
    println!(
        "control idle fraction    : {:.3}",
        point.control_idle_fraction
    );
    println!(
        "saturation parallelism P*: {:.1}",
        analytic.saturation_parallelism()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let (positionals, args) = Args::parse_mixed(&raw[1..])?;
    if args.has("help") {
        println!("{USAGE}");
        return Ok(());
    }
    if command != "run" && command != "spec" && command != "cache" {
        if let Some(arg) = positionals.first() {
            return Err(format!(
                "unexpected argument '{arg}' (flags are --name value)"
            ));
        }
    }
    match command.as_str() {
        "list" => cmd_list(&args),
        "run" => cmd_run(&positionals, &args),
        "spec" => cmd_spec(&positionals, &args),
        "serve" => cmd_serve(&args),
        "audit" => cmd_audit(&args),
        "cache" => cmd_cache(&positionals, &args),
        "point" => cmd_point(&args),
        "sweep" => cmd_sweep(&args),
        "nb" => cmd_nb(&args),
        "parcels" => cmd_parcels(&args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

//! # pim-repro — reproduction of "Analysis and Modeling of Advanced PIM Architecture Design Tradeoffs" (SC 2004)
//!
//! This facade crate re-exports the workspace members so applications can depend on a
//! single crate:
//!
//! * [`desim`] — the discrete-event simulation engine (SES/Workbench substitute);
//! * [`pim_mem`] — DRAM macro / row buffer / bank / cache / PIM-chip models;
//! * [`pim_workload`] — instruction mixes, temporal-locality partitions, synthetic
//!   kernels and remote-access models;
//! * [`pim_core`] — study 1: the HWP/LWP partitioning queuing model and sweeps
//!   (Figures 5-7, Table 1);
//! * [`pim_parcels`] — study 2: parcel split-transaction latency hiding versus blocking
//!   message passing (Figures 8-12);
//! * [`pim_analytic`] — the closed-form models (`Time_relative`, `NB`, multithreading
//!   efficiency) and their validation against the simulations;
//! * [`pim_harness`] — the scenario registry and parallel batch harness that
//!   regenerates every paper artifact as versioned JSON (`pim-tradeoffs list|run`);
//! * [`pim_audit`] — the determinism & purity lint pass that statically enforces the
//!   unit-result cache's purity contract over this workspace's own sources
//!   (`pim-tradeoffs audit`, the `pim-audit` binary, and a gating CI job).
//!
//! See the `examples/` directory for runnable walkthroughs and the `pim-bench` crate
//! for the binaries that regenerate every table and figure in the paper.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use desim;
pub use pim_analytic;
pub use pim_audit;
pub use pim_core;
pub use pim_harness;
pub use pim_mem;
pub use pim_parcels;
pub use pim_workload;

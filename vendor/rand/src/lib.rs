//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate provides
//! the (small) subset of the `rand 0.8` API that the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded through
//!   SplitMix64, exactly reproducible across platforms;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] for `f64`, `u64`, `u32`, `bool`;
//! * [`Rng::gen_range`] for half-open integer and float ranges.
//!
//! The statistical quality of xoshiro256++ is more than adequate for the queuing
//! simulations here; it is the same family the real `rand` crate has used for
//! `SmallRng`. Swapping the real crate back in later only requires deleting this
//! directory and pointing the manifests at crates.io.

#![deny(unsafe_code)]

use std::ops::Range;

/// Seedable generators (mirror of `rand::SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a generator's raw 64-bit output
/// (mirror of sampling from `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Convert one raw 64-bit draw into a value of this type.
    fn from_raw(raw: u64) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_raw(raw: u64) -> Self {
        raw
    }
}

impl Standard for u32 {
    #[inline]
    fn from_raw(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_raw(raw: u64) -> Self {
        raw >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, matching `rand`'s convention.
    #[inline]
    fn from_raw(raw: u64) -> Self {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (mirror of `rand`'s `SampleRange`).
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full u64 range.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

int_sample_range!(u64, u32, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::from_raw(rng.next_u64())
    }
}

/// The raw 64-bit generator interface (mirror of `rand::RngCore`).
pub trait RngCore {
    /// Produce the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_raw(self.next_u64())
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_raw(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let n = r.gen_range(0..17u64);
            assert!(n < 17);
        }
    }

    #[test]
    fn range_mean_is_plausible() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.gen_range(0..1000u64)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 499.5).abs() < 5.0, "mean {mean}");
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this vendored crate provides a
//! simplified but *working* serialization framework with the same spelling as real
//! serde at every use site in this workspace:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (via the sibling
//!   `serde_derive` proc-macro crate, re-exported under the `derive` feature);
//! * `serde_json::{to_string, to_string_pretty, from_str}` round-trips.
//!
//! Instead of real serde's visitor architecture, both traits go through an owned
//! [`Value`] tree (the same simplification `serde_json::Value` makes). Enum variants
//! use serde's externally-tagged JSON convention: unit variants serialize as a string,
//! payload variants as a one-entry map. That keeps our output byte-compatible with
//! what real serde_json would produce for the types in this workspace, so swapping
//! the real crates back in later will not invalidate saved artifacts.

#![deny(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value tree (the data model both traits target).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (JSON array).
    Seq(Vec<Value>),
    /// An ordered map with string keys (JSON object). Insertion order is preserved
    /// so struct fields serialize in declaration order, like real serde.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Value::Map`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric content of an `I64`/`U64`/`F64` value, widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }
}

// A `Value` is its own serde representation, so fields typed `Value` (free-form
// payloads such as scenario parameters) pass through both traits unchanged.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Error type shared by deserialization front-ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the serde data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the serde data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n).map_err(Error::msg),
                    Value::I64(n) => <$t>::try_from(n).map_err(Error::msg),
                    _ => Err(Error::msg(concat!("expected unsigned integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::I64(n) => <$t>::try_from(n).map_err(Error::msg),
                    Value::U64(n) => <$t>::try_from(n).map_err(Error::msg),
                    _ => Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(Error::msg("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (real serde_json iterates hash order; sorted
        // is strictly more reproducible, which the replication harness prefers).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected tuple of {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::msg("expected sequence for tuple")),
                }
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.0, 4.0)];
        let back = Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), none);
    }
}

//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate provides the
//! subset of the proptest API this workspace's property tests use, with one deliberate
//! difference: **all runs are deterministic**. Real proptest seeds its RNG from the OS
//! and persists failing cases to regression files; here every test function derives
//! its seed from [`test_runner::ProptestConfig`]'s `rng_seed` (a fixed constant by default) mixed with
//! the test's own name, so CI failures always reproduce locally with no state files.
//!
//! Supported surface:
//! * the [`proptest!`] macro, including `#![proptest_config(...)]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * range strategies (`0u64..100`, `0u32..=100`, `0.5f64..2.0`), tuples of
//!   strategies, [`strategy::Strategy::prop_map`], [`collection::vec`] and [`strategy::any`];
//! * no shrinking — a failing case panics with the generated inputs' debug
//!   representation via the standard assertion message instead.

#![deny(unsafe_code)]

/// Runner configuration and the deterministic test RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SampleRange, SeedableRng, Standard};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Base seed every test function's RNG derives from (mixed with the test
        /// name). Fixed by default so runs are reproducible everywhere.
        pub rng_seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                rng_seed: 0x5EED_CAFE_F00D_0001,
            }
        }
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per property (mirror of proptest's API).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }

        /// Override the base RNG seed (extension; real proptest reads env vars).
        pub fn with_rng_seed(mut self, seed: u64) -> Self {
            self.rng_seed = seed;
            self
        }
    }

    /// The RNG handed to strategies: a deterministic xoshiro256++ stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Derive the RNG for one test function from the config seed and test name.
        pub fn for_test(seed: u64, test_name: &str) -> Self {
            // FNV-1a over the name keeps independent tests on independent streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(seed ^ h),
            }
        }

        /// Sample uniformly from a range.
        pub fn sample<S: SampleRange>(&mut self, range: S) -> S::Output {
            range.sample_from(&mut self.inner)
        }

        /// Sample a standard-distribution value.
        pub fn sample_standard<T: Standard>(&mut self) -> T {
            T::from_raw(self.inner.next_u64())
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value` (mirror of proptest's trait;
    /// generation only, no shrink tree).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as u128) - (lo as u128) + 1;
                    if span > u64::MAX as u128 {
                        // The whole 64-bit domain: one raw draw.
                        return rng.sample_standard::<u64>() as $t;
                    }
                    lo + rng.sample(0u64..span as u64) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u64, u32, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.sample(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($t:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }

    /// Types with a canonical "anything" strategy (mirror of proptest's Arbitrary).
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.sample_standard()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.sample_standard()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.sample_standard::<u64>() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.sample_standard()
        }
    }

    // No `Arbitrary for f64` on purpose: a lazy mapping from the raw draw would only
    // cover [0, 1), silently unlike real proptest's full-domain (negatives, huge
    // magnitudes, non-finite) `any::<f64>()`. Use an explicit range strategy instead;
    // implement the full-domain version here if a test genuinely needs it.

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T` (mirror of `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The admissible length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose length is
    /// drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi_exclusive - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.sample(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Build a vector strategy (mirror of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property (panics with the standard message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property (mirror of `proptest::prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define deterministic property tests (mirror of `proptest::proptest!`).
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that runs the
/// body [`test_runner::ProptestConfig`]`::cases` times with inputs generated from a seed derived
/// from the config's `rng_seed` and the test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(__config.rng_seed, stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The harness itself: generated values respect their ranges.
        #[test]
        fn ranges_respected(x in 3u64..10, y in 0u32..=5, z in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((-2.0..2.0).contains(&z));
        }

        /// Vec strategies respect both fixed and ranged sizes.
        #[test]
        fn vec_sizes_respected(
            xs in collection::vec(any::<bool>(), 7),
            ys in collection::vec(0u64..100, 1..4),
        ) {
            prop_assert_eq!(xs.len(), 7);
            prop_assert!((1..4).contains(&ys.len()));
        }

        /// prop_map composes.
        #[test]
        fn map_composes(s in (1u64..5, 1u64..5).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..=8).contains(&s));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test(1, "t");
        let mut b = TestRng::for_test(1, "t");
        for _ in 0..100 {
            assert_eq!(a.sample(0u64..1000), b.sample(0u64..1000));
        }
    }
}

//! Offline stand-in for `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the vendored
//! `serde`'s [`serde::Value`] tree. The renderer follows serde_json's conventions:
//! floats print via Rust's shortest-round-trip `{:?}` formatting, struct fields keep
//! declaration order, and enums are externally tagged.

#![deny(unsafe_code)]

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

/// Parse a JSON string into the generic value tree.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that round-trips, the same
                // choice serde_json makes (via ryu). Integral floats print as `1.0`.
                out.push_str(&format!("{x:?}"));
            } else {
                // Real serde_json errors on non-finite floats; a null is friendlier
                // for diagnostic dumps and still parses back as an error at the
                // typed layer.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            write_value,
        ),
        Value::Map(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), indent, depth| {
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::msg)?,
                                16,
                            )
                            .map_err(Error::msg)?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::msg)?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(Error::msg)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(Error::msg)
        } else {
            text.parse::<u64>().map(Value::U64).map_err(Error::msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_round_trip() {
        let xs: Vec<(u64, f64)> = vec![(1, 0.5), (2, 0.25)];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[[1,0.5],[2,0.25]]");
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_output_has_indentation() {
        let xs: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&xs).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = value_from_str(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        let a = v.get("a").unwrap();
        match a {
            Value::Seq(items) => {
                assert_eq!(items[0], Value::U64(1));
                assert_eq!(items[1].get("b"), Some(&Value::Null));
            }
            _ => panic!("expected seq"),
        }
    }
}

//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this vendored crate keeps the
//! workspace's benches compiling and *runnable* with the same spellings —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — while replacing criterion's statistics
//! machinery with a simple calibrated wall-clock loop: each benchmark is warmed up,
//! then timed over `sample_size` samples, and the median/min/max per-iteration times
//! are printed. Good enough for A/B comparisons in this repo; swap the real crate
//! back in for publication-grade statistics.

#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmark a closure directly at the top level.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().0, self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.0, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// The timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time the closure. The harness has already calibrated how many iterations one
    /// sample should run; this records `samples.capacity()` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = self.samples.capacity();
        for _ in 0..n {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Calibrate: run once to estimate the per-iteration cost, then pick an iteration
    // count that gives samples of at least ~5 ms (or a single iteration for slow
    // benchmarks).
    let start = Instant::now();
    let mut probe = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(1),
    };
    f(&mut probe);
    let once = start.elapsed().max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("  {name}: no samples recorded");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    eprintln!(
        "  {name}: median {} (min {}, max {}, {} samples x {} iters)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        per_iter.len(),
        b.iters_per_sample,
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Collect benchmark functions into a named group runner (mirror of criterion's).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups (mirror of criterion's).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }
}

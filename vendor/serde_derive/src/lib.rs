//! Offline stand-in for `serde_derive`.
//!
//! Because the build environment has no crates.io access, this proc-macro crate is
//! written against the bare `proc_macro` API (no `syn`/`quote`). It parses the
//! `DeriveInput` token stream by hand — attributes, visibility, `struct`/`enum`,
//! named/tuple/unit shapes — and emits impls of the vendored `serde`'s value-tree
//! `Serialize`/`Deserialize` traits as stringified code.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields, tuple structs (newtype and wider), unit structs;
//! * enums with unit, newtype, tuple and struct variants, using serde's
//!   externally-tagged representation.
//!
//! Generic types and `#[serde(...)]` attributes are intentionally unsupported and
//! produce a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item a derive was placed on.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One enum variant: name plus payload shape.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Parsed `DeriveInput`: type name + shape.
struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Reject `#[serde(...)]` on a just-consumed attribute group: this vendored derive
/// implements no serde attributes, and silently ignoring one would produce JSON that
/// disagrees with what the annotation promises.
fn reject_serde_attr(attr_group: Option<TokenTree>) {
    if let Some(TokenTree::Group(g)) = attr_group {
        if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
            if id.to_string() == "serde" {
                panic!(
                    "serde_derive (vendored): #[serde(...)] attributes are not supported; \
                     remove the attribute or extend vendor/serde_derive"
                );
            }
        }
    }
}

fn parse_input(ts: TokenStream) -> Input {
    let mut iter = ts.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                reject_serde_attr(iter.next());
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde_derive (vendored): generic type `{name}` is not supported; \
                 write the impls by hand or extend vendor/serde_derive"
            );
        }
    }

    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Input { name, shape }
}

/// Parse `field: Type, ...` bodies, returning the field names in order.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        // Skip attributes and visibility in front of each field.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    reject_serde_attr(iter.next());
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
        // Expect `:`, then consume the type up to a depth-0 comma.
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        let mut prev_dash = false;
        for tok in iter.by_ref() {
            match &tok {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' && !prev_dash {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        break;
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
        }
    }
    fields
}

/// Count the fields of a tuple struct/variant body (`Type, Type, ...`), tolerating a
/// trailing comma (rustfmt adds one when it breaks the body across lines).
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    let mut pending_field = false;
    for tok in ts {
        match &tok {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_dash {
                    angle_depth -= 1;
                } else if c == ',' && angle_depth == 0 {
                    count += 1;
                    prev_dash = false;
                    pending_field = false;
                    continue;
                }
                prev_dash = c == '-';
                pending_field = true;
            }
            _ => {
                prev_dash = false;
                pending_field = true;
            }
        }
    }
    if pending_field {
        count += 1;
    }
    count
}

/// Parse enum variants.
fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        // Skip attributes (doc comments on variants).
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                reject_serde_attr(iter.next());
            } else {
                break;
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        let mut angle_depth = 0i32;
        let mut prev_dash = false;
        while let Some(tok) = iter.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        iter.next();
                        break;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' && !prev_dash {
                        angle_depth -= 1;
                    }
                    prev_dash = c == '-';
                    iter.next();
                }
                _ => {
                    prev_dash = false;
                    iter.next();
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(ref __f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("ref __f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| format!("ref {f}")).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match *self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.get(\"{f}\").ok_or_else(|| ::serde::Error::msg(\"missing field `{f}` in {name}\"))?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{ ::serde::Value::Seq(__items) if __items.len() == {n} => Ok({name}({})), _ => Err(::serde::Error::msg(\"expected sequence of {n} for {name}\")) }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    VariantKind::Tuple(1) => payload_arms.push(format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&__items[{i}])?")
                            })
                            .collect();
                        payload_arms.push(format!(
                            "\"{vn}\" => match __payload {{ ::serde::Value::Seq(__items) if __items.len() == {n} => Ok({name}::{vn}({})), _ => Err(::serde::Error::msg(\"expected sequence of {n} for {name}::{vn}\")) }},",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__payload.get(\"{f}\").ok_or_else(|| ::serde::Error::msg(\"missing field `{f}` in {name}::{vn}\"))?)?"
                                )
                            })
                            .collect();
                        payload_arms.push(format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => Err(::serde::Error::msg(format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => Err(::serde::Error::msg(format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::msg(\"expected enum representation for {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

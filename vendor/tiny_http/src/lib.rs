//! Offline stand-in for a minimal HTTP/1.1 library.
//!
//! The build environment has no access to crates.io, so this vendored crate provides
//! the small HTTP surface the workspace's sweep service (`pim_harness::serve`)
//! actually needs, over `std::net` only:
//!
//! * [`Server`] — a blocking TCP acceptor;
//! * [`Request::read_from`] — parse one HTTP/1.1 request (request line, headers,
//!   `Content-Length` body) with hard size limits;
//! * [`Response`] — a fixed-body response writer emitting `Content-Length`;
//! * [`ChunkedWriter`] — a streaming response writer emitting
//!   `Transfer-Encoding: chunked`, for progress feeds;
//! * [`client`] — a one-shot blocking client (`Connection: close`) that decodes
//!   both fixed-length and chunked bodies, used by tests and benchmarks.
//!
//! Deliberately out of scope: TLS, keep-alive, pipelining, compression, HTTP/2.
//! Every connection carries exactly one request/response exchange. Swapping a real
//! HTTP crate back in later only requires deleting this directory and pointing the
//! manifests at crates.io.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Ceiling on the request line plus all headers. A client exceeding it is broken
/// or hostile; the connection is refused with an error before any body is read.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Ceiling on a request body. Scenario specs are a few kilobytes; 4 MiB leaves
/// generous headroom while bounding memory per connection.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A blocking TCP acceptor for one HTTP service.
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:0` to let the OS pick a free port).
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address — the way to learn the port after binding to `:0`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Block until the next client connects.
    pub fn accept(&self) -> io::Result<TcpStream> {
        let (stream, _peer) = self.listener.accept()?;
        Ok(stream)
    }
}

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target, query string included.
    pub target: String,
    /// Header `(name, value)` pairs in arrival order; names are kept as sent,
    /// lookups via [`Request::header`] are case-insensitive.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Parse one request from `reader`. Enforces [`MAX_HEAD_BYTES`] and
    /// [`MAX_BODY_BYTES`]; any malformed line is an `InvalidData` error.
    pub fn read_from(reader: &mut impl BufRead) -> io::Result<Request> {
        let mut head_bytes = 0usize;
        let request_line = read_line(reader, &mut head_bytes)?;
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(bad_data(format!("malformed request line '{request_line}'")));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(bad_data(format!("unsupported protocol '{version}'")));
        }
        let method = method.to_ascii_uppercase();
        let target = target.to_string();

        let mut headers = Vec::new();
        loop {
            let line = read_line(reader, &mut head_bytes)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad_data(format!("malformed header line '{line}'")));
            };
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }

        let request = Request {
            method,
            target,
            headers,
            body: Vec::new(),
        };
        let body = match request.header("content-length") {
            None => Vec::new(),
            Some(len) => {
                let len: usize = len
                    .parse()
                    .map_err(|_| bad_data(format!("invalid Content-Length '{len}'")))?;
                if len > MAX_BODY_BYTES {
                    return Err(bad_data(format!(
                        "request body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                    )));
                }
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body)?;
                body
            }
        };
        Ok(Request { body, ..request })
    }

    /// The request path: the target up to (and excluding) any `?`.
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }

    /// The decoded query pairs, in order. A key without `=` maps to `""`.
    pub fn query(&self) -> Vec<(String, String)> {
        let Some((_, query)) = self.target.split_once('?') else {
            return Vec::new();
        };
        query
            .split('&')
            .filter(|part| !part.is_empty())
            .map(|part| match part.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (part.to_string(), String::new()),
            })
            .collect()
    }

    /// First value of the query key `name`, when present.
    pub fn query_value(&self, name: &str) -> Option<String> {
        self.query()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, charging its bytes against the
/// shared head budget.
fn read_line(reader: &mut impl BufRead, head_bytes: &mut usize) -> io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-request",
        ));
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(bad_data(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// The standard reason phrase for the status codes this stand-in emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// A fixed-body HTTP/1.1 response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra header `(name, value)` pairs; `Content-Length` and `Connection`
    /// are always emitted by [`Response::write_to`] and must not be added here.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with `status` and an empty body.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Builder: add a header pair.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Builder: set the body and its `Content-Type`.
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Response {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// Write the complete response (status line, headers, `Content-Length`,
    /// body) and flush.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "Content-Length: {}\r\n", self.body.len())?;
        write!(writer, "Connection: close\r\n\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// A streaming (`Transfer-Encoding: chunked`) response writer: the head goes out
/// on construction, each [`chunk`](ChunkedWriter::chunk) flushes immediately so
/// clients see progress live, and [`finish`](ChunkedWriter::finish) terminates
/// the stream.
pub struct ChunkedWriter<W: Write> {
    writer: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Write the response head and return the chunk writer.
    pub fn begin(
        mut writer: W,
        status: u16,
        headers: &[(&str, &str)],
    ) -> io::Result<ChunkedWriter<W>> {
        write!(writer, "HTTP/1.1 {} {}\r\n", status, reason_phrase(status))?;
        for (name, value) in headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "Transfer-Encoding: chunked\r\n")?;
        write!(writer, "Connection: close\r\n\r\n")?;
        writer.flush()?;
        Ok(ChunkedWriter { writer })
    }

    /// Send one chunk (empty input is skipped — an empty chunk would terminate
    /// the stream early).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.writer, "{:x}\r\n", data.len())?;
        self.writer.write_all(data)?;
        write!(self.writer, "\r\n")?;
        self.writer.flush()
    }

    /// Terminate the chunk stream and flush.
    pub fn finish(mut self) -> io::Result<()> {
        write!(self.writer, "0\r\n\r\n")?;
        self.writer.flush()
    }
}

/// A one-shot blocking HTTP/1.1 client (one request per connection).
pub mod client {
    use super::*;

    /// A decoded client-side response.
    #[derive(Debug)]
    pub struct ClientResponse {
        /// HTTP status code.
        pub status: u16,
        /// Header pairs in arrival order.
        pub headers: Vec<(String, String)>,
        /// The decoded body (fixed-length and chunked transfer are handled).
        pub body: Vec<u8>,
    }

    impl ClientResponse {
        /// Case-insensitive header lookup (first occurrence).
        pub fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        }
    }

    /// Send one `method` request for `target` to `addr` and read the full
    /// response. `headers` are emitted verbatim; `Content-Length`, `Host` and
    /// `Connection: close` are added automatically.
    pub fn request(
        addr: &str,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut stream = TcpStream::connect(addr)?;
        write!(stream, "{method} {target} HTTP/1.1\r\n")?;
        write!(stream, "Host: {addr}\r\n")?;
        for (name, value) in headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(stream, "Content-Length: {}\r\n", body.len())?;
        write!(stream, "Connection: close\r\n\r\n")?;
        stream.write_all(body)?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut head_bytes = 0usize;
        let status_line = read_line(&mut reader, &mut head_bytes)?;
        let mut parts = status_line.split_whitespace();
        let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
            return Err(bad_data(format!("malformed status line '{status_line}'")));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(bad_data(format!("unsupported protocol '{version}'")));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| bad_data(format!("invalid status '{status}'")))?;

        let mut headers = Vec::new();
        loop {
            let line = read_line(&mut reader, &mut head_bytes)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad_data(format!("malformed header line '{line}'")));
            };
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }

        let response = ClientResponse {
            status,
            headers,
            body: Vec::new(),
        };
        let chunked = response
            .header("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            read_chunked(&mut reader)?
        } else {
            match response.header("content-length") {
                Some(len) => {
                    let len: usize = len
                        .parse()
                        .map_err(|_| bad_data(format!("invalid Content-Length '{len}'")))?;
                    let mut body = vec![0u8; len];
                    reader.read_exact(&mut body)?;
                    body
                }
                // No length, no chunking: the body runs to connection close.
                None => {
                    let mut body = Vec::new();
                    reader.read_to_end(&mut body)?;
                    body
                }
            }
        };
        Ok(ClientResponse { body, ..response })
    }

    fn read_chunked(reader: &mut impl BufRead) -> io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let mut ignored = 0usize;
            let size_line = read_line(reader, &mut ignored)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad_data(format!("invalid chunk size '{size_line}'")))?;
            if size == 0 {
                // Trailer section (we send none) ends with a blank line.
                let _ = read_line(reader, &mut ignored);
                return Ok(body);
            }
            let start = body.len();
            body.resize(start + size, 0);
            reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw =
            b"POST /run?seed=7&progress=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = Request::read_from(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/run");
        assert_eq!(req.query_value("seed").as_deref(), Some("7"));
        assert_eq!(req.query_value("progress").as_deref(), Some("1"));
        assert_eq!(req.query_value("absent"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"[..],
        ] {
            let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn rejects_oversized_bodies_and_heads() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = Request::read_from(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("byte limit"), "{err}");

        let raw = format!(
            "GET / HTTP/1.1\r\nA: {}\r\n\r\n",
            "x".repeat(MAX_HEAD_BYTES)
        );
        let err = Request::read_from(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("head exceeds"), "{err}");
    }

    #[test]
    fn response_round_trips_through_the_client_decoder() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut stream = server.accept().unwrap();
            let req = {
                let mut reader = BufReader::new(&mut stream);
                Request::read_from(&mut reader).unwrap()
            };
            assert_eq!(req.method, "POST");
            Response::new(200)
                .with_header("X-Echo", "yes")
                .with_body("application/json", req.body)
                .write_to(&mut stream)
                .unwrap();
        });
        let resp = client::request(&addr, "POST", "/echo", &[], b"{\"k\":1}").unwrap();
        handle.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-echo"), Some("yes"));
        assert_eq!(resp.body, b"{\"k\":1}");
    }

    #[test]
    fn chunked_stream_round_trips_through_the_client_decoder() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut stream = server.accept().unwrap();
            {
                let mut reader = BufReader::new(&mut stream);
                Request::read_from(&mut reader).unwrap();
            }
            let mut chunks =
                ChunkedWriter::begin(&mut stream, 200, &[("Content-Type", "text/plain")]).unwrap();
            chunks.chunk(b"hello ").unwrap();
            chunks.chunk(b"").unwrap(); // skipped, must not terminate the stream
            chunks.chunk(b"world").unwrap();
            chunks.finish().unwrap();
        });
        let resp = client::request(&addr, "GET", "/stream", &[], b"").unwrap();
        handle.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello world");
    }
}

//! Offline stand-in for a minimal HTTP/1.1 library.
//!
//! The build environment has no access to crates.io, so this vendored crate provides
//! the small HTTP surface the workspace's sweep service (`pim_harness::serve`)
//! actually needs, over `std::net` only:
//!
//! * [`Server`] — a blocking TCP acceptor;
//! * [`Request::read_from`] — parse one HTTP/1.1 request (request line, headers,
//!   `Content-Length` body) with hard size limits;
//! * [`Response`] — a fixed-body response writer emitting `Content-Length`;
//! * [`ChunkedWriter`] — a streaming response writer emitting
//!   `Transfer-Encoding: chunked`, for progress feeds;
//! * [`client`] — a one-shot blocking client (`Connection: close`) that decodes
//!   both fixed-length and chunked bodies, used by tests and benchmarks.
//!
//! Deliberately out of scope: TLS, keep-alive, pipelining, compression, HTTP/2.
//! Every connection carries exactly one request/response exchange. Swapping a real
//! HTTP crate back in later only requires deleting this directory and pointing the
//! manifests at crates.io.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Ceiling on the request line plus all headers. A client exceeding it is broken
/// or hostile; the connection is refused with an error before any body is read.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Ceiling on a request body. Scenario specs are a few kilobytes; 4 MiB leaves
/// generous headroom while bounding memory per connection.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A blocking TCP acceptor for one HTTP service.
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:0` to let the OS pick a free port).
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address — the way to learn the port after binding to `:0`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Block until the next client connects.
    pub fn accept(&self) -> io::Result<TcpStream> {
        let (stream, _peer) = self.listener.accept()?;
        Ok(stream)
    }
}

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target, query string included.
    pub target: String,
    /// Header `(name, value)` pairs in arrival order; names are kept as sent,
    /// lookups via [`Request::header`] are case-insensitive.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Parse one request from `reader`. Enforces [`MAX_HEAD_BYTES`] and
    /// [`MAX_BODY_BYTES`]; any malformed line is an `InvalidData` error.
    pub fn read_from(reader: &mut impl BufRead) -> io::Result<Request> {
        let mut head_bytes = 0usize;
        let request_line = read_line(reader, &mut head_bytes)?;
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(bad_data(format!("malformed request line '{request_line}'")));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(bad_data(format!("unsupported protocol '{version}'")));
        }
        let method = method.to_ascii_uppercase();
        let target = target.to_string();

        let mut headers = Vec::new();
        loop {
            let line = read_line(reader, &mut head_bytes)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad_data(format!("malformed header line '{line}'")));
            };
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }

        let request = Request {
            method,
            target,
            headers,
            body: Vec::new(),
        };
        let body = match request.header("content-length") {
            None => Vec::new(),
            Some(len) => {
                let len: usize = len
                    .parse()
                    .map_err(|_| bad_data(format!("invalid Content-Length '{len}'")))?;
                if len > MAX_BODY_BYTES {
                    return Err(bad_data(format!(
                        "request body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                    )));
                }
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body)?;
                body
            }
        };
        Ok(Request { body, ..request })
    }

    /// The request path: the target up to (and excluding) any `?`.
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }

    /// The decoded query pairs, in order. A key without `=` maps to `""`.
    pub fn query(&self) -> Vec<(String, String)> {
        let Some((_, query)) = self.target.split_once('?') else {
            return Vec::new();
        };
        query
            .split('&')
            .filter(|part| !part.is_empty())
            .map(|part| match part.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (part.to_string(), String::new()),
            })
            .collect()
    }

    /// First value of the query key `name`, when present.
    pub fn query_value(&self, name: &str) -> Option<String> {
        self.query()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// The first query key that appears more than once, when any does.
    /// [`Request::query_value`] is first-wins, so a repeated key silently
    /// shadows its later values — servers that consider that an error can
    /// detect it here and refuse the request instead.
    pub fn duplicate_query_key(&self) -> Option<String> {
        let pairs = self.query();
        for (i, (key, _)) in pairs.iter().enumerate() {
            if pairs[..i].iter().any(|(k, _)| k == key) {
                return Some(key.clone());
            }
        }
        None
    }

    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, charging its bytes against the
/// shared head budget.
fn read_line(reader: &mut impl BufRead, head_bytes: &mut usize) -> io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-request",
        ));
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(bad_data(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// The standard reason phrase for the status codes this stand-in emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Apply one deadline to both directions of `stream`: any single read or write
/// that stalls longer than `timeout` fails with `WouldBlock`/`TimedOut` instead
/// of blocking forever. This is how a server keeps slow or silent clients from
/// pinning its workers.
pub fn set_stream_deadlines(stream: &TcpStream, timeout: Duration) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))
}

/// Whether an I/O error is a deadline expiry from [`set_stream_deadlines`].
/// Unix reports socket timeouts as `WouldBlock`, Windows as `TimedOut`.
pub fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Probe whether the peer of `stream` has gone away, without consuming data.
///
/// The probe flips the socket to non-blocking, peeks one byte, and restores
/// blocking mode: end-of-stream or a hard socket error means the client is
/// gone; `WouldBlock` (no data, connection open) or readable data means it is
/// still there. Callers must not run this concurrently with other I/O on the
/// same socket — the brief non-blocking window would make an in-flight
/// blocking write fail spuriously.
pub fn client_disconnected(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Process-wide SIGTERM/SIGINT latch, for graceful server drains.
///
/// This is the one place the workspace touches a raw OS API: there is no
/// vendored `libc`/`signal-hook`, so a minimal `extern "C"` shim registers a
/// handler that does the only async-signal-safe thing possible — set an
/// atomic flag. Servers poll [`requested`] from an ordinary thread and run
/// their drain logic there, never in signal context.
pub mod shutdown {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    /// Mark shutdown as requested. This is the signal handler's entire body,
    /// also callable directly (tests, embedders with their own signal story).
    pub fn request() {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested since process start.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }

    extern "C" fn on_signal(_signum: i32) {
        // Signal context: one atomic store and nothing else.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Install the latch for `SIGTERM` and `SIGINT`. Returns `false` on
    /// platforms without POSIX signals (the latch still works via
    /// [`request`]). Later installs by the embedding program simply replace
    /// these handlers — last install wins, as `signal(2)` always behaves.
    #[cfg(unix)]
    pub fn install() -> bool {
        // The typed fn-pointer parameter keeps this a plain ABI match for
        // POSIX `signal(2)` (sighandler_t in, sighandler_t out — both
        // register-sized) without any numeric casts of function pointers.
        type SigHandler = extern "C" fn(i32);
        #[allow(unsafe_code)]
        extern "C" {
            fn signal(signum: i32, handler: SigHandler) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the libc already linked by std; the handler is
        // async-signal-safe (a single atomic store) and never uninstalled.
        #[allow(unsafe_code)]
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
        true
    }

    /// Non-unix fallback: nothing to install.
    #[cfg(not(unix))]
    pub fn install() -> bool {
        false
    }
}

/// A fixed-body HTTP/1.1 response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra header `(name, value)` pairs; `Content-Length` and `Connection`
    /// are always emitted by [`Response::write_to`] and must not be added here.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with `status` and an empty body.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Builder: add a header pair.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Builder: set the body and its `Content-Type`.
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Response {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// Write the complete response (status line, headers, `Content-Length`,
    /// body) and flush.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "Content-Length: {}\r\n", self.body.len())?;
        write!(writer, "Connection: close\r\n\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// A streaming (`Transfer-Encoding: chunked`) response writer: the head goes out
/// on construction, each [`chunk`](ChunkedWriter::chunk) flushes immediately so
/// clients see progress live, and [`finish`](ChunkedWriter::finish) terminates
/// the stream.
pub struct ChunkedWriter<W: Write> {
    writer: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Write the response head and return the chunk writer.
    pub fn begin(
        mut writer: W,
        status: u16,
        headers: &[(&str, &str)],
    ) -> io::Result<ChunkedWriter<W>> {
        write!(writer, "HTTP/1.1 {} {}\r\n", status, reason_phrase(status))?;
        for (name, value) in headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "Transfer-Encoding: chunked\r\n")?;
        write!(writer, "Connection: close\r\n\r\n")?;
        writer.flush()?;
        Ok(ChunkedWriter { writer })
    }

    /// Send one chunk (empty input is skipped — an empty chunk would terminate
    /// the stream early).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.writer, "{:x}\r\n", data.len())?;
        self.writer.write_all(data)?;
        write!(self.writer, "\r\n")?;
        self.writer.flush()
    }

    /// Terminate the chunk stream and flush.
    pub fn finish(mut self) -> io::Result<()> {
        write!(self.writer, "0\r\n\r\n")?;
        self.writer.flush()
    }
}

/// A one-shot blocking HTTP/1.1 client (one request per connection).
pub mod client {
    use super::*;

    /// A decoded client-side response.
    #[derive(Debug)]
    pub struct ClientResponse {
        /// HTTP status code.
        pub status: u16,
        /// Header pairs in arrival order.
        pub headers: Vec<(String, String)>,
        /// The decoded body (fixed-length and chunked transfer are handled).
        pub body: Vec<u8>,
    }

    impl ClientResponse {
        /// Case-insensitive header lookup (first occurrence).
        pub fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        }
    }

    /// Send one `method` request for `target` to `addr` and read the full
    /// response. `headers` are emitted verbatim; `Content-Length`, `Host` and
    /// `Connection: close` are added automatically.
    pub fn request(
        addr: &str,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut stream = TcpStream::connect(addr)?;
        write!(stream, "{method} {target} HTTP/1.1\r\n")?;
        write!(stream, "Host: {addr}\r\n")?;
        for (name, value) in headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(stream, "Content-Length: {}\r\n", body.len())?;
        write!(stream, "Connection: close\r\n\r\n")?;
        stream.write_all(body)?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut head_bytes = 0usize;
        let status_line = read_line(&mut reader, &mut head_bytes)?;
        let mut parts = status_line.split_whitespace();
        let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
            return Err(bad_data(format!("malformed status line '{status_line}'")));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(bad_data(format!("unsupported protocol '{version}'")));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| bad_data(format!("invalid status '{status}'")))?;

        let mut headers = Vec::new();
        loop {
            let line = read_line(&mut reader, &mut head_bytes)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad_data(format!("malformed header line '{line}'")));
            };
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }

        let response = ClientResponse {
            status,
            headers,
            body: Vec::new(),
        };
        let chunked = response
            .header("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            read_chunked(&mut reader)?
        } else {
            match response.header("content-length") {
                Some(len) => {
                    let len: usize = len
                        .parse()
                        .map_err(|_| bad_data(format!("invalid Content-Length '{len}'")))?;
                    let mut body = vec![0u8; len];
                    reader.read_exact(&mut body)?;
                    body
                }
                // No length, no chunking: the body runs to connection close.
                None => {
                    let mut body = Vec::new();
                    reader.read_to_end(&mut body)?;
                    body
                }
            }
        };
        Ok(ClientResponse { body, ..response })
    }

    fn read_chunked(reader: &mut impl BufRead) -> io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let mut ignored = 0usize;
            let size_line = read_line(reader, &mut ignored)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad_data(format!("invalid chunk size '{size_line}'")))?;
            if size == 0 {
                // Trailer section (we send none) ends with a blank line.
                let _ = read_line(reader, &mut ignored);
                return Ok(body);
            }
            let start = body.len();
            body.resize(start + size, 0);
            reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw =
            b"POST /run?seed=7&progress=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = Request::read_from(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/run");
        assert_eq!(req.query_value("seed").as_deref(), Some("7"));
        assert_eq!(req.query_value("progress").as_deref(), Some("1"));
        assert_eq!(req.query_value("absent"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn duplicate_query_keys_are_detected_by_name() {
        let parse = |target: &str| Request {
            method: "GET".to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(parse("/run").duplicate_query_key(), None);
        assert_eq!(parse("/run?seed=1&progress=1").duplicate_query_key(), None);
        assert_eq!(
            parse("/run?seed=1&seed=2").duplicate_query_key().as_deref(),
            Some("seed")
        );
        // A bare key and a valued key still collide by name.
        assert_eq!(
            parse("/run?progress&seed=1&progress=1")
                .duplicate_query_key()
                .as_deref(),
            Some("progress")
        );
        // First-wins lookup is unchanged: detection is the caller's choice.
        assert_eq!(
            parse("/run?seed=1&seed=2").query_value("seed").as_deref(),
            Some("1")
        );
    }

    #[test]
    fn disconnect_probe_distinguishes_open_idle_and_closed_peers() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let client = TcpStream::connect(&addr).unwrap();
        let server_side = server.accept().unwrap();
        // Open and idle: not disconnected.
        assert!(!client_disconnected(&server_side));
        // Pending unread data: still not disconnected.
        (&client).write_all(b"x").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(!client_disconnected(&server_side));
        // The probe must not consume the pending byte.
        let mut buf = [0u8; 1];
        (&server_side).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
        // Closed: disconnected.
        drop(client);
        std::thread::sleep(Duration::from_millis(50));
        assert!(client_disconnected(&server_side));
        // The socket is back in blocking mode after every probe; a timed read
        // on the dead peer returns EOF promptly rather than WouldBlock.
        assert_eq!((&server_side).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn stream_deadlines_turn_a_silent_peer_into_a_timeout_error() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let _client = TcpStream::connect(&addr).unwrap(); // connects, sends nothing
        let server_side = server.accept().unwrap();
        set_stream_deadlines(&server_side, Duration::from_millis(80)).unwrap();
        let mut reader = BufReader::new(&server_side);
        let err = Request::read_from(&mut reader).unwrap_err();
        assert!(is_timeout(&err), "expected a timeout kind, got {err:?}");
        assert!(!is_timeout(&io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "closed"
        )));
    }

    #[test]
    fn shutdown_latch_reports_a_real_signal() {
        assert!(shutdown::install());
        assert!(!shutdown::requested());
        // Deliver a real SIGTERM to this process; the installed handler turns
        // it into a latch set instead of a death.
        let status = std::process::Command::new("kill")
            .args(["-TERM", &std::process::id().to_string()])
            .status()
            .unwrap();
        assert!(status.success());
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !shutdown::requested() {
            assert!(std::time::Instant::now() < deadline, "latch never set");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(shutdown::requested());
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"[..],
        ] {
            let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn rejects_oversized_bodies_and_heads() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = Request::read_from(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("byte limit"), "{err}");

        let raw = format!(
            "GET / HTTP/1.1\r\nA: {}\r\n\r\n",
            "x".repeat(MAX_HEAD_BYTES)
        );
        let err = Request::read_from(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("head exceeds"), "{err}");
    }

    #[test]
    fn response_round_trips_through_the_client_decoder() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut stream = server.accept().unwrap();
            let req = {
                let mut reader = BufReader::new(&mut stream);
                Request::read_from(&mut reader).unwrap()
            };
            assert_eq!(req.method, "POST");
            Response::new(200)
                .with_header("X-Echo", "yes")
                .with_body("application/json", req.body)
                .write_to(&mut stream)
                .unwrap();
        });
        let resp = client::request(&addr, "POST", "/echo", &[], b"{\"k\":1}").unwrap();
        handle.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-echo"), Some("yes"));
        assert_eq!(resp.body, b"{\"k\":1}");
    }

    #[test]
    fn chunked_stream_round_trips_through_the_client_decoder() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut stream = server.accept().unwrap();
            {
                let mut reader = BufReader::new(&mut stream);
                Request::read_from(&mut reader).unwrap();
            }
            let mut chunks =
                ChunkedWriter::begin(&mut stream, 200, &[("Content-Type", "text/plain")]).unwrap();
            chunks.chunk(b"hello ").unwrap();
            chunks.chunk(b"").unwrap(); // skipped, must not terminate the stream
            chunks.chunk(b"world").unwrap();
            chunks.finish().unwrap();
        });
        let resp = client::request(&addr, "GET", "/stream", &[], b"").unwrap();
        handle.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello world");
    }
}

//! End-to-end auditor tests: the known-bad fixture workspace must produce
//! exactly the golden diagnostics, and the real workspace must be audit-clean.
//!
//! Regenerate the golden file after an intentional rule change with:
//!
//! ```text
//! PIM_AUDIT_BLESS=1 cargo test -p pim-audit --test fixtures_golden
//! ```

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use pim_audit::{audit_workspace, diag, rules, AuditReport};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn audit_fixtures() -> AuditReport {
    audit_workspace(&fixture_root()).expect("fixture workspace audits")
}

#[test]
fn fixture_diagnostics_match_golden_json() {
    let report = audit_fixtures();
    let rendered = diag::render_json(&report.diagnostics, report.files_scanned, report.suppressed);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.json");
    if std::env::var_os("PIM_AUDIT_BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("read golden file");
    assert_eq!(
        rendered, golden,
        "fixture diagnostics drifted from tests/fixtures/golden.json \
         (rerun with PIM_AUDIT_BLESS=1 if the change is intentional)"
    );
}

#[test]
fn every_rule_fires_at_least_once_in_fixtures() {
    let report = audit_fixtures();
    let fired: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    for rule in rules::RULES {
        assert!(
            fired.contains(rule),
            "rule {rule} produced no fixture finding"
        );
    }
    // The suppression grammar's own lints fire too.
    assert!(fired.contains("malformed-allow"));
    assert!(fired.contains("stale-allow"));
}

#[test]
fn fixture_suppression_counts_one_reviewed_allow() {
    let report = audit_fixtures();
    assert_eq!(
        report.suppressed, 1,
        "exactly one fixture allow is well-formed"
    );
}

#[test]
fn fixture_spans_are_stable_across_runs() {
    let a = audit_fixtures();
    let b = audit_fixtures();
    let spans =
        |r: &AuditReport| -> Vec<String> { r.diagnostics.iter().map(|d| d.span()).collect() };
    assert_eq!(spans(&a), spans(&b));
}

/// The meta-test the whole PR exists for: the real workspace satisfies its own
/// determinism contract. A regression anywhere in the unit-execution path fails
/// this test (and the gating CI audit job) with a file:line finding.
#[test]
fn real_workspace_is_audit_clean() {
    let report = audit_workspace(&workspace_root()).expect("workspace audits");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace violates its determinism contract:\n{}",
        diag::render_human(&report.diagnostics)
    );
}

//! Known-bad fixture: `unsafe` without a SAFETY justification.

pub fn read_raw(ptr: *const u64) -> u64 {
    unsafe { *ptr }
}

pub fn read_justified(ptr: *const u64) -> u64 {
    // SAFETY: callers guarantee ptr is valid and aligned for the read.
    unsafe { *ptr }
}

//! Fixture: a service module *inside* a unit-path crate. The path prefix
//! `crates/pim-harness/src/serve` is listed in `rules::OFF_UNIT_PATH_MODULES`,
//! so the wall-clock read below — request logging, the daemon's bread and
//! butter — must produce ZERO findings without any `audit:allow` comment.
//! (Golden contribution: nothing. The file only raises `files_scanned`.)

pub fn request_elapsed_ms() -> f64 {
    let started = std::time::Instant::now();
    started.elapsed().as_secs_f64() * 1e3
}

//! Known-bad fixture: hash-ordered iteration feeding results.

pub fn assemble(rows: FxHashMap<u64, f64>) -> Vec<f64> {
    let mut out = Vec::new();
    for (_, v) in &rows {
        out.push(v);
    }
    out
}

pub fn collect_ids() -> Vec<u64> {
    let mut seen = HashSet::new();
    seen.insert(1u64);
    seen.iter().copied().collect()
}

// Keyed lookup and length reads are order-safe and must NOT fire.
pub fn lookup(rows: &FxHashMap<u64, f64>, keys: &[u64]) -> f64 {
    let mut total = 0.0;
    for k in keys {
        total += rows.get(k).copied().unwrap_or(0.0);
    }
    total / rows.len() as f64
}

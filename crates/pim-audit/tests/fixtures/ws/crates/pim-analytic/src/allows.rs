//! Fixture for the suppression grammar: one sound allow, one missing its
//! reason, one naming an unknown rule, and one matching nothing.

pub fn reviewed(ops: &[u64]) -> u64 {
    // audit:allow(unwrap-in-library): the caller validated ops is non-empty
    *ops.first().unwrap()
}

pub fn unreviewed(ops: &[u64]) -> u64 {
    *ops.first().unwrap() // audit:allow(unwrap-in-library)
}

// audit:allow(made-up-rule): this rule does not exist
pub fn unknown_rule() {}

// audit:allow(unwrap-in-library): nothing below unwraps anymore
pub fn stale() {}

//! Known-bad fixture: bare `unwrap`/`expect` in library code.

pub fn first_op(ops: &[u64]) -> u64 {
    let head = ops.first().unwrap();
    let copy = ops.first().expect("ops is non-empty");
    head + copy
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(1u64).unwrap();
    }
}

//! Known-bad fixture: ambient entropy and an unseeded RNG construction.

pub fn sample_ambient() -> f64 {
    let mut rng = thread_rng();
    rng.gen()
}

pub fn build_model(nodes: usize) -> Model {
    let stream = RandomStream::new(42, 1);
    Model { nodes, stream }
}

// Seed evidence in the arguments passes: this is the sanctioned shape.
pub fn build_seeded(nodes: usize, seed: u64) -> Model {
    let stream = RandomStream::new(seed, 1);
    Model { nodes, stream }
}

// Seed-derivation helpers may construct RNGs from derived values.
pub fn replication_stream(base: u64, rep: u64) -> RandomStream {
    RandomStream::new(mix(base, rep), 0)
}

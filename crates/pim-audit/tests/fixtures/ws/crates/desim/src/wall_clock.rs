//! Known-bad fixture: wall-clock reads on the unit-execution path.

pub fn simulate_unit(horizon: u64) -> f64 {
    let started = Instant::now();
    let stamp = SystemTime::now();
    run(horizon, stamp);
    started.elapsed().as_secs_f64()
}

// A clock in a string or comment must NOT fire: Instant::now() here is prose.
pub fn describe() -> &'static str {
    "call Instant::now() to time things"
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_tests_are_exempt() {
        let _ = Instant::now();
    }
}

//! A small, honest Rust lexer.
//!
//! The audit rules match *token* sequences, never raw text, so `Instant::now`
//! inside a string literal, a doc comment, or a `#[doc]` attribute can never
//! produce a finding. The lexer understands exactly as much Rust as that
//! guarantee requires: line and nested block comments, string/raw-string/byte
//! string literals with escapes, char literals vs. lifetimes, raw identifiers,
//! and numeric literals. Everything else is a single-character punctuation
//! token. It never fails: unterminated literals lex to end-of-file, which is
//! the most useful behaviour for a linter pointed at in-progress code.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unsafe`, `Instant`, `r#type`, …).
    Ident,
    /// Single punctuation character (`:`, `(`, `{`, `#`, …).
    Punct,
    /// Numeric literal (`42`, `0xBEEF`, `1.5e3`, …).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// `// …` comment, doc comments included. Text keeps the slashes.
    LineComment,
    /// `/* … */` comment, nesting respected. Text keeps the delimiters.
    BlockComment,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// True for comment tokens of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }
}

/// Cursor state shared by the sub-lexers.
struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one char, maintaining the line/column counters.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consume chars while `keep` holds, returning the consumed text.
    fn bump_while(&mut self, keep: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if !keep(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
        out
    }

    /// Consume the body of a quoted literal (after the opening quote), honouring
    /// backslash escapes, through the closing `quote` (or end of file).
    fn bump_quoted(&mut self, quote: char, out: &mut String) {
        while let Some(c) = self.bump() {
            out.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    out.push(escaped);
                }
            } else if c == quote {
                return;
            }
        }
    }

    /// Consume a raw string body at the current position: `#…#"…"#…#` with
    /// `hashes` leading hashes already counted but not consumed.
    fn bump_raw_string(&mut self, out: &mut String) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            out.push('#');
            self.bump();
        }
        if self.peek(0) != Some('"') {
            return; // `r#ident` was mis-routed here; caller prevents this.
        }
        out.push('"');
        self.bump();
        // The body ends at `"` followed by `hashes` hashes.
        while let Some(c) = self.bump() {
            out.push(c);
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    seen += 1;
                    out.push('#');
                    self.bump();
                }
                if seen == hashes {
                    return;
                }
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream, comments included.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let (line, col) = (lx.line, lx.col);
        let mut push = |kind: Kind, text: String| {
            toks.push(Token {
                kind,
                text,
                line,
                col,
            })
        };

        // Comments.
        if c == '/' && lx.peek(1) == Some('/') {
            let text = lx.bump_while(|c| c != '\n');
            push(Kind::LineComment, text);
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            let mut text = String::from("/*");
            lx.bump();
            lx.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (lx.peek(0), lx.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push_str("/*");
                        lx.bump();
                        lx.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push_str("*/");
                        lx.bump();
                        lx.bump();
                    }
                    (Some(_), _) => {
                        if let Some(inner) = lx.bump() {
                            text.push(inner);
                        }
                    }
                    (None, _) => break,
                }
            }
            push(Kind::BlockComment, text);
            continue;
        }

        // Raw strings / raw identifiers: `r"…"`, `r#"…"#`, `r#ident`.
        if c == 'r' && matches!(lx.peek(1), Some('"') | Some('#')) {
            if lx.peek(1) == Some('#') && lx.peek(2).is_some_and(is_ident_start) {
                // Raw identifier `r#type`: lex as a plain identifier without the prefix.
                lx.bump();
                lx.bump();
                let name = lx.bump_while(is_ident_continue);
                push(Kind::Ident, name);
                continue;
            }
            let mut text = String::from("r");
            lx.bump();
            lx.bump_raw_string(&mut text);
            push(Kind::Str, text);
            continue;
        }
        // Byte strings and byte chars: `b"…"`, `br#"…"#`, `b'x'`.
        if c == 'b' {
            match (lx.peek(1), lx.peek(2)) {
                (Some('"'), _) => {
                    let mut text = String::from("b\"");
                    lx.bump();
                    lx.bump();
                    lx.bump_quoted('"', &mut text);
                    push(Kind::Str, text);
                    continue;
                }
                (Some('r'), Some('"')) | (Some('r'), Some('#')) => {
                    let mut text = String::from("br");
                    lx.bump();
                    lx.bump();
                    lx.bump_raw_string(&mut text);
                    push(Kind::Str, text);
                    continue;
                }
                (Some('\''), _) => {
                    let mut text = String::from("b'");
                    lx.bump();
                    lx.bump();
                    lx.bump_quoted('\'', &mut text);
                    push(Kind::Char, text);
                    continue;
                }
                _ => {}
            }
        }

        if is_ident_start(c) {
            let text = lx.bump_while(is_ident_continue);
            push(Kind::Ident, text);
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = lx.bump_while(is_ident_continue);
            // A fractional part: `.` followed by a digit (so `x.0.iter()` and
            // `0..n` keep their dots as punctuation).
            if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                text.push('.');
                lx.bump();
                text.push_str(&lx.bump_while(is_ident_continue));
            }
            push(Kind::Num, text);
            continue;
        }
        if c == '"' {
            let mut text = String::from("\"");
            lx.bump();
            lx.bump_quoted('"', &mut text);
            push(Kind::Str, text);
            continue;
        }
        if c == '\'' {
            // Disambiguate char literal from lifetime/label: an escape or a
            // `'x'` shape is a char, everything else is a lifetime.
            let is_char = lx.peek(1) == Some('\\')
                || (lx.peek(1).is_some_and(|n| n != '\'') && lx.peek(2) == Some('\''));
            if is_char {
                let mut text = String::from("'");
                lx.bump();
                lx.bump_quoted('\'', &mut text);
                push(Kind::Char, text);
            } else {
                lx.bump();
                let name = lx.bump_while(is_ident_continue);
                push(Kind::Lifetime, format!("'{name}"));
            }
            continue;
        }
        // Everything else is single-character punctuation.
        lx.bump();
        push(Kind::Punct, c.to_string());
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn now() { Instant::now() }");
        assert_eq!(toks[0], (Kind::Ident, "fn".into()));
        assert_eq!(toks[1], (Kind::Ident, "now".into()));
        assert!(toks.contains(&(Kind::Ident, "Instant".into())));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == Kind::Punct && t == ":")
                .count(),
            2
        );
    }

    #[test]
    fn strings_hide_their_contents_from_ident_matching() {
        let toks = kinds(r##"let s = "Instant::now()"; let r = r#"SystemTime::now()"# ;"##);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == Kind::Ident && t == "Instant"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == Kind::Ident && t == "SystemTime"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = kinds("// Instant::now()\n/* SystemTime::now() */ let x = 1;");
        assert_eq!(toks[0].0, Kind::LineComment);
        assert_eq!(toks[1].0, Kind::BlockComment);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == Kind::Ident && t == "Instant"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (Kind::Ident, "x".into()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds(r"let c = 'a'; let e = '\n'; fn f<'a>(x: &'a str) {} 'outer: loop {}");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 2);
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == Kind::Lifetime && t == "'a")
                .count(),
            2
        );
        assert!(toks.contains(&(Kind::Lifetime, "'outer".into())));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = kinds(r##"let b = b"bytes"; let c = b'\n'; let r#type = 1;"##);
        assert!(toks.contains(&(Kind::Str, "b\"bytes\"".into())));
        assert!(toks.contains(&(Kind::Ident, "type".into())));
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 1);
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let toks = kinds("x.0.iter(); 0..n; 1.5e3;");
        assert!(toks.contains(&(Kind::Ident, "iter".into())));
        assert!(toks.contains(&(Kind::Num, "0".into())));
        assert!(toks.contains(&(Kind::Num, "1.5e3".into())));
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_literals_lex_to_eof_without_panicking() {
        for src in ["\"open", "r#\"open", "'", "/* open", "b\"open"] {
            let _ = lex(src);
        }
    }
}

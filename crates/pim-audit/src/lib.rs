//! # pim-audit — the determinism & purity lint pass
//!
//! The incremental sweep cache (PR 5) treats a unit result as a pure function
//! of its `UnitKey { cache_schema, scenario, fingerprint, seed, grid_index,
//! replication_index }`: a hit replays a stored result instead of simulating.
//! That is only sound while nothing on the unit-execution path consults a wall
//! clock, ambient entropy, or hash-iteration order. This crate enforces that
//! contract *statically*, over the workspace's own sources.
//!
//! The pass is a real (if small) analysis, not a grep: sources are tokenized by
//! a comment/string/char-literal-aware lexer ([`lexer`]), rules match token
//! sequences with file-role scoping ([`rules`]), and findings flow through a
//! shared diagnostics pipeline ([`diag`]) with human and JSON renderings,
//! `--deny` gating, and reviewed inline suppressions that are themselves
//! linted for staleness.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

use diag::Diagnostic;

/// The result of auditing a workspace tree.
#[derive(Debug)]
pub struct AuditReport {
    /// All findings, ordered by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by well-formed `audit:allow` comments.
    pub suppressed: usize,
}

impl AuditReport {
    /// True when the tree satisfies the determinism contract.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The standard `N files: M findings…` trailer.
    pub fn summary(&self) -> String {
        let checked = format!(
            "{} file{}",
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" }
        );
        diag::summary_line(&checked, self.diagnostics.len(), self.suppressed)
    }
}

/// Audit every auditable `.rs` file under `root` (skipping `target/`, `vendor/`,
/// fixtures and dot-directories) against the full rule set.
///
/// `Err` is reserved for environmental failures (unreadable directories or
/// files); rule violations are data, returned inside the report.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, String> {
    let files = walk::collect_sources(root)?;
    if files.is_empty() {
        return Err(format!(
            "no .rs files found under {} — is this the workspace root?",
            root.display()
        ));
    }
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for file in &files {
        let src = std::fs::read_to_string(&file.path)
            .map_err(|e| format!("cannot read {}: {e}", file.rel))?;
        let audit = rules::audit_file(file, &src);
        diagnostics.extend(audit.findings);
        suppressed += audit.suppressed;
    }
    // Files are walked in sorted order and per-file findings are span-sorted,
    // so the report is already deterministic end to end.
    Ok(AuditReport {
        diagnostics,
        files_scanned: files.len(),
        suppressed,
    })
}

//! `pim-audit` — run the determinism & purity audit over a workspace tree.
//!
//! ```text
//! pim-audit [--root DIR] [--format human|json] [--deny]
//! ```
//!
//! Exit codes: `0` clean (or findings without `--deny`), `1` findings under
//! `--deny`, `2` usage or environmental error. CI runs
//! `pim-audit --deny --format json` as a gating job.

use std::path::PathBuf;
use std::process::ExitCode;

use pim_audit::{audit_workspace, diag};

const USAGE: &str = "\
pim-audit: statically enforce the unit-result purity contract

USAGE:
    pim-audit [OPTIONS]

OPTIONS:
    --root <DIR>       Workspace root to audit [default: .]
    --format <FMT>     Output format: human | json [default: human]
    --deny             Exit nonzero when any finding remains
    --list-rules       Print the rule set and exit
    -h, --help         Show this help
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = String::from("human");
    let mut deny = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root requires a directory"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = "human".into(),
                Some("json") => format = "json".into(),
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (human | json)"))
                }
                None => return usage_error("--format requires a value (human | json)"),
            },
            "--deny" => deny = true,
            "--list-rules" => {
                for rule in pim_audit::rules::RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pim-audit: {e}");
            return ExitCode::from(2);
        }
    };

    match format.as_str() {
        "json" => print!(
            "{}",
            diag::render_json(&report.diagnostics, report.files_scanned, report.suppressed)
        ),
        _ => {
            print!("{}", diag::render_human(&report.diagnostics));
            println!("{}", report.summary());
        }
    }

    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("pim-audit: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

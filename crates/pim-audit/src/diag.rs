//! Diagnostics: the finding type, the human renderer, and the JSON renderer.
//!
//! This module is the *shared* diagnostics pipeline: the `pim-audit` binary,
//! the `pim-tradeoffs audit` subcommand and `pim-tradeoffs spec check` all
//! print through [`render_human`]/[`summary_line`], so every checker in the
//! workspace reports spans, severities and summaries in one format.

/// How serious a diagnostic is. Every audit finding is currently an error
/// (`--deny` gates on any finding); `Warning` exists so future advisory rules
/// and non-gating checkers can share the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding: a rule violation (or a checker failure) anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule (or checker) that produced the finding, e.g. `wall-clock-in-unit-path`.
    pub rule: String,
    pub severity: Severity,
    /// Workspace-root-relative path, forward slashes on every platform.
    pub file: String,
    /// 1-based line; `0` means the diagnostic concerns the whole file.
    pub line: u32,
    /// 1-based column; `0` when unknown.
    pub col: u32,
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic anchored to a `file:line:col` span.
    pub fn at(rule: &str, file: &str, line: u32, col: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Error,
            file: file.to_string(),
            line,
            col,
            message,
        }
    }

    /// A diagnostic about a whole file (no line span) — spec-check failures,
    /// unreadable inputs, and the like.
    pub fn file_level(rule: &str, file: &str, message: String) -> Diagnostic {
        Diagnostic::at(rule, file, 0, 0, message)
    }

    /// `file:line:col` (omitting zero parts), the clickable prefix of the
    /// human rendering.
    pub fn span(&self) -> String {
        match (self.line, self.col) {
            (0, _) => self.file.clone(),
            (l, 0) => format!("{}:{l}", self.file),
            (l, c) => format!("{}:{l}:{c}", self.file),
        }
    }
}

/// Render diagnostics for a terminal, one line each:
/// `file:line:col: error[rule]: message`.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}: {}[{}]: {}\n",
            d.span(),
            d.severity.label(),
            d.rule,
            d.message
        ));
    }
    out
}

/// The one-line summary every checker ends with: what was checked, how many
/// findings, and how many findings were suppressed by reviewed allows.
pub fn summary_line(checked: &str, findings: usize, suppressed: usize) -> String {
    let mut line = format!(
        "{checked}: {findings} finding{}",
        if findings == 1 { "" } else { "s" }
    );
    if suppressed > 0 {
        line.push_str(&format!(", {suppressed} suppressed by audit:allow"));
    }
    line
}

/// Schema version of the JSON rendering ([`render_json`]).
pub const JSON_SCHEMA_VERSION: u32 = 1;

/// Render a machine-readable report: pretty JSON, stable field order, findings
/// in input order (callers sort by span first), trailing newline. Hand-rolled
/// so the auditor stays dependency-free; the escaping covers everything that
/// can appear in paths and messages.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize, suppressed: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {JSON_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"suppressed\": {suppressed},\n"));
    out.push_str(&format!(
        "  \"findings\": {}",
        if diags.is_empty() { "[]" } else { "[" }
    ));
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {");
        out.push_str(&format!("\"rule\": \"{}\", ", json_escape(&d.rule)));
        out.push_str(&format!("\"severity\": \"{}\", ", d.severity.label()));
        out.push_str(&format!("\"file\": \"{}\", ", json_escape(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"column\": {}, ", d.col));
        out.push_str(&format!("\"message\": \"{}\"", json_escape(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_includes_span_rule_and_message() {
        let d = Diagnostic::at(
            "unwrap-in-library",
            "crates/x/src/lib.rs",
            10,
            5,
            "bare unwrap".into(),
        );
        assert_eq!(
            render_human(&[d]),
            "crates/x/src/lib.rs:10:5: error[unwrap-in-library]: bare unwrap\n"
        );
    }

    #[test]
    fn file_level_diagnostics_omit_the_span() {
        let d = Diagnostic::file_level("spec-check", "examples/specs/bad.json", "boom".into());
        assert_eq!(
            render_human(&[d]),
            "examples/specs/bad.json: error[spec-check]: boom\n"
        );
    }

    #[test]
    fn json_rendering_is_parseable_shape_and_escapes() {
        let d = Diagnostic::at("r", "a\\b.rs", 1, 2, "say \"hi\"\n".into());
        let json = render_json(&[d], 3, 1);
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"suppressed\": 1"));
        assert!(json.contains("\"file\": \"a\\\\b.rs\""));
        assert!(json.contains("\"message\": \"say \\\"hi\\\"\\n\""));
        assert!(json.ends_with("\n"));
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        let json = render_json(&[], 0, 0);
        assert!(json.contains("\"findings\": []"));
    }

    #[test]
    fn summary_counts_read_naturally() {
        assert_eq!(summary_line("88 files", 0, 0), "88 files: 0 findings");
        assert_eq!(summary_line("1 file", 1, 0), "1 file: 1 finding");
        assert_eq!(
            summary_line("9 files", 2, 3),
            "9 files: 2 findings, 3 suppressed by audit:allow"
        );
    }
}

//! Workspace discovery: find every `.rs` file the audit covers and classify it.
//!
//! The classification is path-based and mirrors Cargo's target layout, because
//! the rules' scopes are expressed in Cargo's vocabulary: *library* code is held
//! to the full determinism contract, *bins* are the CLI layer (progress
//! reporting may read clocks), and *tests/benches/examples* are exempt from the
//! robustness rules (`unwrap-in-library`) but never from `unsafe` hygiene.

use std::path::{Path, PathBuf};

/// What kind of Cargo target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `src/**` of a crate (excluding `src/bin/` and `src/main.rs`).
    Library,
    /// `src/bin/**` or `src/main.rs`: a binary's CLI layer.
    Bin,
    /// `tests/**`: integration test code.
    Test,
    /// `benches/**`: benchmark code.
    Bench,
    /// `examples/**`: example code.
    Example,
}

/// One source file scheduled for auditing.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute (or root-joined) path for reading.
    pub path: PathBuf,
    /// Workspace-root-relative path with forward slashes — the reporting identity.
    pub rel: String,
    /// Owning crate: `crates/<name>/…` maps to `<name>`, everything else to the
    /// root package.
    pub crate_name: String,
    pub role: Role,
}

/// Directory names never descended into: build output, vendored stand-ins
/// (external code is not ours to lint), VCS internals, and the auditor's own
/// known-bad lint fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", ".claude"];

/// Name of the root package, used for files outside `crates/`.
const ROOT_CRATE: &str = "pim-repro";

/// Recursively collect and classify every auditable `.rs` file under `root`,
/// in deterministic (sorted-path) order.
pub fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = relative_slash(root, &path);
            out.push(SourceFile {
                crate_name: crate_of(&rel),
                role: role_of(&rel),
                path,
                rel,
            });
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    ROOT_CRATE.to_string()
}

fn role_of(rel: &str) -> Role {
    let parts: Vec<&str> = rel.split('/').collect();
    // Strip the `crates/<name>` prefix so crate-local and root layouts classify
    // identically.
    let local: &[&str] = if parts.first() == Some(&"crates") && parts.len() > 2 {
        &parts[2..]
    } else {
        &parts
    };
    match local.first().copied() {
        Some("tests") => Role::Test,
        Some("benches") => Role::Bench,
        Some("examples") => Role::Example,
        Some("src") => {
            if local.get(1).copied() == Some("bin") || local.last().copied() == Some("main.rs") {
                Role::Bin
            } else {
                Role::Library
            }
        }
        _ => Role::Library,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_and_role_classification() {
        let cases = [
            ("crates/desim/src/engine.rs", "desim", Role::Library),
            (
                "crates/pim-bench/src/bin/pim-perf.rs",
                "pim-bench",
                Role::Bin,
            ),
            ("crates/pim-audit/src/main.rs", "pim-audit", Role::Bin),
            (
                "crates/pim-core/tests/properties.rs",
                "pim-core",
                Role::Test,
            ),
            (
                "crates/pim-bench/benches/fig5_gain.rs",
                "pim-bench",
                Role::Bench,
            ),
            ("src/bin/pim-tradeoffs.rs", "pim-repro", Role::Bin),
            ("src/lib.rs", "pim-repro", Role::Library),
            ("tests/cli.rs", "pim-repro", Role::Test),
            ("examples/quickstart.rs", "pim-repro", Role::Example),
        ];
        for (rel, crate_name, role) in cases {
            assert_eq!(crate_of(rel), crate_name, "{rel}");
            assert_eq!(role_of(rel), role, "{rel}");
        }
    }

    #[test]
    fn collect_walks_sorted_and_skips_excluded_dirs() {
        let root = std::env::temp_dir().join(format!("pim-audit-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for dir in [
            "crates/x/src",
            "vendor/dep/src",
            "target/debug",
            "tests/fixtures/ws",
        ] {
            std::fs::create_dir_all(root.join(dir)).unwrap();
        }
        std::fs::write(root.join("crates/x/src/lib.rs"), "fn a() {}").unwrap();
        std::fs::write(root.join("vendor/dep/src/lib.rs"), "fn v() {}").unwrap();
        std::fs::write(root.join("target/debug/gen.rs"), "fn t() {}").unwrap();
        std::fs::write(root.join("tests/fixtures/ws/bad.rs"), "fn f() {}").unwrap();
        let files = collect_sources(&root).unwrap();
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        assert_eq!(rels, vec!["crates/x/src/lib.rs"]);
        let _ = std::fs::remove_dir_all(&root);
    }
}

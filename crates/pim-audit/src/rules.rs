//! The rule engine: per-file structural analysis, the determinism rule set, and
//! `audit:allow` suppression handling.
//!
//! Every rule matches **token sequences** from [`crate::lexer`] — never raw
//! text — and is scoped by the file's crate and Cargo role (see
//! [`crate::walk`]). Code under `#[cfg(test)]` / `#[test]` attributes is
//! excluded from the purity rules (tests may time themselves and unwrap
//! freely) but *not* from `unsafe` hygiene.
//!
//! ## Suppressions
//!
//! A finding is suppressed by a comment on the same line or the line directly
//! above, of the shape (the comment must start with the directive):
//!
//! ```text
//! // audit:allow(unwrap-in-library): mutex poisoning only follows a worker panic
//! ```
//!
//! Suppressions are themselves linted: an allow without a reason, naming an
//! unknown rule, or matching no finding is an error (`malformed-allow` /
//! `stale-allow`), so the allowlist can never rot silently.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Kind, Token};
use crate::walk::{Role, SourceFile};

/// Crates on the unit-execution path: everything that runs between a
/// [`UnitKey`]'s derivation and the unit result that gets cached under it.
/// Wall clocks, ambient entropy and hash-ordered iteration are contract
/// violations *here*; `pim-bench` and the bin targets are the measurement/CLI
/// layer where timing is the point.
pub const UNIT_PATH_CRATES: &[&str] = &[
    "desim",
    "pim-core",
    "pim-analytic",
    "pim-parcels",
    "pim-mem",
    "pim-workload",
    "pim-harness",
];

/// Modules *inside* unit-path crates that are nevertheless service/CLI surface,
/// not unit execution: nothing in them runs between a `UnitKey`'s derivation and
/// the cached unit result. Each entry is a workspace-relative path prefix (`/`
/// separators, no extension) covering both `<prefix>.rs` and `<prefix>/...`.
/// Classifying them off the unit path here — instead of sprinkling ad-hoc
/// `audit:allow` comments through their bodies — keeps the allow grammar
/// reserved for genuine single-site exceptions.
pub const OFF_UNIT_PATH_MODULES: &[&str] = &["crates/pim-harness/src/serve"];

/// The suppressible rules, in documentation order.
pub const RULES: &[&str] = &[
    "wall-clock-in-unit-path",
    "ambient-entropy",
    "unordered-iteration-in-results",
    "unsafe-without-safety-comment",
    "unwrap-in-library",
];

/// Ambient entropy sources: constructing randomness from any of these makes a
/// unit result depend on the machine instead of the `UnitKey`.
const AMBIENT_SOURCES: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];

/// Hash-ordered container type names (std and the `desim::fxhash` aliases).
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Iterator-producing methods whose order is the hash order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// The audit result for one file.
pub struct FileAudit {
    /// Diagnostics, sorted by (line, col, rule).
    pub findings: Vec<Diagnostic>,
    /// Findings suppressed by a well-formed `audit:allow`.
    pub suppressed: usize,
}

/// One rule hit before suppression matching.
struct RawFinding {
    rule: &'static str,
    line: u32,
    col: u32,
    message: String,
}

/// A parsed `audit:allow` comment.
struct Allow {
    rule: String,
    line: u32,
    /// The raw directive, echoed in malformed/stale diagnostics.
    text: String,
    has_reason: bool,
    used: bool,
}

/// Per-file token view with the structural facts rules share.
struct Ctx<'a> {
    file: &'a SourceFile,
    code: Vec<&'a Token>,
    /// `in_test[i]`: code token `i` lies under a `#[test]`/`#[cfg(test)]` item.
    in_test: Vec<bool>,
    /// Named `fn` items as (name, start, end) code-token index ranges.
    fn_spans: Vec<(String, usize, usize)>,
}

impl<'a> Ctx<'a> {
    fn ident(&self, i: usize) -> Option<&str> {
        let t = self.code.get(i)?;
        (t.kind == Kind::Ident).then_some(t.text.as_str())
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == Kind::Punct && t.text.len() == 1 && t.text.starts_with(c))
    }

    /// True when code tokens `i..i+2` spell `::`.
    fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }

    /// The innermost named function containing code token `i`.
    fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.fn_spans
            .iter()
            .filter(|(_, s, e)| (*s..=*e).contains(&i))
            .min_by_key(|(_, s, e)| e - s)
            .map(|(name, _, _)| name.as_str())
    }

    fn finding(&self, out: &mut Vec<RawFinding>, rule: &'static str, i: usize, message: String) {
        let t = self.code[i];
        out.push(RawFinding {
            rule,
            line: t.line,
            col: t.col,
            message,
        });
    }
}

/// Audit one file's source, returning findings with `file.rel` spans.
pub fn audit_file(file: &SourceFile, src: &str) -> FileAudit {
    let toks = lex(src);
    let code: Vec<&Token> = toks.iter().filter(|t| !t.is_comment()).collect();
    let comments: Vec<&Token> = toks.iter().filter(|t| t.is_comment()).collect();
    let in_test = test_excluded(&code);
    let fn_spans = fn_spans(&code);
    let ctx = Ctx {
        file,
        code,
        in_test,
        fn_spans,
    };

    let mut raw = Vec::new();
    rule_wall_clock(&ctx, &mut raw);
    rule_ambient_entropy(&ctx, &mut raw);
    rule_unordered_iteration(&ctx, &mut raw);
    rule_unsafe(&ctx, &comments, &mut raw);
    rule_unwrap(&ctx, &mut raw);

    apply_allows(file, raw, parse_allows(&comments))
}

// ---------------------------------------------------------------------------
// Structural analysis
// ---------------------------------------------------------------------------

/// Index of the `}` matching the `{` at `open` (last token if unterminated).
fn match_brace(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (m, t) in code.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return m;
                    }
                }
                _ => {}
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Mark every code token covered by an item carrying a `test`-bearing attribute
/// (`#[cfg(test)] mod …`, `#[test] fn …`, `#[cfg(any(test, …))] …`).
fn test_excluded(code: &[&Token]) -> Vec<bool> {
    let n = code.len();
    let mut excl = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if !(code[i].kind == Kind::Punct
            && code[i].text == "#"
            && i + 1 < n
            && code[i + 1].text == "[")
        {
            i += 1;
            continue;
        }
        // Find the attribute's closing `]`, noting whether it mentions `test`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut has_test = false;
        while j < n {
            match (code[j].kind, code[j].text.as_str()) {
                (Kind::Punct, "[") => depth += 1,
                (Kind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (Kind::Ident, "test") => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if j >= n {
            break;
        }
        if !has_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = j + 1;
        while k + 1 < n && code[k].text == "#" && code[k + 1].text == "[" {
            let mut depth = 0usize;
            while k < n {
                match code[k].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // The item body is the first `{` at bracket depth 0; a `;` first means a
        // body-less item (`#[cfg(test)] use …;`).
        let mut depth = 0usize;
        let mut m = k;
        let mut body = None;
        while m < n {
            match code[m].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    body = Some(m);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            m += 1;
        }
        let end = match body {
            Some(b) => match_brace(code, b),
            None => m.min(n - 1),
        };
        for slot in excl.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    excl
}

/// Collect named `fn` items with their body token ranges.
fn fn_spans(code: &[&Token]) -> Vec<(String, usize, usize)> {
    let n = code.len();
    let mut out = Vec::new();
    for i in 0..n {
        if !(code[i].kind == Kind::Ident && code[i].text == "fn") {
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            continue;
        }
        // The body `{` is the first brace outside the parameter parens; a `;`
        // first means a trait-method declaration without a body.
        let mut depth = 0usize;
        let mut m = i + 2;
        while m < n {
            match code[m].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    out.push((name_tok.text.clone(), i, match_brace(code, m)));
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            m += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn on_unit_path(file: &SourceFile) -> bool {
    UNIT_PATH_CRATES.contains(&file.crate_name.as_str())
        && file.role == Role::Library
        && !OFF_UNIT_PATH_MODULES.iter().any(|prefix| {
            file.rel == format!("{prefix}.rs") || file.rel.starts_with(&format!("{prefix}/"))
        })
}

/// Rule 1: no wall-clock reads on the unit-execution path.
fn rule_wall_clock(ctx: &Ctx<'_>, out: &mut Vec<RawFinding>) {
    if !on_unit_path(ctx.file) {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(ty) = ctx.ident(i) else { continue };
        if (ty == "Instant" || ty == "SystemTime")
            && ctx.is_path_sep(i + 1)
            && ctx.ident(i + 3) == Some("now")
        {
            ctx.finding(
                out,
                "wall-clock-in-unit-path",
                i,
                format!(
                    "`{ty}::now()` on the unit-execution path: unit results must be pure \
                     functions of their UnitKey; timing belongs in pim-bench or the CLI layer"
                ),
            );
        }
    }
}

/// Rule 2: no ambient entropy anywhere, and on the unit path RNGs may only be
/// constructed from an explicit seed (or inside a seed/stream helper).
fn rule_ambient_entropy(ctx: &Ctx<'_>, out: &mut Vec<RawFinding>) {
    let ambient_scope = matches!(ctx.file.role, Role::Library | Role::Bin);
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = ctx.ident(i) else { continue };
        if ambient_scope && AMBIENT_SOURCES.contains(&name) {
            ctx.finding(
                out,
                "ambient-entropy",
                i,
                format!(
                    "`{name}` draws entropy from the machine, not from the seed chain: \
                     all randomness must derive from an explicit experiment seed"
                ),
            );
            continue;
        }
        if !on_unit_path(ctx.file) {
            continue;
        }
        // RNG constructor `Type::ctor(…)`?
        if !(ctx.is_path_sep(i + 1) && ctx.is_punct(i + 4, '(')) {
            continue;
        }
        let Some(ctor) = ctx.ident(i + 3) else {
            continue;
        };
        let is_rng_ctor = (name == "RandomStream" && ctor == "new")
            || matches!(ctor, "seed_from_u64" | "from_seed" | "from_rng");
        if !is_rng_ctor {
            continue;
        }
        // Legal inside a seed/stream derivation helper…
        if ctx
            .enclosing_fn(i)
            .is_some_and(|f| f.contains("seed") || f.contains("stream"))
        {
            continue;
        }
        // …or when the constructor visibly consumes a seed value.
        let mut depth = 0usize;
        let mut m = i + 4;
        let mut seeded = false;
        while m < ctx.code.len() {
            match ctx.code[m].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if ctx.code[m].kind == Kind::Ident
                        && ctx.code[m].text.to_ascii_lowercase().contains("seed")
                    {
                        seeded = true;
                    }
                }
            }
            m += 1;
        }
        if !seeded {
            ctx.finding(
                out,
                "ambient-entropy",
                i,
                format!(
                    "`{name}::{ctor}` constructs an RNG without an explicit seed in scope: \
                     derive streams through the seed helpers (point_seed, replication_seed, \
                     spec::unit_seed) so unit results stay a pure function of their UnitKey"
                ),
            );
        }
    }
}

/// Rule 3: no iteration over hash-ordered containers on result paths.
fn rule_unordered_iteration(ctx: &Ctx<'_>, out: &mut Vec<RawFinding>) {
    if !on_unit_path(ctx.file) {
        return;
    }
    let n = ctx.code.len();
    // Pass 1: names bound to hash-ordered containers, from typed bindings
    // (`x: FxHashMap<…>`, struct fields, params) and inferred constructor
    // bindings (`let mut x = HashMap::new()`).
    let mut hash_names: Vec<String> = Vec::new();
    for i in 0..n {
        let Some(name) = ctx.ident(i) else { continue };
        if !HASH_TYPES.contains(&name) {
            continue;
        }
        // Typed: walk left over type syntax (`&`, `mut`, `<`, path segments) to
        // a single `:` preceded by the bound identifier.
        let mut j = i;
        while j > 0 {
            let t = ctx.code[j - 1];
            let part_of_type = (t.kind == Kind::Ident && t.text != "let")
                || t.kind == Kind::Lifetime
                || (t.kind == Kind::Punct && matches!(t.text.as_str(), "&" | "<" | ">" | ","));
            if !part_of_type {
                break;
            }
            j -= 1;
        }
        if j >= 2 && ctx.is_punct(j - 1, ':') && !ctx.is_punct(j - 2, ':') {
            if let Some(binder) = ctx.ident(j - 2) {
                hash_names.push(binder.to_string());
            }
        }
        // Inferred: `let [mut] x = FxHashMap::…`.
        if ctx.is_punct(i.wrapping_sub(1), '=') {
            if let Some(binder) = ctx.ident(i.wrapping_sub(2)) {
                hash_names.push(binder.to_string());
            }
        }
    }
    let is_hash = |name: &str| hash_names.iter().any(|h| h == name);

    // Pass 2a: `x.iter()`-family calls on a hash-bound name.
    for i in 0..n {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = ctx.ident(i) else { continue };
        if !is_hash(name) {
            continue;
        }
        if ctx.is_punct(i + 1, '.') && ctx.is_punct(i + 3, '(') {
            if let Some(method) = ctx.ident(i + 2) {
                if HASH_ITER_METHODS.contains(&method) {
                    ctx.finding(
                        out,
                        "unordered-iteration-in-results",
                        i,
                        hash_iter_message(name, &format!(".{method}()")),
                    );
                }
            }
        }
    }
    // Pass 2b: `for … in [&]​[mut] [self.]x { … }`.
    for i in 0..n {
        if ctx.in_test[i] || ctx.ident(i) != Some("for") {
            continue;
        }
        // Find the `in` of this loop header (skip patterns; parens nest).
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < n {
            match ctx.code[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "in" if depth == 0 && ctx.code[j].kind == Kind::Ident => break,
                "{" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= n || ctx.code[j].text != "in" {
            continue;
        }
        // Collect the iterated expression up to the body `{`.
        let mut expr: Vec<&Token> = Vec::new();
        let mut m = j + 1;
        let mut depth = 0usize;
        while m < n {
            match ctx.code[m].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => break,
                _ => {}
            }
            expr.push(ctx.code[m]);
            m += 1;
        }
        // Flag only a bare `[&][mut] [self.]name` tail — indexing, method calls
        // (`.len()`) and ranges are order-safe or covered by pass 2a.
        let names: Vec<&Token> = expr
            .iter()
            .copied()
            .filter(|t| t.kind == Kind::Ident && t.text != "mut" && t.text != "self")
            .collect();
        let puncts_ok = expr.iter().all(|t| {
            t.kind == Kind::Ident || (t.kind == Kind::Punct && matches!(t.text.as_str(), "&" | "."))
        });
        if puncts_ok && names.len() == 1 && is_hash(&names[0].text) {
            ctx.finding(
                out,
                "unordered-iteration-in-results",
                i,
                hash_iter_message(&names[0].text, "a `for` loop"),
            );
        }
    }
}

fn hash_iter_message(name: &str, how: &str) -> String {
    format!(
        "iteration over hash-ordered `{name}` via {how} on a result path: hash order is \
         not deterministic; use a BTreeMap/BTreeSet or sort before folding into results"
    )
}

/// Rule 4: every `unsafe` needs a `// SAFETY:` justification (tests included).
fn rule_unsafe(ctx: &Ctx<'_>, comments: &[&Token], out: &mut Vec<RawFinding>) {
    for i in 0..ctx.code.len() {
        if ctx.ident(i) != Some("unsafe") {
            continue;
        }
        let line = ctx.code[i].line;
        let justified = comments
            .iter()
            .any(|c| c.line + 3 >= line && c.line <= line && c.text.contains("SAFETY:"));
        if !justified {
            ctx.finding(
                out,
                "unsafe-without-safety-comment",
                i,
                "`unsafe` without a `// SAFETY:` comment justifying why the invariants hold"
                    .to_string(),
            );
        }
    }
}

/// Rule 5: no `unwrap()`/`expect()` in library code without a reviewed allow.
fn rule_unwrap(ctx: &Ctx<'_>, out: &mut Vec<RawFinding>) {
    if ctx.file.role != Role::Library {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] || !ctx.is_punct(i, '.') {
            continue;
        }
        let Some(method) = ctx.ident(i + 1) else {
            continue;
        };
        if (method == "unwrap" || method == "expect") && ctx.is_punct(i + 2, '(') {
            ctx.finding(
                out,
                "unwrap-in-library",
                i + 1,
                format!(
                    "`{method}()` in library code can panic mid-batch: propagate the error \
                     (io_err for filesystem paths) or add `audit:allow(unwrap-in-library)` \
                     with the reason it cannot fail"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Parse `audit:allow` directives out of the comment tokens. Only comments that
/// *start* with the directive count, so prose mentioning the syntax is inert.
fn parse_allows(comments: &[&Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !body.starts_with("audit:allow") {
            continue;
        }
        let rest = &body["audit:allow".len()..];
        let (rule, after) = match (rest.strip_prefix('('), rest.find(')')) {
            (Some(_), Some(close)) => (rest[1..close].trim().to_string(), &rest[close + 1..]),
            _ => (String::new(), ""),
        };
        let has_reason = after
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        out.push(Allow {
            rule,
            line: c.line,
            text: body.trim_end().to_string(),
            has_reason,
            used: false,
        });
    }
    out
}

/// Match findings against allows: suppress what a well-formed allow covers, then
/// lint the allows themselves (missing reason, unknown rule, stale).
fn apply_allows(file: &SourceFile, raw: Vec<RawFinding>, mut allows: Vec<Allow>) -> FileAudit {
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let covered = allows.iter_mut().find(|a| {
            a.has_reason
                && a.rule == f.rule
                && RULES.contains(&a.rule.as_str())
                && (a.line == f.line || a.line + 1 == f.line)
        });
        match covered {
            Some(a) => {
                a.used = true;
                suppressed += 1;
            }
            None => findings.push(Diagnostic::at(f.rule, &file.rel, f.line, f.col, f.message)),
        }
    }
    for a in &allows {
        if !RULES.contains(&a.rule.as_str()) {
            findings.push(Diagnostic::at(
                "malformed-allow",
                &file.rel,
                a.line,
                1,
                format!(
                    "`{}` names no audit rule (known rules: {})",
                    a.text,
                    RULES.join(", ")
                ),
            ));
        } else if !a.has_reason {
            findings.push(Diagnostic::at(
                "malformed-allow",
                &file.rel,
                a.line,
                1,
                format!(
                    "`{}` has no reason: write `audit:allow({}): <why this is sound>`",
                    a.text, a.rule
                ),
            ));
        } else if !a.used {
            findings.push(Diagnostic::at(
                "stale-allow",
                &file.rel,
                a.line,
                1,
                format!(
                    "`{}` suppresses nothing on this or the next line: the violation was \
                     fixed or moved — delete the allow",
                    a.text
                ),
            ));
        }
    }
    findings
        .sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    FileAudit {
        findings,
        suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lib_file(crate_name: &str) -> SourceFile {
        SourceFile {
            path: PathBuf::new(),
            rel: format!("crates/{crate_name}/src/lib.rs"),
            crate_name: crate_name.to_string(),
            role: Role::Library,
        }
    }

    fn rules_hit(crate_name: &str, src: &str) -> Vec<String> {
        audit_file(&lib_file(crate_name), src)
            .findings
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn wall_clock_fires_only_on_unit_path_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_hit("desim", src), vec!["wall-clock-in-unit-path"]);
        assert!(rules_hit("pim-bench", src).is_empty());
        assert!(rules_hit("pim-audit", src).is_empty());
    }

    #[test]
    fn off_unit_path_modules_are_exempt_inside_unit_path_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        // The serve module lives in pim-harness (a unit-path crate) but is
        // classified service surface: both the module file and any submodule
        // directory fall outside the unit path.
        for rel in [
            "crates/pim-harness/src/serve.rs",
            "crates/pim-harness/src/serve/daemon.rs",
        ] {
            let file = SourceFile {
                path: PathBuf::new(),
                rel: rel.to_string(),
                crate_name: "pim-harness".to_string(),
                role: Role::Library,
            };
            assert!(!on_unit_path(&file), "{rel}");
            assert!(audit_file(&file, src).findings.is_empty(), "{rel}");
        }
        // A sibling module with a merely similar name stays on the unit path.
        let file = SourceFile {
            path: PathBuf::new(),
            rel: "crates/pim-harness/src/server_x.rs".to_string(),
            crate_name: "pim-harness".to_string(),
            role: Role::Library,
        };
        assert!(on_unit_path(&file));
        assert_eq!(audit_file(&file, src).findings.len(), 1);
    }

    #[test]
    fn wall_clock_ignores_comments_strings_and_tests() {
        let src = r#"
            // Instant::now() in prose
            fn f() { let s = "Instant::now()"; }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let _ = Instant::now(); }
            }
        "#;
        assert!(rules_hit("desim", src).is_empty());
    }

    #[test]
    fn ambient_sources_fire_everywhere_outside_tests() {
        assert_eq!(
            rules_hit("pim-bench", "fn f() { let r = thread_rng(); }"),
            vec!["ambient-entropy"]
        );
    }

    #[test]
    fn unseeded_rng_construction_fires_on_unit_path() {
        assert_eq!(
            rules_hit(
                "pim-core",
                "fn build() { let r = RandomStream::new(42, 1); }"
            ),
            vec!["ambient-entropy"]
        );
        // Seed evidence in the arguments is enough.
        assert!(rules_hit(
            "pim-core",
            "fn build(seed: u64) { let r = RandomStream::new(seed, 1); }"
        )
        .is_empty());
        // …or being inside a seed/stream helper.
        assert!(rules_hit(
            "desim",
            "fn replication_seed(s: u64) -> u64 { StdRng::seed_from_u64(mix(s, 1)); 0 }"
        )
        .is_empty());
    }

    #[test]
    fn hash_iteration_fires_for_loops_and_iter_calls() {
        let src = "
            fn assemble(map: FxHashMap<u64, f64>) {
                for (k, v) in &map { emit(k, v); }
            }";
        assert_eq!(
            rules_hit("pim-harness", src),
            vec!["unordered-iteration-in-results"]
        );
        let src = "
            fn assemble() {
                let mut set = HashSet::new();
                let all: Vec<_> = set.iter().collect();
            }";
        assert_eq!(
            rules_hit("pim-harness", src),
            vec!["unordered-iteration-in-results"]
        );
    }

    #[test]
    fn hash_lookup_and_length_are_not_iteration() {
        let src = "
            fn ok(map: FxHashMap<u64, f64>, keys: &[u64]) {
                for k in keys { emit(map.get(k)); }
                for i in 0..map.len() { emit(i); }
                if map.contains_key(&1) {}
            }";
        assert!(rules_hit("pim-harness", src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment_even_in_tests() {
        let with = "
            fn f() {
                // SAFETY: the buffer outlives the call.
                unsafe { go() }
            }";
        assert!(rules_hit("pim-mem", with).is_empty());
        let without = "#[cfg(test)] mod t { fn f() { unsafe { go() } } }";
        assert_eq!(
            rules_hit("pim-mem", without),
            vec!["unsafe-without-safety-comment"]
        );
    }

    #[test]
    fn unwrap_fires_in_library_but_not_bins_tests_or_doc_comments() {
        let src = "/// call `x.unwrap()` for effect\nfn f(x: Option<u32>) { x.unwrap(); x.expect(\"m\"); }";
        assert_eq!(
            rules_hit("desim", src),
            vec!["unwrap-in-library", "unwrap-in-library"]
        );
        let bin = SourceFile {
            path: PathBuf::new(),
            rel: "src/bin/cli.rs".into(),
            crate_name: "pim-repro".into(),
            role: Role::Bin,
        };
        assert!(audit_file(&bin, src).findings.is_empty());
        assert!(rules_hit("desim", "#[test]\nfn t() { None::<u32>.unwrap(); }").is_empty());
    }

    #[test]
    fn allows_suppress_and_are_linted() {
        // A reviewed allow on the line above suppresses.
        let good = "fn f(x: Option<u32>) {\n    // audit:allow(unwrap-in-library): checked above\n    x.unwrap();\n}";
        let audit = audit_file(&lib_file("desim"), good);
        assert!(audit.findings.is_empty());
        assert_eq!(audit.suppressed, 1);

        // No reason: the allow errors AND the finding stays.
        let bad = "fn f(x: Option<u32>) {\n    x.unwrap(); // audit:allow(unwrap-in-library)\n}";
        let rules = rules_hit("desim", bad);
        assert!(rules.contains(&"malformed-allow".to_string()), "{rules:?}");
        assert!(rules.contains(&"unwrap-in-library".to_string()));

        // Unknown rule.
        let unknown = "// audit:allow(made-up-rule): because\nfn f() {}";
        assert_eq!(rules_hit("desim", unknown), vec!["malformed-allow"]);

        // Stale: matches nothing.
        let stale = "// audit:allow(unwrap-in-library): nothing here\nfn f() {}";
        assert_eq!(rules_hit("desim", stale), vec!["stale-allow"]);
    }

    #[test]
    fn prose_mentioning_the_directive_is_inert() {
        let src = "/// Suppress with `// audit:allow(unwrap-in-library): reason`.\nfn f() {}";
        assert!(rules_hit("desim", src).is_empty());
    }
}

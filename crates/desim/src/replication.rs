//! Independent replications: the standard output-analysis method for terminating and
//! steady-state simulations.
//!
//! A statistical simulation result from a single run is a point estimate with unknown
//! error. The replication runner executes the same experiment `n` times with
//! decorrelated seeds, optionally discards a warm-up prefix of each run's output, and
//! reports the mean with a Student-t confidence interval — the methodology queueing
//! studies (including the paper's) rely on when quoting a number.

use crate::stats::{ConfidenceLevel, Tally};
use serde::{Deserialize, Serialize};

/// Summary of a replicated experiment's scalar output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// Number of replications performed.
    pub replications: u64,
    /// Mean across replications.
    pub mean: f64,
    /// Sample standard deviation across replications.
    pub std_dev: f64,
    /// Half-width of the confidence interval on the mean.
    pub half_width: f64,
    /// Confidence level used for the interval.
    pub level: ConfidenceLevel,
    /// Smallest replication output.
    pub min: f64,
    /// Largest replication output.
    pub max: f64,
}

impl ReplicationSummary {
    /// The confidence interval as `(low, high)`.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean - self.half_width, self.mean + self.half_width)
    }

    /// Relative precision of the estimate: half-width divided by |mean|
    /// (`f64::INFINITY` when the mean is zero).
    pub fn relative_precision(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// True when the interval contains `value`.
    pub fn covers(&self, value: f64) -> bool {
        let (lo, hi) = self.interval();
        value >= lo && value <= hi
    }
}

/// Run `replications` independent replications of `experiment` (seeded with
/// `0, 1, …, replications-1` offsets from `base_seed`) and summarize the scalar each
/// replication returns.
pub fn replicate<F>(
    replications: u64,
    base_seed: u64,
    level: ConfidenceLevel,
    mut experiment: F,
) -> ReplicationSummary
where
    F: FnMut(u64) -> f64,
{
    assert!(
        replications >= 2,
        "need at least two replications for an interval"
    );
    let mut tally = Tally::new();
    for r in 0..replications {
        let seed = base_seed.wrapping_add(r.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        tally.record(experiment(seed));
    }
    ReplicationSummary {
        replications,
        mean: tally.mean(),
        std_dev: tally.std_dev(),
        half_width: tally.confidence_half_width(level),
        level,
        min: tally.min().unwrap_or(0.0),
        max: tally.max().unwrap_or(0.0),
    }
}

/// Keep adding replications (in batches of `batch`) until the relative precision of the
/// mean reaches `target` or `max_replications` is hit. Returns the summary of all
/// replications performed.
pub fn replicate_to_precision<F>(
    batch: u64,
    max_replications: u64,
    target: f64,
    base_seed: u64,
    level: ConfidenceLevel,
    mut experiment: F,
) -> ReplicationSummary
where
    F: FnMut(u64) -> f64,
{
    assert!(batch >= 2, "batch must be at least two replications");
    assert!(target > 0.0, "target precision must be positive");
    let mut tally = Tally::new();
    let mut done = 0u64;
    while done < max_replications {
        let this_batch = batch.min(max_replications - done);
        for r in 0..this_batch {
            let idx = done + r;
            let seed = base_seed.wrapping_add(idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            tally.record(experiment(seed));
        }
        done += this_batch;
        if done >= 2 {
            let hw = tally.confidence_half_width(level);
            let mean = tally.mean().abs();
            if mean > 0.0 && hw / mean <= target {
                break;
            }
        }
    }
    ReplicationSummary {
        replications: done,
        mean: tally.mean(),
        std_dev: tally.std_dev(),
        half_width: tally.confidence_half_width(level),
        level,
        min: tally.min().unwrap_or(0.0),
        max: tally.max().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomStream;

    #[test]
    fn replication_mean_recovers_known_value() {
        let summary = replicate(64, 7, ConfidenceLevel::P95, |seed| {
            let mut s = RandomStream::new(seed, 1);
            (0..2_000).map(|_| s.exponential(10.0)).sum::<f64>() / 2_000.0
        });
        assert_eq!(summary.replications, 64);
        assert!(
            summary.covers(10.0),
            "interval {:?} should cover 10",
            summary.interval()
        );
        assert!(summary.relative_precision() < 0.02);
        assert!(summary.min <= summary.mean && summary.mean <= summary.max);
    }

    #[test]
    fn deterministic_experiment_has_zero_width_interval() {
        let summary = replicate(8, 1, ConfidenceLevel::P99, |_seed| 42.0);
        assert_eq!(summary.mean, 42.0);
        assert_eq!(summary.half_width, 0.0);
        assert!(summary.covers(42.0));
        assert!(!summary.covers(41.0));
    }

    #[test]
    fn interval_shrinks_with_more_replications() {
        let run = |n| {
            replicate(n, 3, ConfidenceLevel::P95, |seed| {
                let mut s = RandomStream::new(seed, 2);
                s.normal(5.0, 2.0)
            })
            .half_width
        };
        assert!(run(100) < run(10));
    }

    #[test]
    fn precision_driven_replication_stops_when_good_enough() {
        let mut calls = 0u64;
        let summary = replicate_to_precision(8, 512, 0.05, 11, ConfidenceLevel::P95, |seed| {
            calls += 1;
            let mut s = RandomStream::new(seed, 3);
            (0..500).map(|_| s.exponential(20.0)).sum::<f64>() / 500.0
        });
        assert_eq!(summary.replications, calls);
        assert!(summary.replications < 512, "should converge before the cap");
        assert!(summary.relative_precision() <= 0.05);
        assert!(summary.covers(20.0));
    }

    #[test]
    fn precision_driven_replication_respects_the_cap() {
        // Very noisy experiment with an unreachable precision target: stops at the cap.
        let summary = replicate_to_precision(4, 16, 1e-6, 5, ConfidenceLevel::P95, |seed| {
            let mut s = RandomStream::new(seed, 4);
            s.uniform(0.0, 100.0)
        });
        assert_eq!(summary.replications, 16);
    }

    #[test]
    #[should_panic(expected = "at least two replications")]
    fn single_replication_is_rejected() {
        replicate(1, 0, ConfidenceLevel::P95, |_| 0.0);
    }
}

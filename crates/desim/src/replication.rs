//! Independent replications: the standard output-analysis method for terminating and
//! steady-state simulations.
//!
//! A statistical simulation result from a single run is a point estimate with unknown
//! error. The replication runner executes the same experiment `n` times with
//! decorrelated seeds, optionally discards a warm-up prefix of each run's output, and
//! reports the mean with a Student-t confidence interval — the methodology queueing
//! studies (including the paper's) rely on when quoting a number.

use crate::stats::{ConfidenceLevel, Tally};
use serde::{Deserialize, Serialize};

/// Summary of a replicated experiment's scalar output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// Number of replications performed.
    pub replications: u64,
    /// Mean across replications.
    pub mean: f64,
    /// Sample standard deviation across replications.
    pub std_dev: f64,
    /// Half-width of the confidence interval on the mean.
    pub half_width: f64,
    /// Confidence level used for the interval.
    pub level: ConfidenceLevel,
    /// Smallest replication output.
    pub min: f64,
    /// Largest replication output.
    pub max: f64,
}

impl ReplicationSummary {
    /// Summarize already-collected replication outputs (one scalar per replication,
    /// in replication order). This is the assembly half of [`replicate`], split out so
    /// callers that evaluate replications elsewhere (e.g. a work-stealing scheduler
    /// running one replication per unit) can still produce the standard summary.
    ///
    /// # Panics
    /// Panics when fewer than two samples are given — a confidence interval needs an
    /// estimate of the variance.
    pub fn from_samples(samples: &[f64], level: ConfidenceLevel) -> ReplicationSummary {
        assert!(
            samples.len() >= 2,
            "need at least two replications for an interval"
        );
        let mut tally = Tally::new();
        for &s in samples {
            tally.record(s);
        }
        ReplicationSummary {
            replications: samples.len() as u64,
            mean: tally.mean(),
            std_dev: tally.std_dev(),
            half_width: tally.confidence_half_width(level),
            level,
            min: tally.min().unwrap_or(0.0),
            max: tally.max().unwrap_or(0.0),
        }
    }

    /// The confidence interval as `(low, high)`.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean - self.half_width, self.mean + self.half_width)
    }

    /// Relative precision of the estimate: half-width divided by |mean|
    /// (`f64::INFINITY` when the mean is zero).
    pub fn relative_precision(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// True when the interval contains `value`.
    pub fn covers(&self, value: f64) -> bool {
        let (lo, hi) = self.interval();
        value >= lo && value <= hi
    }
}

/// The seed of replication `index` of an experiment with the given base seed: a pure
/// function of `(base_seed, index)`, so replications can be evaluated out of order
/// (or on different threads) and still reproduce the sequential stream exactly.
pub fn replication_seed(base_seed: u64, index: u64) -> u64 {
    base_seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run `replications` independent replications of `experiment` (seeded with
/// `0, 1, …, replications-1` offsets from `base_seed`) and summarize the scalar each
/// replication returns.
pub fn replicate<F>(
    replications: u64,
    base_seed: u64,
    level: ConfidenceLevel,
    mut experiment: F,
) -> ReplicationSummary
where
    F: FnMut(u64) -> f64,
{
    assert!(
        replications >= 2,
        "need at least two replications for an interval"
    );
    let samples: Vec<f64> = (0..replications)
        .map(|r| experiment(replication_seed(base_seed, r)))
        .collect();
    ReplicationSummary::from_samples(&samples, level)
}

/// Keep adding replications (in batches of `batch`) until the relative precision of the
/// mean reaches `target` or `max_replications` is hit. Returns the summary of all
/// replications performed.
pub fn replicate_to_precision<F>(
    batch: u64,
    max_replications: u64,
    target: f64,
    base_seed: u64,
    level: ConfidenceLevel,
    mut experiment: F,
) -> ReplicationSummary
where
    F: FnMut(u64) -> f64,
{
    assert!(batch >= 2, "batch must be at least two replications");
    assert!(target > 0.0, "target precision must be positive");
    let mut tally = Tally::new();
    let mut done = 0u64;
    while done < max_replications {
        let this_batch = batch.min(max_replications - done);
        for r in 0..this_batch {
            tally.record(experiment(replication_seed(base_seed, done + r)));
        }
        done += this_batch;
        if done >= 2 {
            let hw = tally.confidence_half_width(level);
            let mean = tally.mean().abs();
            if mean > 0.0 && hw / mean <= target {
                break;
            }
        }
    }
    ReplicationSummary {
        replications: done,
        mean: tally.mean(),
        std_dev: tally.std_dev(),
        half_width: tally.confidence_half_width(level),
        level,
        min: tally.min().unwrap_or(0.0),
        max: tally.max().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomStream;

    #[test]
    fn replication_mean_recovers_known_value() {
        let summary = replicate(64, 7, ConfidenceLevel::P95, |seed| {
            let mut s = RandomStream::new(seed, 1);
            (0..2_000).map(|_| s.exponential(10.0)).sum::<f64>() / 2_000.0
        });
        assert_eq!(summary.replications, 64);
        assert!(
            summary.covers(10.0),
            "interval {:?} should cover 10",
            summary.interval()
        );
        assert!(summary.relative_precision() < 0.02);
        assert!(summary.min <= summary.mean && summary.mean <= summary.max);
    }

    #[test]
    fn deterministic_experiment_has_zero_width_interval() {
        let summary = replicate(8, 1, ConfidenceLevel::P99, |_seed| 42.0);
        assert_eq!(summary.mean, 42.0);
        assert_eq!(summary.half_width, 0.0);
        assert!(summary.covers(42.0));
        assert!(!summary.covers(41.0));
    }

    #[test]
    fn interval_shrinks_with_more_replications() {
        let run = |n| {
            replicate(n, 3, ConfidenceLevel::P95, |seed| {
                let mut s = RandomStream::new(seed, 2);
                s.normal(5.0, 2.0)
            })
            .half_width
        };
        assert!(run(100) < run(10));
    }

    #[test]
    fn precision_driven_replication_stops_when_good_enough() {
        let mut calls = 0u64;
        let summary = replicate_to_precision(8, 512, 0.05, 11, ConfidenceLevel::P95, |seed| {
            calls += 1;
            let mut s = RandomStream::new(seed, 3);
            (0..500).map(|_| s.exponential(20.0)).sum::<f64>() / 500.0
        });
        assert_eq!(summary.replications, calls);
        assert!(summary.replications < 512, "should converge before the cap");
        assert!(summary.relative_precision() <= 0.05);
        assert!(summary.covers(20.0));
    }

    #[test]
    fn precision_driven_replication_respects_the_cap() {
        // Very noisy experiment with an unreachable precision target: stops at the cap.
        let summary = replicate_to_precision(4, 16, 1e-6, 5, ConfidenceLevel::P95, |seed| {
            let mut s = RandomStream::new(seed, 4);
            s.uniform(0.0, 100.0)
        });
        assert_eq!(summary.replications, 16);
    }

    #[test]
    #[should_panic(expected = "at least two replications")]
    fn single_replication_is_rejected() {
        replicate(1, 0, ConfidenceLevel::P95, |_| 0.0);
    }

    #[test]
    fn from_samples_matches_inline_replication() {
        let experiment = |seed: u64| {
            let mut s = RandomStream::new(seed, 9);
            s.uniform(0.0, 1.0)
        };
        let inline = replicate(12, 77, ConfidenceLevel::P95, experiment);
        // Evaluate the same replications out of order via the exposed seed function.
        let mut samples: Vec<(u64, f64)> = (0..12u64)
            .rev()
            .map(|r| (r, experiment(replication_seed(77, r))))
            .collect();
        samples.sort_by_key(|&(r, _)| r);
        let values: Vec<f64> = samples.into_iter().map(|(_, v)| v).collect();
        let assembled = ReplicationSummary::from_samples(&values, ConfidenceLevel::P95);
        assert_eq!(assembled.replications, inline.replications);
        assert_eq!(assembled.mean, inline.mean);
        assert_eq!(assembled.half_width, inline.half_width);
        assert_eq!(assembled.min, inline.min);
        assert_eq!(assembled.max, inline.max);
    }
}

//! Simulation time.
//!
//! Simulated time is an unsigned 64-bit tick counter. The engine itself does not
//! assign physical meaning to a tick; the PIM models in this workspace use
//! **1 tick = 1 picosecond**, which lets them express the paper's nanosecond-scale
//! cycle times (1 ns heavyweight cycle, 5 ns lightweight cycle) exactly while still
//! leaving room for runs of 10^8 operations (≈ 10^13 ticks ≪ 2^64).

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Number of ticks per picosecond under the convention used by the PIM models.
pub const TICKS_PER_PS: u64 = 1;
/// Number of ticks per nanosecond under the convention used by the PIM models.
pub const TICKS_PER_NS: u64 = 1_000;
/// Number of ticks per microsecond under the convention used by the PIM models.
pub const TICKS_PER_US: u64 = 1_000_000;
/// Number of ticks per millisecond under the convention used by the PIM models.
pub const TICKS_PER_MS: u64 = 1_000_000_000;

/// An absolute point in simulated time, measured in ticks from the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, measured in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero: the beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite horizon" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw ticks.
    #[inline]
    pub const fn from_ticks(t: u64) -> Self {
        SimTime(t)
    }

    /// Construct from picoseconds (1 tick = 1 ps).
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps * TICKS_PER_PS)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * TICKS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * TICKS_PER_US)
    }

    /// Construct from a fractional number of nanoseconds, rounding to the nearest tick.
    /// Negative inputs clamp to time zero.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        SimTime(SimDuration::from_ns_f64(ns).ticks())
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Time expressed as (possibly fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_NS as f64
    }

    /// Time expressed as (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / (TICKS_PER_MS as f64 * 1e3)
    }

    /// Saturating difference between two times.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw ticks.
    #[inline]
    pub const fn from_ticks(t: u64) -> Self {
        SimDuration(t)
    }

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps * TICKS_PER_PS)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * TICKS_PER_NS)
    }

    /// Construct from a fractional number of nanoseconds, rounding to the nearest tick.
    ///
    /// Negative inputs clamp to zero.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        if ns <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ns * TICKS_PER_NS as f64).round() as u64)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * TICKS_PER_US)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Duration expressed as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_NS as f64
    }

    /// Duration scaled by an integer factor (saturating).
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// True if this duration is zero ticks long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_ns(3).ticks(), 3 * TICKS_PER_NS);
        assert_eq!(SimTime::from_us(2).ticks(), 2 * TICKS_PER_US);
        assert_eq!(SimDuration::from_ns(7).as_ns_f64(), 7.0);
        assert_eq!(SimTime::from_ps(10).ticks(), 10);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(10);
        let d = SimDuration::from_ns(5);
        assert_eq!(t + d, SimTime::from_ns(15));
        assert_eq!((t + d) - t, d);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, SimTime::from_ns(15));
        assert_eq!(t2 - d, t);
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
        assert_eq!(
            SimDuration::from_ns(3).saturating_mul(4),
            SimDuration::from_ns(12)
        );
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_ns(5);
        let late = SimTime::from_ns(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_ns(4));
        assert_eq!(
            SimDuration::from_ns(1) - SimDuration::from_ns(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fractional_ns_rounding() {
        assert_eq!(SimDuration::from_ns_f64(1.4999).ticks(), 1500);
        assert_eq!(SimDuration::from_ns_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ns_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ns_f64(2.0), SimDuration::from_ns(2));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        let s = format!("{}", SimTime::from_ns(2));
        assert!(s.contains("ns"));
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_ticks(1)), None);
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_ns(1)),
            Some(SimTime::from_ns(1))
        );
    }
}

//! A minimal multiply-xor hasher for hot-path integer keys.
//!
//! The engine and the pending-event sets keep per-event bookkeeping in hash sets keyed
//! by [`crate::event::EventId`] (a `u64`). `std`'s default SipHash is DoS-resistant but
//! costs tens of nanoseconds per op — measurable when it runs once or twice per
//! simulation event. Keys here are engine-generated sequence numbers, never
//! attacker-controlled, so the classic FxHash multiply-xor mix (as used by rustc) is
//! the right tradeoff: a couple of cycles per word with adequate dispersion.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash state: one 64-bit word folded with rotate-xor-multiply per input word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashSet` using [`FxHasher`]; drop-in for `std::collections::HashSet` on
/// engine-generated integer keys.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_behaves_like_a_set() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(1));
        assert!(s.insert(2));
        assert!(!s.insert(1));
        assert!(s.contains(&2));
        assert!(s.remove(&1));
        assert!(!s.contains(&1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn nearby_keys_disperse() {
        // Sequential ids (the common case) must not collapse onto few buckets: check
        // the low bits differ across a run of consecutive keys.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for k in 0u64..256 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            low_bits.insert(h.finish() & 0xFF);
        }
        assert!(
            low_bits.len() > 128,
            "only {} distinct low bytes",
            low_bits.len()
        );
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(10, "x");
        assert_eq!(m.get(&10), Some(&"x"));
    }
}

//! A transaction-oriented queuing-network layer on top of the event engine.
//!
//! SES/Workbench models are drawn as graphs of sources, service centers, delays and
//! sinks through which *transactions* flow. This module provides the same abstraction:
//! build a [`QNetwork`] from nodes and routes, then [`QNetwork::run`] it for a given
//! horizon. Per-node and end-to-end statistics (throughput, utilization, queue length,
//! response time) are collected automatically, which is exactly the set of dependent
//! variables the paper's two studies report.

use crate::engine::{Model, Scheduler, Simulation};
use crate::random::{Dist, RandomStream};
use crate::resource::Resource;
use crate::stats::{Tally, TimeWeighted};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Index of a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Transaction class (routing can discriminate on it).
pub type Class = u32;

/// A unit of work flowing through the network.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Unique id, assigned at creation.
    pub id: u64,
    /// Class used by class-based routing.
    pub class: Class,
    /// Creation time (at its source).
    pub created: SimTime,
    /// Time the transaction arrived at the node it currently occupies.
    pub arrived_at_node: SimTime,
}

/// How a node forwards transactions that finish service there.
#[derive(Debug, Clone)]
pub enum Routing {
    /// Always forward to one node.
    To(NodeId),
    /// Forward probabilistically; weights need not be normalized.
    Probabilistic(Vec<(f64, NodeId)>),
    /// Forward by transaction class; falls back to the first entry when unmatched.
    ByClass(Vec<(Class, NodeId)>),
    /// Absorb the transaction (equivalent to routing to an implicit sink).
    Absorb,
}

/// Node behaviours.
///
/// A network holds one `NodeKind` per node — a handful of instances per simulation —
/// so the size spread between variants costs nothing worth boxing for.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum NodeKind {
    /// Generates transactions with an inter-arrival distribution (ns).
    Source {
        interarrival: Dist,
        class: Class,
        /// Maximum number of transactions to generate (`None` = unbounded).
        limit: Option<u64>,
        generated: u64,
    },
    /// `servers` identical servers with FIFO queue; service time distribution in ns.
    Service {
        service: Dist,
        resource: Resource<Transaction>,
    },
    /// Infinite-server delay (pure latency, no contention); delay distribution in ns.
    Delay { delay: Dist },
    /// Absorbs transactions and records end-to-end statistics.
    Sink,
}

struct Node {
    name: String,
    kind: NodeKind,
    route: Routing,
    /// Cached weight sum for [`Routing::Probabilistic`] (0 otherwise), computed
    /// once in [`QNetwork::set_route`] so the per-transaction routing draw does
    /// not re-sum the weight vector.
    route_weight_total: f64,
    arrivals: u64,
    departures: u64,
    response: Tally,
    population: TimeWeighted,
}

/// Events driving the queuing network.
#[derive(Debug)]
pub enum QEvent {
    /// A source should emit its next transaction.
    SourceFire(NodeId),
    /// A transaction arrives at a node.
    Arrive(NodeId, Transaction),
    /// Service (or delay) of a transaction at a node completes.
    Complete(NodeId, Transaction),
}

/// Builder + runtime state for a queuing network model.
pub struct QNetwork {
    nodes: Vec<Node>,
    stream: RandomStream,
    next_txn: u64,
    completed: Tally,
    completed_count: u64,
}

impl QNetwork {
    /// Create an empty network whose random draws come from `seed`.
    pub fn new(seed: u64) -> Self {
        QNetwork {
            nodes: Vec::new(),
            stream: RandomStream::new(seed, 0x514E), // stream id: "QN"
            next_txn: 0,
            completed: Tally::new(),
            completed_count: 0,
        }
    }

    fn push_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            kind,
            route: Routing::Absorb,
            route_weight_total: 0.0,
            arrivals: 0,
            departures: 0,
            response: Tally::new(),
            population: TimeWeighted::new(SimTime::ZERO, 0.0),
        });
        id
    }

    /// Add a source emitting `class`-transactions with the given inter-arrival time (ns).
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        interarrival: Dist,
        class: Class,
        limit: Option<u64>,
    ) -> NodeId {
        self.push_node(
            name,
            NodeKind::Source {
                interarrival,
                class,
                limit,
                generated: 0,
            },
        )
    }

    /// Add a service center with `servers` servers and the given service time (ns).
    pub fn add_service(
        &mut self,
        name: impl Into<String>,
        servers: usize,
        service: Dist,
    ) -> NodeId {
        let resource = Resource::new("servers", servers, SimTime::ZERO);
        self.push_node(name, NodeKind::Service { service, resource })
    }

    /// Add an infinite-server delay node with the given delay (ns).
    pub fn add_delay(&mut self, name: impl Into<String>, delay: Dist) -> NodeId {
        self.push_node(name, NodeKind::Delay { delay })
    }

    /// Add a sink that absorbs transactions and records end-to-end response time.
    pub fn add_sink(&mut self, name: impl Into<String>) -> NodeId {
        self.push_node(name, NodeKind::Sink)
    }

    /// Set the routing applied when a transaction leaves `node`.
    pub fn set_route(&mut self, node: NodeId, route: Routing) {
        self.nodes[node.0].route_weight_total = match &route {
            Routing::Probabilistic(ws) => ws.iter().map(|(w, _)| *w).sum(),
            _ => 0.0,
        };
        self.nodes[node.0].route = route;
    }

    #[inline]
    fn route_target(&mut self, from: NodeId, txn: &Transaction) -> Option<NodeId> {
        let node = &self.nodes[from.0];
        match &node.route {
            Routing::To(n) => Some(*n),
            Routing::Absorb => None,
            Routing::ByClass(map) => map
                .iter()
                .find(|(c, _)| *c == txn.class)
                .or_else(|| map.first())
                .map(|(_, n)| *n),
            Routing::Probabilistic(ws) => {
                let total = node.route_weight_total;
                if total <= 0.0 {
                    return None;
                }
                let mut u = self.stream.uniform01() * total;
                for (w, n) in ws {
                    if u < *w {
                        return Some(*n);
                    }
                    u -= *w;
                }
                ws.last().map(|(_, n)| *n)
            }
        }
    }

    /// Build a simulation over this network, scheduling the first firing of every source.
    pub fn into_simulation(self) -> Simulation<QNetModel> {
        let mut sim = Simulation::new(QNetModel { net: self });
        let source_ids: Vec<NodeId> = sim
            .model()
            .net
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Source { .. }))
            .map(|(i, _)| NodeId(i))
            .collect();
        let sched = sim.scheduler();
        for id in source_ids {
            sched.schedule_at(SimTime::ZERO, QEvent::SourceFire(id));
        }
        sim
    }

    /// Run the network until `horizon` and return the report.
    pub fn run(self, horizon: SimTime) -> QNetReport {
        let mut sim = self.into_simulation();
        sim.set_horizon(horizon);
        sim.run();
        let end = sim.now();
        sim.into_model().net.report(end)
    }

    fn report(&self, now: SimTime) -> QNetReport {
        QNetReport {
            end_time: now,
            completed: self.completed_count,
            mean_system_time_ns: self.completed.mean(),
            nodes: self
                .nodes
                .iter()
                .map(|n| {
                    let (utilization, mean_queue, mean_wait_ns) = match &n.kind {
                        NodeKind::Service { resource, .. } => (
                            resource.utilization(now),
                            resource.mean_queue_len(now),
                            resource.wait_time().mean(),
                        ),
                        _ => (0.0, 0.0, 0.0),
                    };
                    NodeReport {
                        name: n.name.clone(),
                        arrivals: n.arrivals,
                        departures: n.departures,
                        utilization,
                        mean_queue_len: mean_queue,
                        mean_wait_ns,
                        mean_response_ns: n.response.mean(),
                        mean_population: n.population.time_average(now),
                        throughput_per_ns: if now.ticks() == 0 {
                            0.0
                        } else {
                            n.departures as f64 / now.as_ns_f64()
                        },
                    }
                })
                .collect(),
        }
    }
}

/// The [`Model`] implementation wrapping a [`QNetwork`].
pub struct QNetModel {
    net: QNetwork,
}

impl QNetModel {
    /// Produce a report at time `now` (usually `sim.now()` after a run).
    pub fn report(&self, now: SimTime) -> QNetReport {
        self.net.report(now)
    }
}

impl Model for QNetModel {
    type Event = QEvent;

    fn handle(&mut self, now: SimTime, event: QEvent, sched: &mut Scheduler<QEvent>) {
        match event {
            QEvent::SourceFire(id) => self.fire_source(now, id, sched),
            QEvent::Arrive(id, txn) => self.arrive(now, id, txn, sched),
            QEvent::Complete(id, txn) => self.complete(now, id, txn, sched),
        }
    }
}

impl QNetModel {
    fn fire_source(&mut self, now: SimTime, id: NodeId, sched: &mut Scheduler<QEvent>) {
        let txn_id = self.net.next_txn;
        let (emit, next_fire, class) = {
            let node = &mut self.net.nodes[id.0];
            let NodeKind::Source {
                interarrival,
                class,
                limit,
                generated,
            } = &mut node.kind
            else {
                return;
            };
            if limit.is_some_and(|l| *generated >= l) {
                return;
            }
            *generated += 1;
            let more = limit.is_none_or(|l| *generated < l);
            let gap = SimDuration::from_ns_f64(self.net.stream.sample_nonneg(interarrival));
            (true, more.then_some(gap), *class)
        };
        if emit {
            self.net.next_txn += 1;
            let txn = Transaction {
                id: txn_id,
                class,
                created: now,
                arrived_at_node: now,
            };
            // Emit to the source's route target immediately.
            if let Some(target) = self.net.route_target(id, &txn) {
                self.net.nodes[id.0].departures += 1;
                sched.schedule_now(QEvent::Arrive(target, txn));
            }
        }
        if let Some(gap) = next_fire {
            sched.schedule_in(gap, QEvent::SourceFire(id));
        }
    }

    fn arrive(
        &mut self,
        now: SimTime,
        id: NodeId,
        mut txn: Transaction,
        sched: &mut Scheduler<QEvent>,
    ) {
        txn.arrived_at_node = now;
        let node = &mut self.net.nodes[id.0];
        node.arrivals += 1;
        node.population.add(now, 1.0);
        match &mut node.kind {
            NodeKind::Service { service, resource } => {
                // The draw happens on every arrival (even ones that park) so the
                // stream's consumption order stays independent of queue state; a
                // parked transaction draws again when it is dequeued in `complete`.
                let svc = SimDuration::from_ns_f64(self.net.stream.sample_nonneg(service));
                if resource.try_acquire(now) {
                    sched.schedule_in(svc, QEvent::Complete(id, txn));
                } else {
                    // Park the transaction by value — no clone; it flows back out of
                    // `release` when a server frees up.
                    resource.park(now, txn);
                }
            }
            NodeKind::Delay { delay } => {
                let d = SimDuration::from_ns_f64(self.net.stream.sample_nonneg(delay));
                sched.schedule_in(d, QEvent::Complete(id, txn));
            }
            NodeKind::Sink => {
                node.response.record(0.0);
                node.departures += 1;
                node.population.add(now, -1.0);
                self.net.completed_count += 1;
                self.net
                    .completed
                    .record(now.saturating_since(txn.created).as_ns_f64());
            }
            NodeKind::Source { .. } => {
                // Transactions routed into a source are treated as absorbed.
                node.departures += 1;
                node.population.add(now, -1.0);
            }
        }
    }

    fn complete(
        &mut self,
        now: SimTime,
        id: NodeId,
        txn: Transaction,
        sched: &mut Scheduler<QEvent>,
    ) {
        // Record node statistics and free the server (possibly starting a waiter).
        let next_start: Option<(Transaction, SimDuration)> = {
            let node = &mut self.net.nodes[id.0];
            node.departures += 1;
            node.population.add(now, -1.0);
            node.response
                .record(now.saturating_since(txn.arrived_at_node).as_ns_f64());
            match &mut node.kind {
                NodeKind::Service { service, resource } => {
                    let dist = service.clone();
                    resource.release(now).map(|waiter| {
                        let svc = SimDuration::from_ns_f64(self.net.stream.sample_nonneg(&dist));
                        (waiter, svc)
                    })
                }
                _ => None,
            }
        };
        if let Some((waiter, svc)) = next_start {
            sched.schedule_in(svc, QEvent::Complete(id, waiter));
        }
        // Route the finished transaction onward.
        if let Some(target) = self.net.route_target(id, &txn) {
            sched.schedule_now(QEvent::Arrive(target, txn));
        } else {
            self.net.completed_count += 1;
            self.net
                .completed
                .record(now.saturating_since(txn.created).as_ns_f64());
        }
    }
}

/// Per-node results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node name.
    pub name: String,
    /// Transactions that arrived at this node.
    pub arrivals: u64,
    /// Transactions that left (or were absorbed at) this node.
    pub departures: u64,
    /// Server utilization (service nodes only).
    pub utilization: f64,
    /// Time-averaged number waiting (service nodes only).
    pub mean_queue_len: f64,
    /// Mean waiting time in ns (service nodes only).
    pub mean_wait_ns: f64,
    /// Mean response time (wait + service) in ns.
    pub mean_response_ns: f64,
    /// Time-averaged population at the node.
    pub mean_population: f64,
    /// Departures per simulated nanosecond.
    pub throughput_per_ns: f64,
}

/// Whole-network results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QNetReport {
    /// Simulated time when the run ended.
    pub end_time: SimTime,
    /// Transactions absorbed by sinks (or absorbing routes).
    pub completed: u64,
    /// Mean end-to-end time in the network (ns).
    pub mean_system_time_ns: f64,
    /// Per-node detail, indexed by [`NodeId`].
    pub nodes: Vec<NodeReport>,
}

impl QNetReport {
    /// Look up a node's report by name.
    pub fn node(&self, name: &str) -> Option<&NodeReport> {
        self.nodes.iter().find(|n| n.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build source -> queue -> sink with the given distributions and run.
    fn single_queue(
        interarrival: Dist,
        service: Dist,
        servers: usize,
        horizon_ns: u64,
    ) -> QNetReport {
        let mut net = QNetwork::new(7);
        let src = net.add_source("src", interarrival, 0, None);
        let q = net.add_service("queue", servers, service);
        let sink = net.add_sink("sink");
        net.set_route(src, Routing::To(q));
        net.set_route(q, Routing::To(sink));
        net.run(SimTime::from_ns(horizon_ns))
    }

    #[test]
    fn dd1_deterministic_queue_never_waits() {
        // Arrivals every 10 ns, service 5 ns: utilization 0.5, zero waiting.
        let r = single_queue(Dist::Constant(10.0), Dist::Constant(5.0), 1, 100_000);
        let q = r.node("queue").unwrap();
        assert!(
            (q.utilization - 0.5).abs() < 0.01,
            "utilization {}",
            q.utilization
        );
        assert!(q.mean_wait_ns < 1e-9, "D/D/1 with rho=0.5 must not queue");
        assert!((q.mean_response_ns - 5.0).abs() < 0.1);
        assert!(r.completed > 9_000);
    }

    #[test]
    fn mm1_matches_theory() {
        // lambda = 1/20 ns^-1, mu = 1/10 ns^-1 => rho = 0.5, W = 1/(mu-lambda) = 20 ns.
        let r = single_queue(
            Dist::Exponential { mean: 20.0 },
            Dist::Exponential { mean: 10.0 },
            1,
            4_000_000,
        );
        let q = r.node("queue").unwrap();
        assert!((q.utilization - 0.5).abs() < 0.03, "rho {}", q.utilization);
        assert!(
            (q.mean_response_ns - 20.0).abs() / 20.0 < 0.10,
            "W {} expected 20",
            q.mean_response_ns
        );
        // Little's law at the queue: L = lambda * W.
        let l = q.mean_population;
        let lambda = q.throughput_per_ns;
        assert!(
            (l - lambda * q.mean_response_ns).abs() / l.max(1e-9) < 0.05,
            "Little's law violated: L={l} lambda*W={}",
            lambda * q.mean_response_ns
        );
    }

    #[test]
    fn mm2_has_lower_wait_than_mm1_at_same_load() {
        let busy = |servers: usize| {
            let r = single_queue(
                Dist::Exponential { mean: 10.0 },
                Dist::Exponential {
                    mean: 10.0 * servers as f64 * 0.8,
                },
                servers,
                2_000_000,
            );
            r.node("queue").unwrap().mean_wait_ns
        };
        let w1 = busy(1);
        let w2 = busy(2);
        assert!(
            w2 < w1,
            "M/M/2 wait {w2} should beat M/M/1 wait {w1} at equal per-server load"
        );
    }

    #[test]
    fn tandem_queues_conserve_transactions() {
        let mut net = QNetwork::new(3);
        let src = net.add_source("src", Dist::Exponential { mean: 50.0 }, 0, Some(500));
        let a = net.add_service("a", 1, Dist::Exponential { mean: 10.0 });
        let b = net.add_service("b", 1, Dist::Exponential { mean: 20.0 });
        let sink = net.add_sink("sink");
        net.set_route(src, Routing::To(a));
        net.set_route(a, Routing::To(b));
        net.set_route(b, Routing::To(sink));
        let r = net.run(SimTime::from_ns(100_000_000));
        assert_eq!(r.completed, 500);
        assert_eq!(r.node("a").unwrap().arrivals, 500);
        assert_eq!(r.node("b").unwrap().arrivals, 500);
        assert_eq!(r.node("sink").unwrap().arrivals, 500);
        // End-to-end time is at least the sum of the two mean services.
        assert!(r.mean_system_time_ns > 25.0);
    }

    #[test]
    fn probabilistic_routing_splits_flow() {
        let mut net = QNetwork::new(11);
        let src = net.add_source("src", Dist::Constant(10.0), 0, Some(10_000));
        let a = net.add_service("a", 4, Dist::Constant(1.0));
        let b = net.add_service("b", 4, Dist::Constant(1.0));
        let sink = net.add_sink("sink");
        net.set_route(src, Routing::Probabilistic(vec![(0.75, a), (0.25, b)]));
        net.set_route(a, Routing::To(sink));
        net.set_route(b, Routing::To(sink));
        let r = net.run(SimTime::from_ns(200_000));
        let fa = r.node("a").unwrap().arrivals as f64;
        let fb = r.node("b").unwrap().arrivals as f64;
        let frac = fa / (fa + fb);
        assert!((frac - 0.75).abs() < 0.03, "split fraction {frac}");
    }

    #[test]
    fn class_based_routing() {
        let mut net = QNetwork::new(5);
        let src0 = net.add_source("src0", Dist::Constant(10.0), 0, Some(100));
        let src1 = net.add_source("src1", Dist::Constant(10.0), 1, Some(100));
        let hwp = net.add_service("hwp", 1, Dist::Constant(1.0));
        let lwp = net.add_service("lwp", 1, Dist::Constant(1.0));
        let sink = net.add_sink("sink");
        let route = Routing::ByClass(vec![(0, hwp), (1, lwp)]);
        net.set_route(src0, route.clone());
        net.set_route(src1, route);
        net.set_route(hwp, Routing::To(sink));
        net.set_route(lwp, Routing::To(sink));
        let r = net.run(SimTime::from_ns(10_000));
        assert_eq!(r.node("hwp").unwrap().arrivals, 100);
        assert_eq!(r.node("lwp").unwrap().arrivals, 100);
    }

    #[test]
    fn source_limit_is_respected() {
        let r = {
            let mut net = QNetwork::new(9);
            let src = net.add_source("src", Dist::Constant(5.0), 0, Some(42));
            let sink = net.add_sink("sink");
            net.set_route(src, Routing::To(sink));
            net.run(SimTime::from_ns(1_000_000))
        };
        assert_eq!(r.completed, 42);
    }

    #[test]
    fn delay_node_adds_pure_latency() {
        let mut net = QNetwork::new(21);
        let src = net.add_source("src", Dist::Constant(100.0), 0, Some(50));
        let d = net.add_delay("wire", Dist::Constant(30.0));
        let sink = net.add_sink("sink");
        net.set_route(src, Routing::To(d));
        net.set_route(d, Routing::To(sink));
        let r = net.run(SimTime::from_ns(100_000));
        assert_eq!(r.completed, 50);
        assert!((r.mean_system_time_ns - 30.0).abs() < 1e-6);
    }

    #[test]
    fn report_lookup_by_name() {
        let r = single_queue(Dist::Constant(10.0), Dist::Constant(1.0), 1, 1_000);
        assert!(r.node("queue").is_some());
        assert!(r.node("nonexistent").is_none());
    }
}

//! Passive resources (servers) with queuing, in the SES/Workbench sense.
//!
//! A [`Resource`] models `capacity` identical servers with a FIFO (or priority) wait
//! queue. It is *passive*: it never schedules events itself. The owning
//! [`crate::engine::Model`]
//! asks to acquire a unit; if none is free the request's token is parked, and a later
//! `release` hands the token back so the model can schedule the waiter's continuation.
//! Utilization, queue length and waiting time statistics are collected automatically.

use crate::stats::{Tally, TimeWeighted};
use crate::time::SimTime;
use std::collections::VecDeque;

/// Result of an acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// A server was free; the caller holds one unit and should proceed immediately.
    Granted,
    /// All servers are busy; the token was queued and will be returned by a future
    /// [`Resource::release`].
    Queued,
}

/// A queued waiter.
#[derive(Debug, Clone)]
struct Waiter<T> {
    token: T,
    priority: i32,
    enqueued_at: SimTime,
    seq: u64,
}

/// A multi-server resource with FIFO-within-priority queuing and built-in statistics.
#[derive(Debug)]
pub struct Resource<T> {
    name: String,
    capacity: usize,
    busy: usize,
    waiters: VecDeque<Waiter<T>>,
    seq: u64,
    utilization: TimeWeighted,
    queue_len: TimeWeighted,
    wait_time: Tally,
    total_grants: u64,
}

impl<T> Resource<T> {
    /// Create a resource with `capacity` identical servers.
    pub fn new(name: impl Into<String>, capacity: usize, start: SimTime) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        Resource {
            name: name.into(),
            capacity,
            busy: 0,
            waiters: VecDeque::new(),
            seq: 0,
            utilization: TimeWeighted::new(start, 0.0),
            queue_len: TimeWeighted::new(start, 0.0),
            wait_time: Tally::new(),
            total_grants: 0,
        }
    }

    /// Resource name (reporting).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of servers currently held.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Total number of grants issued (immediate + dequeued).
    pub fn total_grants(&self) -> u64 {
        self.total_grants
    }

    /// Attempt to acquire a unit at time `now`; if all servers are busy, park `token`
    /// with default priority 0.
    pub fn acquire(&mut self, now: SimTime, token: T) -> Acquire {
        self.acquire_prio(now, token, 0)
    }

    /// Attempt to acquire with an explicit priority (lower value is served first).
    pub fn acquire_prio(&mut self, now: SimTime, token: T, priority: i32) -> Acquire {
        if self.busy < self.capacity {
            self.busy += 1;
            self.utilization
                .set(now, self.busy as f64 / self.capacity as f64);
            self.wait_time.record(0.0);
            self.total_grants += 1;
            Acquire::Granted
        } else {
            let w = Waiter {
                token,
                priority,
                enqueued_at: now,
                seq: self.seq,
            };
            self.seq += 1;
            // Insert keeping (priority, seq) order: stable FIFO within equal priority.
            let pos = self
                .waiters
                .iter()
                .position(|x| (x.priority, x.seq) > (w.priority, w.seq))
                .unwrap_or(self.waiters.len());
            self.waiters.insert(pos, w);
            self.queue_len.set(now, self.waiters.len() as f64);
            Acquire::Queued
        }
    }

    /// Park `token` in the wait queue without attempting an acquire, with default
    /// priority 0. Combined with [`Resource::try_acquire`] this is the move-friendly
    /// split of [`Resource::acquire`]: the caller keeps ownership of its token on the
    /// granted path instead of cloning it into the resource.
    #[inline]
    pub fn park(&mut self, now: SimTime, token: T) {
        let w = Waiter {
            token,
            priority: 0,
            enqueued_at: now,
            seq: self.seq,
        };
        self.seq += 1;
        let pos = self
            .waiters
            .iter()
            .position(|x| (x.priority, x.seq) > (w.priority, w.seq))
            .unwrap_or(self.waiters.len());
        self.waiters.insert(pos, w);
        self.queue_len.set(now, self.waiters.len() as f64);
    }

    /// Try to acquire without queueing. Returns `true` on success. This is the
    /// uncontended fast path: it never touches the waiter queue, so callers on
    /// hot loops (every qnet arrival) pay only the counter and statistics
    /// updates when a server is free.
    #[inline]
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        if self.busy < self.capacity {
            self.busy += 1;
            self.utilization
                .set(now, self.busy as f64 / self.capacity as f64);
            self.wait_time.record(0.0);
            self.total_grants += 1;
            true
        } else {
            false
        }
    }

    /// Release one unit at time `now`. If a waiter is queued, the unit is handed to it
    /// directly and its token is returned; the caller must then schedule that waiter's
    /// continuation. Otherwise the server simply becomes idle.
    #[inline]
    pub fn release(&mut self, now: SimTime) -> Option<T> {
        assert!(self.busy > 0, "release on an idle resource '{}'", self.name);
        if let Some(w) = self.waiters.pop_front() {
            // Server stays busy, ownership transfers to the waiter.
            self.queue_len.set(now, self.waiters.len() as f64);
            self.wait_time
                .record(now.saturating_since(w.enqueued_at).as_ns_f64());
            self.total_grants += 1;
            Some(w.token)
        } else {
            self.busy -= 1;
            self.utilization
                .set(now, self.busy as f64 / self.capacity as f64);
            None
        }
    }

    /// Time-averaged utilization (busy servers / capacity) over `[start, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.utilization.time_average(now)
    }

    /// Time-averaged queue length over `[start, now]`.
    pub fn mean_queue_len(&self, now: SimTime) -> f64 {
        self.queue_len.time_average(now)
    }

    /// Waiting-time statistics (nanoseconds), one observation per grant.
    pub fn wait_time(&self) -> &Tally {
        &self.wait_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn grants_up_to_capacity_then_queues() {
        let mut r: Resource<u32> = Resource::new("cpu", 2, SimTime::ZERO);
        assert_eq!(r.acquire(SimTime::ZERO, 1), Acquire::Granted);
        assert_eq!(r.acquire(SimTime::ZERO, 2), Acquire::Granted);
        assert_eq!(r.acquire(SimTime::ZERO, 3), Acquire::Queued);
        assert_eq!(r.busy(), 2);
        assert_eq!(r.queue_len(), 1);
    }

    #[test]
    fn release_hands_unit_to_waiter_fifo() {
        let mut r: Resource<u32> = Resource::new("cpu", 1, SimTime::ZERO);
        assert_eq!(r.acquire(SimTime::ZERO, 10), Acquire::Granted);
        r.acquire(SimTime::from_ns(1), 20);
        r.acquire(SimTime::from_ns(2), 30);
        assert_eq!(r.release(SimTime::from_ns(5)), Some(20));
        assert_eq!(r.release(SimTime::from_ns(9)), Some(30));
        assert_eq!(r.release(SimTime::from_ns(12)), None);
        assert_eq!(r.busy(), 0);
    }

    #[test]
    fn priority_served_before_fifo() {
        let mut r: Resource<&'static str> = Resource::new("cpu", 1, SimTime::ZERO);
        r.acquire(SimTime::ZERO, "holder");
        r.acquire_prio(SimTime::from_ns(1), "low", 10);
        r.acquire_prio(SimTime::from_ns(2), "high", -5);
        r.acquire_prio(SimTime::from_ns(3), "mid", 0);
        assert_eq!(r.release(SimTime::from_ns(4)), Some("high"));
        assert_eq!(r.release(SimTime::from_ns(5)), Some("mid"));
        assert_eq!(r.release(SimTime::from_ns(6)), Some("low"));
    }

    #[test]
    fn equal_priority_is_fifo() {
        let mut r: Resource<u32> = Resource::new("cpu", 1, SimTime::ZERO);
        r.acquire(SimTime::ZERO, 0);
        for i in 1..=5 {
            r.acquire_prio(SimTime::from_ns(i), i as u32, 3);
        }
        for i in 1..=5 {
            assert_eq!(r.release(SimTime::from_ns(10 + i)), Some(i as u32));
        }
    }

    #[test]
    fn wait_time_statistics() {
        let mut r: Resource<u32> = Resource::new("cpu", 1, SimTime::ZERO);
        r.acquire(SimTime::ZERO, 1);
        r.acquire(SimTime::ZERO, 2);
        r.release(SimTime::from_ns(10));
        // Immediate grant waited 0 ns; queued grant waited 10 ns.
        assert_eq!(r.wait_time().count(), 2);
        assert!((r.wait_time().mean() - 5.0).abs() < 1e-12);
        assert_eq!(r.total_grants(), 2);
    }

    #[test]
    fn utilization_time_average() {
        let mut r: Resource<u32> = Resource::new("cpu", 1, SimTime::ZERO);
        r.acquire(SimTime::ZERO, 1);
        r.release(SimTime::from_ns(40));
        // Busy for 40 of 100 ns.
        let u = r.utilization(SimTime::from_ns(100));
        assert!((u - 0.4).abs() < 1e-12, "utilization {u}");
    }

    #[test]
    fn park_joins_the_fifo_queue_like_acquire() {
        let mut r: Resource<u32> = Resource::new("cpu", 1, SimTime::ZERO);
        assert!(r.try_acquire(SimTime::ZERO));
        r.park(SimTime::from_ns(1), 20);
        r.acquire(SimTime::from_ns(2), 30);
        assert_eq!(r.queue_len(), 2);
        assert_eq!(r.release(SimTime::from_ns(5)), Some(20));
        assert_eq!(r.release(SimTime::from_ns(9)), Some(30));
        assert_eq!(r.release(SimTime::from_ns(12)), None);
    }

    #[test]
    fn try_acquire_does_not_queue() {
        let mut r: Resource<u32> = Resource::new("cpu", 1, SimTime::ZERO);
        assert!(r.try_acquire(SimTime::ZERO));
        assert!(!r.try_acquire(SimTime::ZERO));
        assert_eq!(r.queue_len(), 0);
        assert_eq!(r.release(SimTime::from_ns(1) + SimDuration::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "release on an idle resource")]
    fn release_without_acquire_panics() {
        let mut r: Resource<u32> = Resource::new("cpu", 1, SimTime::ZERO);
        r.release(SimTime::ZERO);
    }

    #[test]
    fn mean_queue_length() {
        let mut r: Resource<u32> = Resource::new("cpu", 1, SimTime::ZERO);
        r.acquire(SimTime::ZERO, 1);
        r.acquire(SimTime::ZERO, 2); // queue length 1 from t=0
        r.release(SimTime::from_ns(50)); // queue drains at t=50
        let mql = r.mean_queue_len(SimTime::from_ns(100));
        assert!((mql - 0.5).abs() < 1e-12, "mean queue length {mql}");
    }
}

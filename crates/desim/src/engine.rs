//! The discrete-event simulation engine.
//!
//! The engine is *event-oriented*: a model implements [`Model`], defining an event
//! payload type and a handler that receives each event in time order together with a
//! [`Scheduler`] through which it can schedule (or cancel) future events. This mirrors
//! the transaction-oriented style of SES/Workbench while remaining borrow-checker
//! friendly (the model owns all mutable state; the engine owns the clock and the
//! pending event set).
//!
//! ```
//! use desim::prelude::*;
//!
//! /// A counter that re-schedules itself every 10 ns, five times.
//! struct Ticker { fired: u32 }
//!
//! impl Model for Ticker {
//!     type Event = ();
//!     fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
//!         self.fired += 1;
//!         if self.fired < 5 {
//!             sched.schedule_in(SimDuration::from_ns(10), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Ticker { fired: 0 });
//! sim.scheduler().schedule_at(SimTime::ZERO, ());
//! let report = sim.run();
//! assert_eq!(sim.model().fired, 5);
//! assert_eq!(report.events_processed, 5);
//! assert_eq!(sim.now(), SimTime::from_ns(40));
//! ```

use crate::event::{EventId, EventQueue, FifoBandQueue, ScheduledEvent};
use crate::fxhash::FxHashSet;
use crate::time::{SimDuration, SimTime};

/// A simulation model: the owner of all model state and the handler of all events.
pub trait Model {
    /// The event payload type dispatched through the engine.
    type Event;

    /// Handle one event occurring at `now`. New events may be scheduled through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);

    /// Called once when the run terminates (horizon reached, event budget exhausted,
    /// or the pending set drained). Default: no-op.
    fn finish(&mut self, _now: SimTime) {}
}

/// Interface handed to the model for scheduling and cancelling future events.
pub struct Scheduler<E> {
    now: SimTime,
    next_id: u64,
    next_seq: u64,
    staged: Vec<ScheduledEvent<E>>,
    cancels: Vec<EventId>,
    stop_requested: bool,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            next_id: 0,
            next_seq: 0,
            staged: Vec::new(),
            cancels: Vec::new(),
            stop_requested: false,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (which must not precede the current time)
    /// with default priority 0. Returns an id usable with [`Scheduler::cancel`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        self.schedule_at_prio(at, 0, event)
    }

    /// Schedule `event` at absolute time `at` with an explicit tie-break priority
    /// (lower priority value fires first among simultaneous events).
    pub fn schedule_at_prio(&mut self, at: SimTime, priority: i32, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} requested={}",
            self.now,
            at
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.staged.push(ScheduledEvent {
            time: at,
            priority,
            seq,
            id,
            payload: event,
        });
        id
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedule `event` after a delay with an explicit tie-break priority.
    pub fn schedule_in_prio(&mut self, delay: SimDuration, priority: i32, event: E) -> EventId {
        self.schedule_at_prio(self.now + delay, priority, event)
    }

    /// Schedule `event` to fire at the current time, after all currently pending
    /// same-time events (a "yield" in SES/Workbench terms).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule_at(self.now, event)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already fired
    /// (or was already cancelled) is a silent no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancels.push(id);
    }

    /// Request that the run stop after the current event completes.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }
}

/// Why a run returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The pending event set drained.
    Exhausted,
    /// The configured time horizon was reached.
    HorizonReached,
    /// The configured event budget was reached.
    EventBudgetReached,
    /// The model called [`Scheduler::stop`].
    StoppedByModel,
}

/// Summary of a completed (or paused) run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Number of events dispatched to the model.
    pub events_processed: u64,
    /// Simulated time when the run returned.
    pub end_time: SimTime,
    /// Why the run returned.
    pub reason: StopReason,
}

/// The simulation engine: owns the clock, the pending event set and the model.
pub struct Simulation<M: Model, Q: EventQueue<M::Event> = FifoBandQueue<<M as Model>::Event>> {
    model: M,
    queue: Q,
    scheduler: Scheduler<M::Event>,
    /// Cancellation guard: ids currently pending, consulted so a
    /// [`Scheduler::cancel`] of an id that already fired (or never existed) does
    /// not corrupt the queue's live-event accounting. Built lazily on the first
    /// cancel (`track_pending`), so models that never cancel — all the hot sweep
    /// models — skip both hash-set touches per event entirely.
    pending: FxHashSet<EventId>,
    track_pending: bool,
    now: SimTime,
    horizon: Option<SimTime>,
    event_budget: Option<u64>,
    events_processed: u64,
}

impl<M: Model> Simulation<M, FifoBandQueue<M::Event>> {
    /// Create a simulation over `model` using the default pending-event set, the
    /// two-band [`FifoBandQueue`]. It was benchmarked as the fastest of the three
    /// implementations on every model in this workspace (see `pim-perf`); dispatch
    /// order — and therefore every result — is identical across all of them.
    pub fn new(model: M) -> Self {
        Self::with_queue(model, FifoBandQueue::new())
    }
}

impl<M: Model, Q: EventQueue<M::Event>> Simulation<M, Q> {
    /// Create a simulation with an explicit pending-event-set implementation
    /// (e.g. [`crate::event::BinaryHeapQueue`] or [`crate::event::CalendarQueue`]).
    pub fn with_queue(model: M, queue: Q) -> Self {
        Simulation {
            model,
            queue,
            scheduler: Scheduler::new(),
            pending: FxHashSet::default(),
            track_pending: false,
            now: SimTime::ZERO,
            horizon: None,
            event_budget: None,
            events_processed: 0,
        }
    }

    /// Set a time horizon: the run stops before dispatching any event strictly after it.
    pub fn set_horizon(&mut self, horizon: SimTime) -> &mut Self {
        self.horizon = Some(horizon);
        self
    }

    /// Set an upper bound on the number of events dispatched per `run` call.
    pub fn set_event_budget(&mut self, budget: u64) -> &mut Self {
        self.event_budget = Some(budget);
        self
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to the model.
    #[inline]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for initialization between runs).
    #[inline]
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Access the scheduler to seed initial events before calling [`Simulation::run`].
    pub fn scheduler(&mut self) -> &mut Scheduler<M::Event> {
        self.scheduler.now = self.now;
        &mut self.scheduler
    }

    /// Run an initialization closure with simultaneous access to the model and the
    /// scheduler, for models whose setup needs to schedule their own first events.
    pub fn init<F>(&mut self, f: F)
    where
        F: FnOnce(&mut M, &mut Scheduler<M::Event>),
    {
        self.scheduler.now = self.now;
        f(&mut self.model, &mut self.scheduler);
    }

    /// Number of events dispatched so far across all `run` calls.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len() + self.scheduler.staged.len()
    }

    fn flush_scheduler(&mut self) {
        if self.track_pending {
            for ev in self.scheduler.staged.drain(..) {
                self.pending.insert(ev.id);
                self.queue.push(ev);
            }
        } else {
            for ev in self.scheduler.staged.drain(..) {
                self.queue.push(ev);
            }
        }
        if !self.scheduler.cancels.is_empty() {
            if !self.track_pending {
                // First cancel of this simulation: snapshot the queue's live ids.
                // No cancel has been processed before this point, so the snapshot
                // equals what an eagerly-maintained guard would hold — including
                // the events staged and pushed just above.
                self.track_pending = true;
                self.pending = self.queue.live_ids().into_iter().collect();
            }
            for id in self.scheduler.cancels.drain(..) {
                if self.pending.remove(&id) {
                    self.queue.cancel(id);
                }
            }
        }
    }

    /// Run until the pending set drains, the horizon/event budget is hit, or the model
    /// requests a stop. May be called repeatedly; time never goes backwards.
    ///
    /// The loop pops the next event directly and, in the rare case it lies beyond the
    /// horizon, pushes it back — rather than peeking before every pop. Peeking costs a
    /// second cancelled-head scan per event on the heap and a full bucket scan on the
    /// calendar queue, so the pop-then-push-back shape roughly halves queue work per
    /// dispatched event and is what makes [`crate::event::CalendarQueue`] competitive.
    pub fn run(&mut self) -> RunReport {
        self.flush_scheduler();
        let mut dispatched_this_run = 0u64;
        let reason = loop {
            if self.scheduler.stop_requested {
                self.scheduler.stop_requested = false;
                break StopReason::StoppedByModel;
            }
            if let Some(budget) = self.event_budget {
                if dispatched_this_run >= budget {
                    break StopReason::EventBudgetReached;
                }
            }
            let Some(ev) = self.queue.pop() else {
                break StopReason::Exhausted;
            };
            if let Some(h) = self.horizon {
                if ev.time > h {
                    // Not dispatchable this run: return it to the pending set intact
                    // (same id/seq, so ordering and cancellation are unaffected).
                    self.queue.push(ev);
                    self.now = h;
                    break StopReason::HorizonReached;
                }
            }
            if self.track_pending {
                self.pending.remove(&ev.id);
            }
            debug_assert!(
                ev.time >= self.now,
                "event queue returned an event in the past"
            );
            self.now = ev.time;
            self.scheduler.now = self.now;
            self.model.handle(self.now, ev.payload, &mut self.scheduler);
            self.events_processed += 1;
            dispatched_this_run += 1;
            self.flush_scheduler();
        };
        self.model.finish(self.now);
        RunReport {
            events_processed: dispatched_this_run,
            end_time: self.now,
            reason,
        }
    }

    /// Dispatch at most one event. Returns `false` when nothing was dispatched
    /// (empty set or horizon reached).
    pub fn step(&mut self) -> bool {
        self.flush_scheduler();
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        if let Some(h) = self.horizon {
            if ev.time > h {
                self.queue.push(ev);
                return false;
            }
        }
        if self.track_pending {
            self.pending.remove(&ev.id);
        }
        self.now = ev.time;
        self.scheduler.now = self.now;
        self.model.handle(self.now, ev.payload, &mut self.scheduler);
        self.events_processed += 1;
        self.flush_scheduler();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CalendarQueue;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, Ev)>,
        finish_time: Option<SimTime>,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            self.seen.push((now.ticks(), ev));
            if ev == Ev::Stop {
                sched.stop();
            }
        }
        fn finish(&mut self, now: SimTime) {
            self.finish_time = Some(now);
        }
    }

    #[test]
    fn dispatches_in_time_order() {
        let mut sim = Simulation::new(Recorder::default());
        let s = sim.scheduler();
        s.schedule_at(SimTime::from_ticks(30), Ev::Ping(3));
        s.schedule_at(SimTime::from_ticks(10), Ev::Ping(1));
        s.schedule_at(SimTime::from_ticks(20), Ev::Ping(2));
        let report = sim.run();
        assert_eq!(report.reason, StopReason::Exhausted);
        assert_eq!(report.events_processed, 3);
        let times: Vec<u64> = sim.model().seen.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert!(sim.model().finish_time.is_some());
    }

    #[test]
    fn horizon_stops_run_and_clamps_clock() {
        let mut sim = Simulation::new(Recorder::default());
        sim.set_horizon(SimTime::from_ticks(15));
        let s = sim.scheduler();
        s.schedule_at(SimTime::from_ticks(10), Ev::Ping(1));
        s.schedule_at(SimTime::from_ticks(20), Ev::Ping(2));
        let report = sim.run();
        assert_eq!(report.reason, StopReason::HorizonReached);
        assert_eq!(report.events_processed, 1);
        assert_eq!(sim.now(), SimTime::from_ticks(15));
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn event_budget_pauses_run() {
        let mut sim = Simulation::new(Recorder::default());
        sim.set_event_budget(2);
        let s = sim.scheduler();
        for i in 0..5 {
            s.schedule_at(SimTime::from_ticks(i * 10), Ev::Ping(i as u32));
        }
        let r1 = sim.run();
        assert_eq!(r1.reason, StopReason::EventBudgetReached);
        assert_eq!(r1.events_processed, 2);
        let r2 = sim.run();
        assert_eq!(r2.events_processed, 2);
        let r3 = sim.run();
        assert_eq!(r3.events_processed, 1);
        assert_eq!(r3.reason, StopReason::Exhausted);
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn model_stop_request() {
        let mut sim = Simulation::new(Recorder::default());
        let s = sim.scheduler();
        s.schedule_at(SimTime::from_ticks(5), Ev::Stop);
        s.schedule_at(SimTime::from_ticks(10), Ev::Ping(1));
        let report = sim.run();
        assert_eq!(report.reason, StopReason::StoppedByModel);
        assert_eq!(sim.model().seen.len(), 1);
        // The second event is still pending; a new run dispatches it.
        let report2 = sim.run();
        assert_eq!(report2.events_processed, 1);
    }

    #[test]
    fn cancellation_prevents_dispatch() {
        struct Canceller {
            victim: Option<EventId>,
            fired: Vec<u32>,
        }
        impl Model for Canceller {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.fired.push(ev);
                if ev == 1 {
                    if let Some(id) = self.victim.take() {
                        sched.cancel(id);
                    }
                }
            }
        }
        let mut sim = Simulation::new(Canceller {
            victim: None,
            fired: vec![],
        });
        let s = sim.scheduler();
        s.schedule_at(SimTime::from_ticks(1), 1);
        let victim = s.schedule_at(SimTime::from_ticks(10), 99);
        s.schedule_at(SimTime::from_ticks(20), 2);
        sim.model_mut().victim = Some(victim);
        sim.run();
        assert_eq!(sim.model().fired, vec![1, 2]);
    }

    #[test]
    fn cancel_of_already_fired_id_is_a_no_op() {
        // The cancellation guard is built lazily on the first cancel; it must
        // still swallow a cancel naming an id that already fired, and keep
        // working for ids scheduled after activation.
        struct StaleCanceller {
            fired_id: Option<EventId>,
            late_victim: Option<EventId>,
            fired: Vec<u32>,
        }
        impl Model for StaleCanceller {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.fired.push(ev);
                if ev == 2 {
                    // Stale cancel: event 1 fired at t=1. Must not corrupt the
                    // queue's live accounting for the still-pending event 3.
                    if let Some(id) = self.fired_id.take() {
                        sched.cancel(id);
                    }
                    // Post-activation schedule + cancel: must be honoured.
                    let victim = sched.schedule_at(SimTime::from_ticks(25), 99);
                    self.late_victim = Some(victim);
                }
                if ev == 3 {
                    if let Some(id) = self.late_victim.take() {
                        sched.cancel(id);
                    }
                }
            }
        }
        let mut sim = Simulation::new(StaleCanceller {
            fired_id: None,
            late_victim: None,
            fired: vec![],
        });
        let s = sim.scheduler();
        let first = s.schedule_at(SimTime::from_ticks(1), 1);
        s.schedule_at(SimTime::from_ticks(10), 2);
        s.schedule_at(SimTime::from_ticks(20), 3);
        sim.model_mut().fired_id = Some(first);
        let report = sim.run();
        assert_eq!(sim.model().fired, vec![1, 2, 3]);
        assert_eq!(report.reason, StopReason::Exhausted);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn schedule_now_runs_after_simultaneous_events() {
        struct Chainer {
            order: Vec<u32>,
        }
        impl Model for Chainer {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.order.push(ev);
                if ev == 1 {
                    sched.schedule_now(3);
                }
            }
        }
        let mut sim = Simulation::new(Chainer { order: vec![] });
        let s = sim.scheduler();
        s.schedule_at(SimTime::from_ticks(10), 1);
        s.schedule_at(SimTime::from_ticks(10), 2);
        sim.run();
        assert_eq!(sim.model().order, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                sched.schedule_at(now - SimDuration::from_ticks(1), ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.scheduler().schedule_at(SimTime::from_ticks(5), ());
        sim.run();
    }

    #[test]
    fn horizon_push_back_keeps_calendar_queue_ordered() {
        // Regression: popping a beyond-horizon event fast-forwards the calendar
        // queue's scan state; when the engine pushes the event back and the model
        // later schedules *earlier* events, the queue must rewind and still
        // dispatch in time order.
        let mut sim = Simulation::with_queue(Recorder::default(), CalendarQueue::new(10, 8));
        sim.set_horizon(SimTime::from_ticks(100));
        sim.scheduler()
            .schedule_at(SimTime::from_ticks(5_000), Ev::Ping(2));
        let r1 = sim.run();
        assert_eq!(r1.reason, StopReason::HorizonReached);
        assert_eq!(sim.model().seen.len(), 0);
        assert_eq!(sim.pending_events(), 1);

        sim.set_horizon(SimTime::from_ticks(10_000));
        sim.scheduler()
            .schedule_at(SimTime::from_ticks(200), Ev::Ping(1));
        let r2 = sim.run();
        assert_eq!(r2.events_processed, 2);
        let order: Vec<u64> = sim.model().seen.iter().map(|(t, _)| *t).collect();
        assert_eq!(order, vec![200, 5_000]);
    }

    #[test]
    fn works_with_calendar_queue() {
        let mut sim = Simulation::with_queue(Recorder::default(), CalendarQueue::new(4, 8));
        let s = sim.scheduler();
        for i in (0..50).rev() {
            s.schedule_at(SimTime::from_ticks(i * 3), Ev::Ping(i as u32));
        }
        let report = sim.run();
        assert_eq!(report.events_processed, 50);
        let times: Vec<u64> = sim.model().seen.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn step_dispatches_single_event() {
        let mut sim = Simulation::new(Recorder::default());
        let s = sim.scheduler();
        s.schedule_at(SimTime::from_ticks(1), Ev::Ping(1));
        s.schedule_at(SimTime::from_ticks(2), Ev::Ping(2));
        assert!(sim.step());
        assert_eq!(sim.model().seen.len(), 1);
        assert!(sim.step());
        assert!(!sim.step());
    }
}

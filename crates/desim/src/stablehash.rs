//! Platform-stable content hashing for cache keys and config fingerprints.
//!
//! [`crate::fxhash`] is the right tool for in-process hash *tables*: fast, but its
//! values are an implementation detail nobody may persist. This module is the
//! opposite tradeoff — a fixed, documented 128-bit FNV-1a whose output is part of the
//! on-disk format of the harness's unit-result cache. The function must produce the
//! same digest on every platform, toolchain and run, forever; changing it silently
//! invalidates every persisted cache entry, so the test suite pins known digests.
//!
//! Inputs are framed (length-prefixed strings, fixed-width integers) so that
//! logically distinct field sequences can never collide by concatenation — e.g.
//! `("ab", "c")` and `("a", "bc")` hash differently.

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// An incremental, platform-stable 128-bit FNV-1a hasher with framed inputs.
///
/// ```
/// use desim::stablehash::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_str("figure5");
/// a.write_u64(42);
/// let mut b = StableHasher::new();
/// b.write_str("figure5");
/// b.write_u64(42);
/// assert_eq!(a.finish_hex(), b.finish_hex());
/// assert_eq!(a.finish_hex().len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorb raw bytes (no framing — callers compose framed helpers below).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` as eight little-endian bytes (fixed width, self-framing).
    pub fn write_u64(&mut self, n: u64) {
        self.write_bytes(&n.to_le_bytes());
    }

    /// Absorb a `u32` as four little-endian bytes.
    pub fn write_u32(&mut self, n: u32) {
        self.write_bytes(&n.to_le_bytes());
    }

    /// Absorb a string, length-prefixed so adjacent strings cannot collide by
    /// concatenation.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// The current digest as 32 lowercase hex characters — the form persisted in
    /// cache entry file names and checksums.
    pub fn finish_hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

/// One-shot digest of a string (e.g. a canonical JSON rendering), as 32 hex chars.
pub fn stable_hash_hex(s: &str) -> String {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish_hex()
}

/// Deterministic shard assignment for a 128-bit content digest: the shard index in
/// `0..count` that owns `digest` when work is split `count` ways.
///
/// This is the partition function behind `run --shard I/N`: because the digest is a
/// uniform function of a unit's identity (never of list position, thread count or
/// claim order), the assignment is stable under unit-list reordering and splits a
/// sweep approximately evenly. Like the digest itself, the mapping is part of the
/// cross-process contract — two shards of the same sweep must agree on ownership
/// forever — so the test suite pins known assignments.
///
/// `count` must be nonzero (a zero-way split owns nothing and callers reject it at
/// parse time); this debug-asserts rather than panicking in release so the hot
/// partition loop stays branch-free.
pub fn shard_index(digest: u128, count: u32) -> u32 {
    debug_assert!(count > 0, "shard count must be nonzero");
    (digest % u128::from(count.max(1))) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The digests below are part of the persisted cache format: if this test fails,
    /// the hash function changed and every on-disk cache entry in the wild is
    /// silently stale. Bump the cache schema version instead of re-pinning casually.
    #[test]
    fn digests_are_pinned() {
        assert_eq!(
            StableHasher::new().finish_hex(),
            "6c62272e07bb014262b821756295c58d",
            "empty digest must equal the FNV-1a offset basis"
        );
        let mut h = StableHasher::new();
        h.write_str("pim");
        h.write_u64(0x5C_2004);
        assert_eq!(h.finish_hex(), "317e7ffc38305b98e15e827ce4e57fcc");
        assert_eq!(
            stable_hash_hex("figure5"),
            "47282ad6eeff0c32316f387ec37b93b9"
        );
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn every_field_matters() {
        let digest = |name: &str, seed: u64, idx: u64| {
            let mut h = StableHasher::new();
            h.write_str(name);
            h.write_u64(seed);
            h.write_u64(idx);
            h.finish()
        };
        let base = digest("figure5", 1, 0);
        assert_ne!(base, digest("figure6", 1, 0));
        assert_ne!(base, digest("figure5", 2, 0));
        assert_ne!(base, digest("figure5", 1, 1));
        assert_eq!(base, digest("figure5", 1, 0));
    }

    #[test]
    fn shard_index_is_pinned_and_in_range() {
        // Shard assignment is part of the cross-process contract: two shards of one
        // sweep must agree on ownership forever. Pin concrete assignments so a
        // change to the mapping fails loudly instead of silently double-computing
        // (or dropping) units across shards.
        let digest = |s: &str| {
            let mut h = StableHasher::new();
            h.write_str(s);
            h.finish()
        };
        assert_eq!(shard_index(digest("figure5"), 2), 1);
        assert_eq!(shard_index(digest("figure5"), 3), 0);
        assert_eq!(shard_index(digest("table1"), 2), 0);
        assert_eq!(shard_index(0, 7), 0);
        assert_eq!(shard_index(u128::MAX, 1), 0);
        for n in 1..=16u32 {
            for s in ["a", "b", "c", "figure12", "prop_spec"] {
                assert!(shard_index(digest(s), n) < n);
            }
        }
    }

    #[test]
    fn shard_index_splits_sequential_digests_roughly_evenly() {
        // The digests of real unit keys are hash outputs, i.e. uniform; a modulo
        // partition of 1000 distinct digests must not starve or overload any shard.
        for n in [2u32, 3, 5, 8] {
            let mut buckets = vec![0u32; n as usize];
            for i in 0..1000u64 {
                let mut h = StableHasher::new();
                h.write_u64(i);
                buckets[shard_index(h.finish(), n) as usize] += 1;
            }
            let mean = 1000 / n;
            for (shard, &got) in buckets.iter().enumerate() {
                assert!(
                    got > mean / 2 && got < mean * 2,
                    "shard {shard}/{n} holds {got} of 1000 digests"
                );
            }
        }
    }

    #[test]
    fn hex_form_is_32_lowercase_chars() {
        let hex = stable_hash_hex("anything");
        assert_eq!(hex.len(), 32);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}

//! Time-series monitors.
//!
//! A [`Monitor`] samples a named quantity at irregular times during a run and can then
//! be queried for the series, for bucketed resampling (to keep report files small), and
//! for summary statistics. The benchmark binaries use monitors to emit the
//! "value versus swept parameter" series behind each figure.

use crate::stats::Tally;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A recorded time series of `(time, value)` samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Monitor {
    name: String,
    samples: Vec<(SimTime, f64)>,
    tally: Tally,
}

impl Monitor {
    /// Create a monitor with a report-facing name.
    pub fn new(name: impl Into<String>) -> Self {
        Monitor {
            name: name.into(),
            samples: Vec::new(),
            tally: Tally::new(),
        }
    }

    /// Monitor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record a sample. Samples must be recorded in non-decreasing time order.
    pub fn record(&mut self, time: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            debug_assert!(
                time >= last,
                "monitor samples must be recorded in time order"
            );
        }
        self.samples.push((time, value));
        self.tally.record(value);
    }

    /// All samples, oldest first.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Observation statistics over the sample values.
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Value of the most recent sample at or before `time`, if any.
    pub fn value_at(&self, time: SimTime) -> Option<f64> {
        match self.samples.binary_search_by_key(&time, |&(t, _)| t) {
            Ok(mut i) => {
                // Several samples may share a timestamp; take the last.
                while i + 1 < self.samples.len() && self.samples[i + 1].0 == time {
                    i += 1;
                }
                Some(self.samples[i].1)
            }
            Err(0) => None,
            Err(i) => Some(self.samples[i - 1].1),
        }
    }

    /// Resample into `buckets` equal-width time buckets over `[start, end]`, averaging
    /// the samples that fall in each bucket. Empty buckets yield `None`.
    pub fn bucketed(&self, start: SimTime, end: SimTime, buckets: usize) -> Vec<Option<f64>> {
        assert!(buckets > 0, "bucket count must be positive");
        assert!(end > start, "bucketed range must be non-empty");
        let span = (end - start).ticks() as f64;
        let mut sums = vec![0.0; buckets];
        let mut counts = vec![0u64; buckets];
        for &(t, v) in &self.samples {
            if t < start || t > end {
                continue;
            }
            let frac = (t - start).ticks() as f64 / span;
            let idx = ((frac * buckets as f64) as usize).min(buckets - 1);
            sums[idx] += v;
            counts[idx] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c == 0 { None } else { Some(s / c as f64) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut m = Monitor::new("queue_len");
        m.record(SimTime::from_ns(1), 2.0);
        m.record(SimTime::from_ns(2), 4.0);
        m.record(SimTime::from_ns(3), 6.0);
        assert_eq!(m.name(), "queue_len");
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert!((m.tally().mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn value_at_returns_latest_not_after() {
        let mut m = Monitor::new("v");
        m.record(SimTime::from_ns(10), 1.0);
        m.record(SimTime::from_ns(20), 2.0);
        m.record(SimTime::from_ns(20), 3.0);
        assert_eq!(m.value_at(SimTime::from_ns(5)), None);
        assert_eq!(m.value_at(SimTime::from_ns(10)), Some(1.0));
        assert_eq!(m.value_at(SimTime::from_ns(15)), Some(1.0));
        assert_eq!(m.value_at(SimTime::from_ns(20)), Some(3.0));
        assert_eq!(m.value_at(SimTime::from_ns(99)), Some(3.0));
    }

    #[test]
    fn bucketed_resampling_averages_within_buckets() {
        let mut m = Monitor::new("v");
        for i in 0..100u64 {
            m.record(SimTime::from_ns(i), i as f64);
        }
        let b = m.bucketed(SimTime::ZERO, SimTime::from_ns(99), 4);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|x| x.is_some()));
        // Bucket means increase monotonically for a ramp.
        let vals: Vec<f64> = b.into_iter().map(|x| x.unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bucketed_marks_empty_buckets() {
        let mut m = Monitor::new("v");
        m.record(SimTime::from_ns(0), 1.0);
        m.record(SimTime::from_ns(90), 2.0);
        let b = m.bucketed(SimTime::ZERO, SimTime::from_ns(100), 10);
        assert!(b[0].is_some());
        assert!(b[5].is_none());
        assert!(b[9].is_some());
    }
}

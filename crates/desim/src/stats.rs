//! Statistics collection for simulation outputs.
//!
//! The paper's dependent variables — performance gain, response time, throughput,
//! utilization and idle time — are all either *observation* statistics (one sample per
//! completed transaction) or *time-weighted* statistics (a state variable integrated
//! over simulated time). [`Tally`] covers the former, [`TimeWeighted`] the latter;
//! [`Histogram`] and [`BatchMeans`] provide distribution shape and confidence
//! intervals for steady-state estimates.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Observation-based statistic: count, mean, variance (Welford), min, max, sum.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    /// New empty tally.
    pub fn new() -> Self {
        Tally {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Record a [`SimDuration`] observation in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_ns_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another tally into this one (parallel reduction).
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Half-width of the `level` confidence interval on the mean, using a Student-t
    /// critical value. Returns 0 for fewer than two observations.
    pub fn confidence_half_width(&self, level: ConfidenceLevel) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let t = student_t_critical(self.count - 1, level);
        t * self.std_dev() / (self.count as f64).sqrt()
    }
}

/// Supported confidence levels for interval estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfidenceLevel {
    /// 90% two-sided.
    P90,
    /// 95% two-sided.
    P95,
    /// 99% two-sided.
    P99,
}

/// Two-sided Student-t critical values for common confidence levels.
///
/// Exact for the tabulated degrees of freedom; interpolates linearly between table
/// rows and converges to the normal quantile for large samples.
pub fn student_t_critical(dof: u64, level: ConfidenceLevel) -> f64 {
    // (dof, t_90, t_95, t_99)
    const TABLE: &[(u64, f64, f64, f64)] = &[
        (1, 6.314, 12.706, 63.657),
        (2, 2.920, 4.303, 9.925),
        (3, 2.353, 3.182, 5.841),
        (4, 2.132, 2.776, 4.604),
        (5, 2.015, 2.571, 4.032),
        (6, 1.943, 2.447, 3.707),
        (7, 1.895, 2.365, 3.499),
        (8, 1.860, 2.306, 3.355),
        (9, 1.833, 2.262, 3.250),
        (10, 1.812, 2.228, 3.169),
        (12, 1.782, 2.179, 3.055),
        (15, 1.753, 2.131, 2.947),
        (20, 1.725, 2.086, 2.845),
        (25, 1.708, 2.060, 2.787),
        (30, 1.697, 2.042, 2.750),
        (40, 1.684, 2.021, 2.704),
        (60, 1.671, 2.000, 2.660),
        (120, 1.658, 1.980, 2.617),
    ];
    const INF: (f64, f64, f64) = (1.645, 1.960, 2.576);
    let pick = |row: (f64, f64, f64)| match level {
        ConfidenceLevel::P90 => row.0,
        ConfidenceLevel::P95 => row.1,
        ConfidenceLevel::P99 => row.2,
    };
    let dof = dof.max(1);
    if dof >= 200 {
        return pick(INF);
    }
    let mut prev = TABLE[0];
    for &row in TABLE {
        if dof == row.0 {
            return pick((row.1, row.2, row.3));
        }
        if dof < row.0 {
            // Linear interpolation in 1/dof, which is how t-tables behave asymptotically.
            let x0 = 1.0 / prev.0 as f64;
            let x1 = 1.0 / row.0 as f64;
            let x = 1.0 / dof as f64;
            let w = if (x1 - x0).abs() < 1e-12 {
                0.0
            } else {
                (x - x0) / (x1 - x0)
            };
            let a = pick((prev.1, prev.2, prev.3));
            let b = pick((row.1, row.2, row.3));
            return a + w * (b - a);
        }
        prev = row;
    }
    let a = pick((prev.1, prev.2, prev.3));
    let b = pick(INF);
    // Interpolate between the last table row (dof 120) and infinity in 1/dof.
    let x0 = 1.0 / prev.0 as f64;
    let x = 1.0 / dof as f64;
    a + (b - a) * (1.0 - x / x0)
}

/// Time-weighted statistic: integrates a piecewise-constant state variable over time.
///
/// Used for utilization (server busy fraction), queue length, and idle-time accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    area: f64,
    min: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial value `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            current: initial,
            area: 0.0,
            min: initial,
            max: initial,
        }
    }

    /// Update the state variable to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(
            now >= self.last_change,
            "time-weighted updates must be in time order"
        );
        let dt = now.saturating_since(self.last_change).ticks() as f64;
        self.area += self.current * dt;
        self.current = value;
        self.last_change = now;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Add `delta` to the state variable at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// Current value of the state variable.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted mean of the variable over `[start, now]`.
    pub fn time_average(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_change).ticks() as f64;
        let total = now.saturating_since(self.start).ticks() as f64;
        if total <= 0.0 {
            return self.current;
        }
        (self.area + self.current * dt) / total
    }

    /// Total area under the curve up to `now` (in value·ticks).
    pub fn area(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_change).ticks() as f64;
        self.area + self.current * dt
    }

    /// Minimum value seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum value seen.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram must have at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record an observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Counts per bin.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile `q` in `[0,1]` using bin midpoints.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // q = 0 would give target = 0, making `acc >= target` hold on the very
        // first bin even when it is empty; clamp to 1 so q = 0 resolves to the
        // lowest bucket that actually holds mass (q > 0 already yields >= 1).
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut acc = self.underflow;
        if acc >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.lo + (i as f64 + 0.5) * w);
            }
        }
        Some(self.hi)
    }
}

/// Batch-means estimator for steady-state simulation output analysis.
///
/// Observations are grouped into consecutive batches of `batch_size`; the batch means
/// are treated as (approximately independent) samples, which gives a defensible
/// confidence interval even though raw per-transaction observations are autocorrelated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: Tally,
}

impl BatchMeans {
    /// Create an estimator with the given batch size (observations per batch).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: Tally::new(),
        }
    }

    /// Record one raw observation.
    pub fn record(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches
                .record(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> u64 {
        self.batches.count()
    }

    /// Mean of completed batch means.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Confidence half-width over the batch means.
    pub fn confidence_half_width(&self, level: ConfidenceLevel) -> f64 {
        self.batches.confidence_half_width(level)
    }
}

/// Convenience bundle describing a statistic for report output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatSummary {
    /// Statistic name as it should appear in reports.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum observation, if any.
    pub min: Option<f64>,
    /// Maximum observation, if any.
    pub max: Option<f64>,
}

impl StatSummary {
    /// Build a summary from a tally.
    pub fn from_tally(name: impl Into<String>, t: &Tally) -> Self {
        StatSummary {
            name: name.into(),
            count: t.count(),
            mean: t.mean(),
            std_dev: t.std_dev(),
            min: t.min(),
            max: t.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
        assert!((t.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn tally_empty_is_sane() {
        let t = Tally::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert_eq!(t.confidence_half_width(ConfidenceLevel::P95), 0.0);
    }

    #[test]
    fn tally_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Tally::new();
        a.record(1.0);
        a.record(3.0);
        let before = a.clone();
        a.merge(&Tally::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut empty = Tally::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn student_t_table_values() {
        assert!((student_t_critical(1, ConfidenceLevel::P95) - 12.706).abs() < 1e-9);
        assert!((student_t_critical(10, ConfidenceLevel::P90) - 1.812).abs() < 1e-9);
        assert!((student_t_critical(1_000_000, ConfidenceLevel::P99) - 2.576).abs() < 1e-9);
        // Interpolated value lies between its neighbours.
        let t11 = student_t_critical(11, ConfidenceLevel::P95);
        assert!(t11 < student_t_critical(10, ConfidenceLevel::P95));
        assert!(t11 > student_t_critical(12, ConfidenceLevel::P95));
    }

    #[test]
    fn confidence_interval_shrinks_with_samples() {
        let mut small = Tally::new();
        let mut large = Tally::new();
        for i in 0..10 {
            small.record((i % 5) as f64);
        }
        for i in 0..1000 {
            large.record((i % 5) as f64);
        }
        assert!(
            large.confidence_half_width(ConfidenceLevel::P95)
                < small.confidence_half_width(ConfidenceLevel::P95)
        );
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_ticks(10), 1.0); // value 0 for 10 ticks
        tw.set(SimTime::from_ticks(30), 3.0); // value 1 for 20 ticks
                                              // value 3 for 10 ticks up to t=40
        let avg = tw.time_average(SimTime::from_ticks(40));
        let expect = (0.0 * 10.0 + 1.0 * 20.0 + 3.0 * 10.0) / 40.0;
        assert!((avg - expect).abs() < 1e-12);
        assert_eq!(tw.min(), 0.0);
        assert_eq!(tw.max(), 3.0);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn time_weighted_add_and_area() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.add(SimTime::from_ticks(5), 1.0);
        tw.add(SimTime::from_ticks(10), -3.0);
        assert_eq!(tw.current(), 0.0);
        let area = tw.area(SimTime::from_ticks(20));
        assert!((area - (2.0 * 5.0 + 3.0 * 5.0 + 0.0 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(SimTime::from_ticks(5), 7.0);
        assert_eq!(tw.time_average(SimTime::from_ticks(5)), 7.0);
    }

    #[test]
    fn histogram_binning_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        h.record(-5.0);
        h.record(42.0);
        assert_eq!(h.count(), 102);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins().iter().sum::<u64>(), 100);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 5.0).abs() <= 1.0, "median estimate {median}");
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn histogram_empty_quantile_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_quantile_zero_resolves_to_lowest_occupied_bucket() {
        // Regression: q = 0 used to return the first bin's midpoint even when
        // all the mass sat in a later bin (target = 0 made `acc >= target`
        // hold immediately).
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(7.5); // bin 7, midpoint 7.5
        assert_eq!(h.quantile(0.0), Some(7.5));
        assert_eq!(h.quantile(1.0), Some(7.5));

        // All mass in the overflow bucket -> hi, not bin 0's midpoint.
        let mut over = Histogram::new(0.0, 10.0, 10);
        over.record(42.0);
        assert_eq!(over.quantile(0.0), Some(10.0));

        // Underflow mass still reports lo at q = 0.
        let mut under = Histogram::new(0.0, 10.0, 10);
        under.record(-1.0);
        assert_eq!(under.quantile(0.0), Some(0.0));
    }

    #[test]
    fn batch_means_reduces_to_overall_mean() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.record((i % 10) as f64);
        }
        assert_eq!(bm.completed_batches(), 10);
        assert!((bm.mean() - 4.5).abs() < 1e-12);
        assert!(bm.confidence_half_width(ConfidenceLevel::P95) < 1e-9);
    }

    #[test]
    fn stat_summary_reflects_tally() {
        let mut t = Tally::new();
        t.record(1.0);
        t.record(2.0);
        let s = StatSummary::from_tally("rt", &t);
        assert_eq!(s.name, "rt");
        assert_eq!(s.count, 2);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(2.0));
    }
}

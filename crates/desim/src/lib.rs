//! # desim — a discrete-event simulation engine for queuing-model studies
//!
//! This crate is the workspace's substitute for the commercial HyPerformix
//! SES/Workbench tool used in the paper *"Analysis and Modeling of Advanced PIM
//! Architecture Design Tradeoffs"* (SC 2004). It provides the modeling primitives that
//! the paper's two queuing studies rely on:
//!
//! * an event-oriented [`engine::Simulation`] with a deterministic pending-event set
//!   ([`event::BinaryHeapQueue`] or [`event::CalendarQueue`]),
//! * passive multi-server [`resource::Resource`]s with FIFO/priority queuing,
//! * a transaction-oriented queuing-network layer ([`qnet`]) with sources, service
//!   centers, delays, sinks and probabilistic/class-based routing,
//! * reproducible random variate streams ([`random`]),
//! * observation and time-weighted statistics, histograms, batch means and
//!   confidence intervals ([`stats`]),
//! * tracing ([`trace`]) and time-series monitors ([`monitor`]).
//!
//! The engine is deliberately single-threaded per simulation instance (discrete-event
//! causality is inherently sequential); throughput for the paper's parameter sweeps
//! comes from running many independent simulations in parallel. The [`par`] module is
//! the shared substrate for that: a work-stealing map over a flattened work list
//! (shared atomic index) used by the `pim-core`/`pim-parcels` sweeps and by the
//! `pim-harness` batch runner.
//!
//! ## Quick example: an M/M/1 queue
//!
//! ```
//! use desim::prelude::*;
//!
//! let mut net = QNetwork::new(1);
//! let src = net.add_source("arrivals", Dist::Exponential { mean: 20.0 }, 0, None);
//! let cpu = net.add_service("cpu", 1, Dist::Exponential { mean: 10.0 });
//! let done = net.add_sink("done");
//! net.set_route(src, Routing::To(cpu));
//! net.set_route(cpu, Routing::To(done));
//! let report = net.run(SimTime::from_us(500));
//! let cpu_report = report.node("cpu").unwrap();
//! assert!((cpu_report.utilization - 0.5).abs() < 0.1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod event;
pub mod fxhash;
pub mod monitor;
pub mod par;
pub mod qnet;
pub mod random;
pub mod replication;
pub mod resource;
pub mod stablehash;
pub mod stats;
pub mod time;
pub mod trace;

/// Convenient glob import for model authors.
pub mod prelude {
    pub use crate::engine::{Model, RunReport, Scheduler, Simulation, StopReason};
    pub use crate::event::{BinaryHeapQueue, CalendarQueue, EventId, EventQueue, FifoBandQueue};
    pub use crate::monitor::Monitor;
    pub use crate::par::{available_threads, resolve_threads, work_steal_map};
    pub use crate::qnet::{NodeId, QNetReport, QNetwork, Routing, Transaction};
    pub use crate::random::{Dist, RandomStream};
    pub use crate::replication::{replicate, replicate_to_precision, ReplicationSummary};
    pub use crate::resource::{Acquire, Resource};
    pub use crate::stats::{
        BatchMeans, ConfidenceLevel, Histogram, StatSummary, Tally, TimeWeighted,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{TraceLevel, Tracer};
}

//! Random variate generation for statistical simulation models.
//!
//! SES/Workbench models draw service times, branch decisions and workload attributes
//! from named distributions attached to independent random streams. This module
//! provides the same facility: a [`RandomStream`] is a seeded generator (so every
//! experiment is reproducible), and a [`Dist`] is a serializable description of a
//! distribution that can be sampled against any stream.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng, Standard};
use serde::{Deserialize, Serialize};

/// Number of raw 64-bit words prefetched per buffer refill.
///
/// Small enough that cloning a stream stays cheap, large enough that the
/// xoshiro state is touched once per 32 draws instead of once per draw in the
/// simulation inner loops.
const RAW_BUF_LEN: usize = 32;

/// A seeded, reproducible random stream.
///
/// Streams created with different identifiers from the same experiment seed are
/// statistically independent (the identifier is mixed into the seed with
/// SplitMix64), which lets a model dedicate one stream to service times, another
/// to routing, etc., without cross-coupling — the standard variance-reduction
/// discipline for queuing studies.
///
/// Draws are served from a small prefetched buffer of raw generator words. The
/// buffer is an internal detail: every consumer (single draws, [`Self::below`]'s
/// rejection loop, the [`Self::fill_uniform01`] bulk path) takes words from it
/// front-to-back, so the value sequence is bit-identical to drawing from the
/// underlying generator one word at a time.
#[derive(Debug, Clone)]
pub struct RandomStream {
    rng: StdRng,
    seed: u64,
    stream_id: u64,
    draws: u64,
    /// Invariant: `buf[buf_pos..buf_len]` are exactly the next outputs of
    /// `rng`'s pre-buffering word sequence, in order.
    buf: [u64; RAW_BUF_LEN],
    buf_pos: usize,
    buf_len: usize,
}

/// Mix a (seed, stream) pair into a single 64-bit seed using SplitMix64 steps.
///
/// Public because it is *the* seed-derivation primitive of the workspace: every
/// layer that needs decorrelated streams from one base seed (per-stream RNGs here,
/// scenario seeds in `pim-harness`, per-unit spec seeds) must use this exact
/// function — hand-copied variants would have to be kept bit-identical forever or
/// the byte-identity golden files break.
pub fn mix_seed(seed: u64, stream_id: u64) -> u64 {
    let mut z = seed ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RandomStream {
    /// Create stream `stream_id` of the experiment identified by `seed`.
    pub fn new(seed: u64, stream_id: u64) -> Self {
        RandomStream {
            rng: StdRng::seed_from_u64(mix_seed(seed, stream_id)),
            seed,
            stream_id,
            draws: 0,
            buf: [0; RAW_BUF_LEN],
            buf_pos: 0,
            buf_len: 0,
        }
    }

    /// Refill the prefetch buffer from the underlying generator.
    fn refill(&mut self) {
        for slot in self.buf.iter_mut() {
            *slot = self.rng.next_u64();
        }
        self.buf_pos = 0;
        self.buf_len = RAW_BUF_LEN;
    }

    /// The next raw 64-bit generator word, via the prefetch buffer.
    #[inline]
    fn next_raw(&mut self) -> u64 {
        if self.buf_pos == self.buf_len {
            self.refill();
        }
        let x = self.buf[self.buf_pos];
        self.buf_pos += 1;
        x
    }

    /// The experiment seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stream identifier.
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// Number of primitive draws made so far (diagnostic).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// A uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.draws += 1;
        f64::from_raw(self.next_raw())
    }

    /// Fill `out` with uniform draws in `[0, 1)` — the bulk path for tight
    /// sampling loops. Bit-identical to calling [`Self::uniform01`] once per
    /// slot, but converts whole runs of prefetched words at a time.
    pub fn fill_uniform01(&mut self, out: &mut [f64]) {
        self.draws += out.len() as u64;
        let mut i = 0;
        while i < out.len() {
            if self.buf_pos == self.buf_len {
                self.refill();
            }
            let take = (out.len() - i).min(self.buf_len - self.buf_pos);
            let words = &self.buf[self.buf_pos..self.buf_pos + take];
            for (dst, &raw) in out[i..i + take].iter_mut().zip(words) {
                *dst = f64::from_raw(raw);
            }
            self.buf_pos += take;
            i += take;
        }
    }

    /// A uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo, "uniform bounds reversed: [{lo}, {hi})");
        lo + (hi - lo) * self.uniform01()
    }

    /// A uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        self.draws += 1;
        // Debiased multiply-shift (Lemire), consuming raw words through the
        // prefetch buffer with exactly the draw pattern of the generator's
        // `gen_range(0..n)` — same word count, same result, bit-identical.
        let mut m = (self.next_raw() as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                m = (self.next_raw() as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform01() < p
    }

    /// Exponential variate with the given mean (inverse-transform method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = loop {
            let u = self.uniform01();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Standard-normal variate (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let x = 2.0 * self.uniform01() - 1.0;
            let y = 2.0 * self.uniform01() - 1.0;
            let s = x * x + y * y;
            if s > 0.0 && s < 1.0 {
                return x * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Geometric variate: number of Bernoulli(p) failures before the first success.
    pub fn geometric(&mut self, p: f64) -> u64 {
        self.geometric_with_ln(p, (1.0 - p).ln())
    }

    /// [`Self::geometric`] with `(1.0 - p).ln()` precomputed by the caller, so
    /// hot loops drawing many geometrics with a fixed `p` hoist the `ln`. The
    /// quotient is evaluated exactly as in the recomputing form, so results are
    /// bit-identical.
    #[inline]
    pub fn geometric_with_ln(&mut self, p: f64, ln_one_minus_p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric parameter out of range: {p}");
        if p >= 1.0 {
            return 0;
        }
        let u = loop {
            let u = self.uniform01();
            if u > 0.0 {
                break u;
            }
        };
        (u.ln() / ln_one_minus_p).floor() as u64
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s` (rejection-free inverse CDF
    /// over a precomputed table is provided by [`ZipfTable`]; this method is the slow
    /// path that recomputes the normalizer each call).
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        ZipfTable::new(n, s).sample(self)
    }

    /// Sample a described distribution.
    pub fn sample(&mut self, dist: &Dist) -> f64 {
        match *dist {
            Dist::Constant(c) => c,
            Dist::Uniform { lo, hi } => self.uniform(lo, hi),
            Dist::Exponential { mean } => self.exponential(mean),
            Dist::Normal { mean, std_dev } => self.normal(mean, std_dev),
            Dist::Erlang { k, mean } => {
                let k = k.max(1);
                let stage_mean = mean / k as f64;
                (0..k).map(|_| self.exponential(stage_mean)).sum()
            }
            Dist::Empirical { ref points } => {
                let u = self.uniform01();
                let mut acc = 0.0;
                for &(value, weight) in points {
                    acc += weight;
                    if u < acc {
                        return value;
                    }
                }
                points.last().map(|&(v, _)| v).unwrap_or(0.0)
            }
        }
    }

    /// Sample a described distribution, clamped to be non-negative (service times).
    pub fn sample_nonneg(&mut self, dist: &Dist) -> f64 {
        self.sample(dist).max(0.0)
    }
}

/// A serializable distribution description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always the same value (deterministic service).
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Normal with mean and standard deviation.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Erlang-k with the given overall mean (sum of k exponential stages).
    Erlang {
        /// Number of exponential stages.
        k: u32,
        /// Overall mean (the sum across stages).
        mean: f64,
    },
    /// Discrete empirical distribution: `(value, probability)` pairs.
    /// Probabilities should sum to 1; the last value absorbs any remainder.
    Empirical {
        /// `(value, probability)` pairs.
        points: Vec<(f64, f64)>,
    },
}

impl Dist {
    /// The theoretical mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(c) => c,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { mean } => mean,
            Dist::Normal { mean, .. } => mean,
            Dist::Erlang { mean, .. } => mean,
            Dist::Empirical { ref points } => points.iter().map(|&(v, w)| v * w).sum(),
        }
    }
}

/// Precomputed inverse-CDF table for Zipf(n, s) sampling.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build the table for ranks `0..n` with exponent `s` (s = 0 is uniform).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        ZipfTable { cdf: weights }
    }

    /// Sample a rank in `[0, n)`.
    pub fn sample(&self, stream: &mut RandomStream) -> u64 {
        let u = stream.uniform01();
        match self
            .cdf
            // audit:allow(unwrap-in-library): CDF entries and the probe are finite by construction, so partial_cmp is total
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap())
        {
            Ok(i) => i as u64 + 1,
            Err(i) => i as u64,
        }
        .min(self.cdf.len() as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> RandomStream {
        RandomStream::new(0xC0FFEE, 1)
    }

    #[test]
    fn buffered_stream_matches_raw_generator_words() {
        // The prefetch buffer must consume the generator's word sequence in
        // order: uniform01 over the stream == f64::from_raw over the bare rng.
        let mut s = RandomStream::new(0xABCD, 9);
        let mut raw = StdRng::seed_from_u64(mix_seed(0xABCD, 9));
        for _ in 0..(3 * RAW_BUF_LEN + 5) {
            let expect = f64::from_raw(raw.next_u64());
            assert_eq!(s.uniform01().to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn fill_uniform01_is_bit_identical_to_sequential_draws() {
        let mut bulk = RandomStream::new(0x5EED, 4);
        let mut seq = RandomStream::new(0x5EED, 4);
        // Warm the buffers unevenly so chunk boundaries differ between the two.
        assert_eq!(bulk.uniform01().to_bits(), seq.uniform01().to_bits());
        for len in [0usize, 1, 7, RAW_BUF_LEN, RAW_BUF_LEN + 3, 100] {
            let mut out = vec![0.0; len];
            bulk.fill_uniform01(&mut out);
            for x in out {
                assert_eq!(x.to_bits(), seq.uniform01().to_bits());
            }
            assert_eq!(bulk.draws(), seq.draws());
        }
    }

    #[test]
    fn below_matches_generator_gen_range() {
        use rand::Rng;
        let mut s = RandomStream::new(0xB0B, 2);
        let mut raw = StdRng::seed_from_u64(mix_seed(0xB0B, 2));
        // Mix of spans, including non-powers of two that exercise the
        // rejection loop's variable word consumption.
        for n in [1u64, 2, 3, 7, 17, 1000, u64::MAX - 1] {
            for _ in 0..200 {
                assert_eq!(s.below(n), raw.gen_range(0..n));
            }
        }
    }

    #[test]
    fn geometric_with_ln_matches_geometric() {
        let mut a = RandomStream::new(0x9E0, 1);
        let mut b = RandomStream::new(0x9E0, 1);
        let p = 0.37_f64;
        let ln_q = (1.0 - p).ln();
        for _ in 0..500 {
            assert_eq!(a.geometric(p), b.geometric_with_ln(p, ln_q));
        }
        assert_eq!(a.draws(), b.draws());
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = RandomStream::new(7, 3);
        let mut b = RandomStream::new(7, 3);
        for _ in 0..100 {
            assert_eq!(a.uniform01().to_bits(), b.uniform01().to_bits());
        }
    }

    #[test]
    fn different_stream_ids_decorrelate() {
        let mut a = RandomStream::new(7, 1);
        let mut b = RandomStream::new(7, 2);
        let same = (0..64).filter(|_| a.uniform01() == b.uniform01()).count();
        assert!(
            same < 4,
            "streams with different ids should not track each other"
        );
    }

    #[test]
    fn uniform_bounds() {
        let mut s = stream();
        for _ in 0..10_000 {
            let x = s.uniform(3.0, 9.0);
            assert!((3.0..9.0).contains(&x));
        }
    }

    #[test]
    fn below_bounds() {
        let mut s = stream();
        for _ in 0..10_000 {
            assert!(s.below(17) < 17);
        }
    }

    #[test]
    fn bernoulli_extremes_and_mean() {
        let mut s = stream();
        assert!(!s.bernoulli(0.0));
        assert!(s.bernoulli(1.0));
        let hits = (0..20_000).filter(|_| s.bernoulli(0.3)).count() as f64 / 20_000.0;
        assert!(
            (hits - 0.3).abs() < 0.02,
            "empirical {hits} too far from 0.3"
        );
    }

    #[test]
    fn exponential_mean_converges() {
        let mut s = stream();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| s.exponential(42.0)).sum::<f64>() / n as f64;
        assert!((mean - 42.0).abs() / 42.0 < 0.03, "empirical mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut s = stream();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| s.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.2);
    }

    #[test]
    fn geometric_mean_converges() {
        let mut s = stream();
        let p = 0.25;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| s.geometric(p) as f64).sum::<f64>() / n as f64;
        let expect = (1.0 - p) / p;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "empirical mean {mean} expect {expect}"
        );
        assert_eq!(s.geometric(1.0), 0);
    }

    #[test]
    fn erlang_mean_and_lower_variance_than_exponential() {
        let mut s = stream();
        let n = 30_000;
        let erl: Vec<f64> = (0..n)
            .map(|_| s.sample(&Dist::Erlang { k: 4, mean: 8.0 }))
            .collect();
        let exp: Vec<f64> = (0..n).map(|_| s.exponential(8.0)).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let var = |v: &[f64]| {
            let m = mean(v);
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!((mean(&erl) - 8.0).abs() < 0.2);
        assert!(
            var(&erl) < var(&exp),
            "Erlang-4 must have lower variance than exponential"
        );
    }

    #[test]
    fn empirical_distribution_respects_weights() {
        let mut s = stream();
        let d = Dist::Empirical {
            points: vec![(1.0, 0.2), (2.0, 0.5), (3.0, 0.3)],
        };
        let n = 30_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            let v = s.sample(&d);
            counts[v as usize - 1] += 1;
        }
        let f = |c: u32| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.2).abs() < 0.02);
        assert!((f(counts[1]) - 0.5).abs() < 0.02);
        assert!((f(counts[2]) - 0.3).abs() < 0.02);
    }

    #[test]
    fn dist_means() {
        assert_eq!(Dist::Constant(4.0).mean(), 4.0);
        assert_eq!(Dist::Uniform { lo: 2.0, hi: 6.0 }.mean(), 4.0);
        assert_eq!(Dist::Exponential { mean: 5.0 }.mean(), 5.0);
        assert_eq!(Dist::Erlang { k: 3, mean: 9.0 }.mean(), 9.0);
        let emp = Dist::Empirical {
            points: vec![(1.0, 0.5), (3.0, 0.5)],
        };
        assert!((emp.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut s = stream();
        let table = ZipfTable::new(100, 1.2);
        let n = 40_000;
        let mut low = 0u32;
        for _ in 0..n {
            let r = table.sample(&mut s);
            assert!(r < 100);
            if r < 10 {
                low += 1;
            }
        }
        assert!(
            low as f64 / n as f64 > 0.5,
            "Zipf(1.2) should concentrate mass on low ranks"
        );
    }

    #[test]
    fn zipf_with_zero_exponent_is_roughly_uniform() {
        let mut s = stream();
        let table = ZipfTable::new(10, 0.0);
        let n = 50_000;
        let mut counts = vec![0u32; 10];
        for _ in 0..n {
            counts[table.sample(&mut s) as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!(
                (f - 0.1).abs() < 0.02,
                "bucket frequency {f} deviates from uniform"
            );
        }
    }

    #[test]
    fn sample_nonneg_clamps() {
        let mut s = stream();
        for _ in 0..1000 {
            assert!(
                s.sample_nonneg(&Dist::Normal {
                    mean: 0.0,
                    std_dev: 5.0
                }) >= 0.0
            );
        }
    }
}

//! Work-stealing execution of embarrassingly parallel work lists.
//!
//! Every parameter sweep in the workspace — `(N, %WL)` grids in `pim-core`, the
//! parcel grids in `pim-parcels`, flattened scenario units in `pim-harness` — reduces
//! to "evaluate `f(i, &items[i])` for every `i`, order-independently". This module is
//! the one shared implementation: a *self-scheduling* (work-stealing) map in which
//! workers repeatedly claim the next unclaimed index from a shared atomic counter.
//!
//! Compared with the static block partition it replaced, the shared index keeps every
//! worker busy until the global list drains: when item costs are skewed (large-`N`
//! simulation points take orders of magnitude longer than small ones), no worker sits
//! idle behind a finished block while another still owns a long tail.
//!
//! Determinism: results are written back by *input index*, and callers derive any
//! randomness from the index (never from the executing thread or claim order), so
//! the output is byte-identical for every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller does not care: one per available
/// core (falling back to 4 when the parallelism cannot be queried).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Resolve a user-facing `jobs`/`threads` knob against a work-list length: `0` means
/// [`available_threads`], and the result is clamped to `[1, len.max(1)]` so short
/// lists do not spawn idle workers.
pub fn resolve_threads(requested: usize, len: usize) -> usize {
    let threads = if requested == 0 {
        available_threads()
    } else {
        requested
    };
    threads.clamp(1, len.max(1))
}

/// Evaluate `f(i, &items[i])` for every item across up to `threads` worker threads
/// (`0` = one per core) using a shared atomic work index, returning the results in
/// input order.
///
/// `f` must derive any randomness from the index or the item — never from thread
/// identity — to keep the output independent of the thread count. A panic in `f`
/// propagates to the caller once the scope joins.
pub fn work_steal_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Buffer locally and flush in chunks so the slot lock is touched far
                // less often than once per item.
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                    if local.len() >= 32 {
                        flush(&slots, &mut local);
                    }
                }
                flush(&slots, &mut local);
            });
        }
    });
    slots
        .into_inner()
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        .expect("no worker panicked")
        .into_iter()
        // audit:allow(unwrap-in-library): the claim counter hands each index to exactly one worker
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

/// Move a worker's buffered `(index, result)` pairs into the shared slot vector.
fn flush<U>(slots: &Mutex<Vec<Option<U>>>, local: &mut Vec<(usize, U)>) {
    if local.is_empty() {
        return;
    }
    // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
    let mut guard = slots.lock().expect("no worker panicked");
    for (i, value) in local.drain(..) {
        debug_assert!(guard[i].is_none(), "index {i} claimed twice");
        guard[i] = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order_regardless_of_threads() {
        let items: Vec<u64> = (0..250).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let got = work_steal_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_lists_work() {
        let none: Vec<u32> = vec![];
        assert!(work_steal_map(&none, 4, |_, &x| x).is_empty());
        assert_eq!(work_steal_map(&[7u32], 4, |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn index_is_passed_through() {
        let items = vec!["a", "b", "c"];
        let got = work_steal_map(&items, 2, |i, &s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn skewed_item_costs_still_complete() {
        // One long item up front must not serialize the rest behind it.
        let items: Vec<u64> = (0..64).collect();
        let got = work_steal_map(&items, 4, |_, &x| {
            if x == 0 {
                (0..50_000u64).sum::<u64>() + x
            } else {
                x
            }
        });
        assert_eq!(got[0], (0..50_000u64).sum::<u64>());
        assert_eq!(got[1..], items[1..]);
    }

    #[test]
    fn resolve_threads_contract() {
        assert_eq!(resolve_threads(0, 100), available_threads().clamp(1, 100));
        assert_eq!(resolve_threads(3, 100), 3);
        assert_eq!(resolve_threads(8, 2), 2);
        assert_eq!(resolve_threads(8, 0), 1);
        assert!(available_threads() >= 1);
    }
}

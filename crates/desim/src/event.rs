//! Event records and pending-event-set implementations.
//!
//! The engine keeps a *pending event set*: a priority queue ordered by
//! `(time, priority, sequence)`. Two interchangeable implementations are provided:
//!
//! * [`BinaryHeapQueue`] — a classic binary-heap future event list; the default.
//! * [`CalendarQueue`] — a bucketed calendar queue in the style of Brown (1988),
//!   which gives near-O(1) enqueue/dequeue when event times are roughly uniform
//!   over a known horizon. The benchmark crate compares the two (ablation E-X in
//!   DESIGN.md).
//!
//! Ties on time are broken first by an explicit scheduling priority (lower value is
//! served first) and then by insertion order, so models get deterministic FIFO
//! semantics for simultaneous events — the same guarantee SES/Workbench provides.

use crate::fxhash::FxHashSet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier handed back by `schedule`, usable to cancel a pending event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

/// A scheduled occurrence of a model event `E`.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Secondary ordering key for simultaneous events; lower fires first.
    pub priority: i32,
    /// Unique, monotonically increasing sequence number (insertion order).
    pub seq: u64,
    /// Identifier for cancellation.
    pub id: EventId,
    /// The model-defined payload.
    pub payload: E,
}

impl<E> ScheduledEvent<E> {
    fn key(&self) -> (SimTime, i32, u64) {
        (self.time, self.priority, self.seq)
    }
}

/// Abstraction over pending-event-set implementations.
pub trait EventQueue<E> {
    /// Insert a scheduled event.
    fn push(&mut self, ev: ScheduledEvent<E>);
    /// Remove and return the event with the smallest `(time, priority, seq)` key,
    /// skipping cancelled events.
    fn pop(&mut self) -> Option<ScheduledEvent<E>>;
    /// Peek at the time of the next (non-cancelled) event without removing it.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// Mark an event as cancelled. Returns `true` if the id was pending.
    fn cancel(&mut self, id: EventId) -> bool;
    /// Number of pending (non-cancelled) events.
    fn len(&self) -> usize;
    /// True when no pending events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Ids of all live (non-cancelled) events, in no particular order. The engine
    /// calls this once, on a model's *first* cancel, to build its cancellation
    /// guard lazily — it is never on the hot path.
    fn live_ids(&self) -> Vec<EventId>;
}

// ---------------------------------------------------------------------------
// Payload arena shared by the heap-backed queues
// ---------------------------------------------------------------------------

/// Whether payloads of type `E` should be parked in the arena (true) or carried
/// inline through the ordering structure (false).
///
/// `size_of` is a compile-time constant, so each monomorphized queue keeps only
/// one of the two code paths after optimization. Small payloads (the engine's
/// `u64` handles, `pim-core`'s 16-byte phase events) sift faster inline than
/// through an extra arena indirection; large ones (qnet transactions, parcel
/// events) sift as 32-byte [`SlotEntry`] keys with the payload parked.
#[inline(always)]
fn arena_backed<E>() -> bool {
    std::mem::size_of::<E>() > 24
}

/// Slab of event payloads with a free-list of reusable slots.
///
/// For arena-backed payload types (see [`arena_backed`]) the heap-backed queues
/// keep only a compact fixed-size key record ([`SlotEntry`]) inside their
/// ordering structure and park the payload here. Slots freed by `pop` are
/// reused by the next `push`, so steady-state event churn moves entries a
/// fraction the size of a full [`ScheduledEvent`] through the heap and never
/// grows the backing storage beyond the high-water mark of in-flight events.
struct EventArena<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> EventArena<E> {
    fn new() -> Self {
        EventArena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    #[inline]
    fn insert(&mut self, payload: E) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(payload));
                slot
            }
        }
    }

    #[inline]
    fn take(&mut self, slot: u32) -> E {
        let taken = self.slots[slot as usize].take();
        // audit:allow(unwrap-in-library): a slot handle is held by exactly one queue entry, and every entry was filled by `insert`
        let payload = taken.expect("arena slot occupied");
        self.free.push(slot);
        payload
    }
}

/// Compact ordering record for arena-backed queues: the `(time, priority, seq)`
/// key, the id (for cancellation) and the arena slot holding the payload.
#[derive(Clone, Copy)]
struct SlotEntry {
    time: SimTime,
    priority: i32,
    seq: u64,
    id: EventId,
    slot: u32,
}

impl SlotEntry {
    #[inline]
    fn key(&self) -> (SimTime, i32, u64) {
        (self.time, self.priority, self.seq)
    }
}

// ---------------------------------------------------------------------------
// Hybrid heap band shared by BinaryHeapQueue and FifoBandQueue's overflow band
// ---------------------------------------------------------------------------

struct HeapSlot(SlotEntry);

impl PartialEq for HeapSlot {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for HeapSlot {}
impl PartialOrd for HeapSlot {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapSlot {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) yields the smallest key first.
        other.0.key().cmp(&self.0.key())
    }
}

struct HeapEntry<E>(ScheduledEvent<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) yields the smallest key first.
        other.0.key().cmp(&self.0.key())
    }
}

/// A min-ordered heap of scheduled events that stores payloads inline or in an
/// [`EventArena`] depending on `size_of::<E>()` (see [`arena_backed`]). Exactly
/// one of `inline`/`slots` is ever populated for a given `E`; the compile-time
/// constant branch lets the optimizer drop the other path entirely.
struct HybridHeap<E> {
    inline: BinaryHeap<HeapEntry<E>>,
    slots: BinaryHeap<HeapSlot>,
    arena: EventArena<E>,
}

impl<E> HybridHeap<E> {
    fn new() -> Self {
        HybridHeap {
            inline: BinaryHeap::new(),
            slots: BinaryHeap::new(),
            arena: EventArena::new(),
        }
    }

    #[inline]
    fn push(&mut self, ev: ScheduledEvent<E>) {
        if arena_backed::<E>() {
            let slot = self.arena.insert(ev.payload);
            self.slots.push(HeapSlot(SlotEntry {
                time: ev.time,
                priority: ev.priority,
                seq: ev.seq,
                id: ev.id,
                slot,
            }));
        } else {
            self.inline.push(HeapEntry(ev));
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if arena_backed::<E>() {
            let e = self.slots.pop()?.0;
            Some(ScheduledEvent {
                time: e.time,
                priority: e.priority,
                seq: e.seq,
                id: e.id,
                payload: self.arena.take(e.slot),
            })
        } else {
            self.inline.pop().map(|e| e.0)
        }
    }

    #[inline]
    fn peek_key(&self) -> Option<(SimTime, i32, u64)> {
        if arena_backed::<E>() {
            self.slots.peek().map(|e| e.0.key())
        } else {
            self.inline.peek().map(|e| e.0.key())
        }
    }

    #[inline]
    fn peek_id(&self) -> Option<EventId> {
        if arena_backed::<E>() {
            self.slots.peek().map(|e| e.0.id)
        } else {
            self.inline.peek().map(|e| e.0.id)
        }
    }

    fn ids(&self) -> Vec<EventId> {
        if arena_backed::<E>() {
            self.slots.iter().map(|e| e.0.id).collect()
        } else {
            self.inline.iter().map(|e| e.0.id).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Binary heap implementation
// ---------------------------------------------------------------------------

/// Binary-heap future event list with lazy cancellation.
///
/// Large payloads sift as compact 32-byte [`SlotEntry`] keys with the payload
/// parked in an [`EventArena`] (slots recycled across push/pop); small payloads
/// stay inline, where the indirection would cost more than it saves.
pub struct BinaryHeapQueue<E> {
    heap: HybridHeap<E>,
    cancelled: FxHashSet<EventId>,
    live: usize,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: HybridHeap::new(),
            cancelled: FxHashSet::default(),
            live: 0,
        }
    }

    fn drop_cancelled_head(&mut self) {
        // Fast path: no outstanding cancellations (the overwhelmingly common case on
        // the engine's hot loop) means no per-pop membership test at all.
        if self.cancelled.is_empty() {
            return;
        }
        while let Some(id) = self.heap.peek_id() {
            if self.cancelled.contains(&id) {
                // audit:allow(unwrap-in-library): guarded by the peek above
                let popped = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&popped.id);
            } else {
                return;
            }
        }
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn push(&mut self, ev: ScheduledEvent<E>) {
        self.live += 1;
        self.heap.push(ev);
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.drop_cancelled_head();
        let ev = self.heap.pop()?;
        self.live -= 1;
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.drop_cancelled_head();
        self.heap.peek_key().map(|(time, _, _)| time)
    }

    fn cancel(&mut self, id: EventId) -> bool {
        // We cannot cheaply test membership in the heap, so record the id and rely on
        // lazy removal; guard `live` by only counting ids not already cancelled.
        if self.cancelled.insert(id) {
            if self.live == 0 {
                // Nothing pending: the id cannot be live, undo.
                self.cancelled.remove(&id);
                return false;
            }
            self.live -= 1;
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn live_ids(&self) -> Vec<EventId> {
        let mut ids = self.heap.ids();
        ids.retain(|id| !self.cancelled.contains(id));
        ids
    }
}

// ---------------------------------------------------------------------------
// Calendar queue implementation
// ---------------------------------------------------------------------------

/// A bucketed calendar queue (Brown, CACM 1988) with lazy cancellation.
///
/// Events are hashed into `num_buckets` buckets of `bucket_width` ticks by their
/// timestamp; dequeue scans forward from the bucket containing the current
/// minimum "year". The structure resizes (doubling/halving bucket count) when the
/// population crosses thresholds, keeping amortized O(1) behaviour for workloads
/// whose inter-event gaps are not pathologically skewed.
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<ScheduledEvent<E>>>,
    bucket_width: u64,
    /// Index of the bucket the next dequeue should start scanning from.
    cursor: usize,
    /// Start time of the "year" the cursor is in.
    year_start: u64,
    len: usize,
    cancelled: FxHashSet<EventId>,
    last_dequeued: SimTime,
}

impl<E> CalendarQueue<E> {
    /// Create a calendar queue with the given bucket width (in ticks) and bucket count.
    ///
    /// `bucket_width` should be on the order of the typical inter-event gap.
    pub fn new(bucket_width: u64, num_buckets: usize) -> Self {
        let num_buckets = num_buckets.max(2);
        CalendarQueue {
            buckets: (0..num_buckets).map(|_| Vec::new()).collect(),
            bucket_width: bucket_width.max(1),
            cursor: 0,
            year_start: 0,
            len: 0,
            cancelled: FxHashSet::default(),
            last_dequeued: SimTime::ZERO,
        }
    }

    fn bucket_index(&self, t: SimTime) -> usize {
        ((t.ticks() / self.bucket_width) as usize) % self.buckets.len()
    }

    fn year_len(&self) -> u64 {
        self.bucket_width * self.buckets.len() as u64
    }

    fn maybe_resize(&mut self) {
        let n = self.buckets.len();
        let target = if self.len > 2 * n {
            n * 2
        } else if self.len < n / 2 && n > 2 {
            n / 2
        } else {
            return;
        };
        let mut all: Vec<ScheduledEvent<E>> = Vec::with_capacity(self.len);
        for b in self.buckets.iter_mut() {
            all.append(b);
        }
        self.buckets = (0..target).map(|_| Vec::new()).collect();
        for ev in all {
            let idx = self.bucket_index(ev.time);
            self.buckets[idx].push(ev);
        }
        // Reposition the cursor at the bucket holding the previous dequeue point.
        self.cursor = self.bucket_index(self.last_dequeued);
        self.year_start = self.last_dequeued.ticks() - self.last_dequeued.ticks() % self.year_len();
    }

    /// Find, remove and return the globally minimal event (direct search).
    /// Used as a fallback when the calendar scan wraps a full year without a hit.
    fn pop_direct(&mut self) -> Option<ScheduledEvent<E>> {
        let mut best: Option<(usize, usize)> = None;
        let mut best_key = (SimTime::MAX, i32::MAX, u64::MAX);
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (ei, ev) in bucket.iter().enumerate() {
                if self.cancelled.contains(&ev.id) {
                    continue;
                }
                let key = ev.key();
                if key < best_key {
                    best_key = key;
                    best = Some((bi, ei));
                }
            }
        }
        let (bi, ei) = best?;
        let ev = self.buckets[bi].swap_remove(ei);
        Some(ev)
    }

    fn purge_cancelled(&mut self) {
        if self.cancelled.is_empty() {
            return;
        }
        let cancelled = std::mem::take(&mut self.cancelled);
        for bucket in self.buckets.iter_mut() {
            bucket.retain(|ev| !cancelled.contains(&ev.id));
        }
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, ev: ScheduledEvent<E>) {
        // Rewind the scan state when an event lands before the last dequeue point.
        // This happens when the engine pops a beyond-horizon event and pushes it
        // back (the pop fast-forwarded cursor/year to that event's window) and the
        // model later schedules earlier events; without the rewind those earlier
        // events would be scanned *after* the far window and dispatch out of order.
        if ev.time < self.last_dequeued {
            self.last_dequeued = ev.time;
            self.cursor = self.bucket_index(ev.time);
            self.year_start = ev.time.ticks() - ev.time.ticks() % self.year_len();
        }
        let idx = self.bucket_index(ev.time);
        self.buckets[idx].push(ev);
        self.len += 1;
        self.maybe_resize();
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.len == 0 {
            return None;
        }
        // Scan at most one full year of buckets starting at the cursor. A bucket visited
        // at wrap `w` and index `bi` covers the slot
        // [year_start + w*year_len + bi*width, year_start + w*year_len + (bi+1)*width);
        // the first event found inside its own slot is the year's minimum. If a full
        // year is scanned without a hit (sparse far-future events), fall back to a
        // direct minimum search.
        let n = self.buckets.len();
        let check_cancelled = !self.cancelled.is_empty();
        for step in 0..n {
            let bi = (self.cursor + step) % n;
            let wrap = ((self.cursor + step) / n) as u64;
            let year = self.year_start + wrap * self.year_len();
            let slot_lo = year + bi as u64 * self.bucket_width;
            let slot_hi = slot_lo + self.bucket_width;
            let mut best: Option<usize> = None;
            let mut best_key = (SimTime::MAX, i32::MAX, u64::MAX);
            for (ei, ev) in self.buckets[bi].iter().enumerate() {
                if check_cancelled && self.cancelled.contains(&ev.id) {
                    continue;
                }
                let t = ev.time.ticks();
                if t >= slot_lo && t < slot_hi && ev.key() < best_key {
                    best_key = ev.key();
                    best = Some(ei);
                }
            }
            if let Some(ei) = best {
                let ev = self.buckets[bi].swap_remove(ei);
                if check_cancelled {
                    self.cancelled.remove(&ev.id);
                }
                self.len -= 1;
                self.cursor = bi;
                self.year_start = ev.time.ticks() - ev.time.ticks() % self.year_len();
                self.last_dequeued = ev.time;
                return Some(ev);
            }
        }
        // Fallback: direct minimum search across all buckets.
        self.purge_cancelled();
        let ev = self.pop_direct()?;
        self.len -= 1;
        self.cursor = self.bucket_index(ev.time);
        self.year_start = ev.time.ticks() - ev.time.ticks() % self.year_len();
        self.last_dequeued = ev.time;
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        // Calendar queues do not support cheap peek; do a direct scan. The engine only
        // calls this for horizon checks, which is infrequent relative to push/pop.
        let mut best: Option<SimTime> = None;
        for bucket in &self.buckets {
            for ev in bucket {
                if self.cancelled.contains(&ev.id) {
                    continue;
                }
                if best.is_none_or(|b| ev.time < b) {
                    best = Some(ev.time);
                }
            }
        }
        best
    }

    fn cancel(&mut self, id: EventId) -> bool {
        if self.len == 0 {
            return false;
        }
        if self.cancelled.insert(id) {
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn live_ids(&self) -> Vec<EventId> {
        self.buckets
            .iter()
            .flatten()
            .map(|ev| ev.id)
            .filter(|id| !self.cancelled.contains(id))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// FIFO-band implementation
// ---------------------------------------------------------------------------

/// A two-band pending event set: a monotone FIFO band plus a binary-heap overflow
/// band, with lazy cancellation.
///
/// Discrete-event models overwhelmingly schedule events in *almost* non-decreasing
/// key order: the scheduling time `now` only moves forward, and the dominant event
/// class often has a constant (or near-constant) delay — a network round trip, a
/// fixed service time. Such pushes arrive in sorted order and need no priority queue
/// at all. This structure exploits that: a push whose key is `>=` the FIFO band's
/// tail is appended in O(1); everything else (short-delay events scheduled "under"
/// the tail) goes to a small binary heap. `pop` compares the two heads.
///
/// In the parcel models, in-flight round trips — thousands of pending events at the
/// Figure 12 scale — ride the FIFO band, leaving the heap with only the handful of
/// short-delay service events, so the `O(log n)` sift cost applies to a tiny `n`.
/// In the worst case (no monotone structure) every push lands in the heap and the
/// queue degrades gracefully to [`BinaryHeapQueue`] behaviour.
///
/// Like the other implementations, dispatch order is the total order
/// `(time, priority, seq)`, so results are bit-identical whichever queue a model
/// runs on.
pub struct FifoBandQueue<E> {
    /// The monotone band keeps whole events by value: `push_back`/`pop_front`
    /// never sift or move existing entries, so there is nothing for an arena
    /// indirection to save there.
    fifo: std::collections::VecDeque<ScheduledEvent<E>>,
    /// The overflow band: a [`HybridHeap`] that parks large payloads in its
    /// arena (slot reuse across push/pop) and keeps small ones inline.
    heap: HybridHeap<E>,
    cancelled: FxHashSet<EventId>,
    live: usize,
}

impl<E> Default for FifoBandQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FifoBandQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        FifoBandQueue {
            fifo: std::collections::VecDeque::new(),
            heap: HybridHeap::new(),
            cancelled: FxHashSet::default(),
            live: 0,
        }
    }

    /// Number of events currently riding the FIFO band (diagnostic; cancelled events
    /// still waiting for lazy removal are included).
    pub fn fifo_band_len(&self) -> usize {
        self.fifo.len()
    }

    fn drop_cancelled_heads(&mut self) {
        if self.cancelled.is_empty() {
            return;
        }
        while let Some(front) = self.fifo.front() {
            if self.cancelled.contains(&front.id) {
                // audit:allow(unwrap-in-library): guarded by the peek in the enclosing while let
                let popped = self.fifo.pop_front().expect("peeked entry must pop");
                self.cancelled.remove(&popped.id);
            } else {
                break;
            }
        }
        while let Some(id) = self.heap.peek_id() {
            if self.cancelled.contains(&id) {
                // audit:allow(unwrap-in-library): guarded by the peek above
                let popped = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&popped.id);
            } else {
                break;
            }
        }
    }

    /// After `drop_cancelled_heads`, true when the FIFO head is the global minimum.
    fn fifo_head_wins(&self) -> Option<bool> {
        match (self.fifo.front(), self.heap.peek_key()) {
            (None, None) => None,
            (Some(_), None) => Some(true),
            (None, Some(_)) => Some(false),
            (Some(f), Some(h)) => Some(f.key() <= h),
        }
    }
}

impl<E> EventQueue<E> for FifoBandQueue<E> {
    fn push(&mut self, ev: ScheduledEvent<E>) {
        self.live += 1;
        let appendable = self.fifo.back().is_none_or(|back| back.key() <= ev.key());
        if appendable {
            self.fifo.push_back(ev);
        } else {
            self.heap.push(ev);
        }
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.drop_cancelled_heads();
        let ev = if self.fifo_head_wins()? {
            // audit:allow(unwrap-in-library): fifo_head_wins verified this head exists
            self.fifo.pop_front().expect("head checked")
        } else {
            // audit:allow(unwrap-in-library): fifo_head_wins verified this head exists
            self.heap.pop().expect("head checked")
        };
        self.live -= 1;
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.drop_cancelled_heads();
        let wins = self.fifo_head_wins()?;
        if wins {
            self.fifo.front().map(|e| e.time)
        } else {
            self.heap.peek_key().map(|(time, _, _)| time)
        }
    }

    fn cancel(&mut self, id: EventId) -> bool {
        if self.cancelled.insert(id) {
            if self.live == 0 {
                self.cancelled.remove(&id);
                return false;
            }
            self.live -= 1;
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn live_ids(&self) -> Vec<EventId> {
        self.fifo
            .iter()
            .map(|ev| ev.id)
            .chain(self.heap.ids())
            .filter(|id| !self.cancelled.contains(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u64) -> ScheduledEvent<u32> {
        ScheduledEvent {
            time: SimTime::from_ticks(time),
            priority: 0,
            seq,
            id: EventId(seq),
            payload: seq as u32,
        }
    }

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.time.ticks());
        }
        out
    }

    #[test]
    fn heap_orders_by_time() {
        let mut q = BinaryHeapQueue::new();
        for (i, t) in [50u64, 10, 30, 20, 40].iter().enumerate() {
            q.push(ev(*t, i as u64));
        }
        assert_eq!(drain(&mut q), vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn heap_fifo_tie_break() {
        let mut q = BinaryHeapQueue::new();
        q.push(ev(10, 0));
        q.push(ev(10, 1));
        q.push(ev(10, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn heap_priority_before_seq() {
        let mut q = BinaryHeapQueue::new();
        let mut high = ev(10, 0);
        high.priority = 5;
        let mut low = ev(10, 1);
        low.priority = -1;
        q.push(high);
        q.push(low);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 0);
    }

    #[test]
    fn heap_cancellation() {
        let mut q = BinaryHeapQueue::new();
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        q.push(ev(30, 2));
        assert!(q.cancel(EventId(1)));
        assert!(!q.cancel(EventId(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(drain(&mut q), vec![10, 30]);
    }

    #[test]
    fn heap_cancel_unknown_id_on_empty() {
        let mut q: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        assert!(!q.cancel(EventId(77)));
        assert!(q.is_empty());
    }

    #[test]
    fn heap_peek_skips_cancelled() {
        let mut q = BinaryHeapQueue::new();
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        q.cancel(EventId(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(20)));
    }

    #[test]
    fn calendar_orders_by_time() {
        let mut q = CalendarQueue::new(8, 4);
        for (i, t) in [50u64, 10, 30, 20, 40, 15, 200, 3].iter().enumerate() {
            q.push(ev(*t, i as u64));
        }
        assert_eq!(drain(&mut q), vec![3, 10, 15, 20, 30, 40, 50, 200]);
    }

    #[test]
    fn calendar_handles_clustered_and_sparse_times() {
        let mut q = CalendarQueue::new(2, 4);
        let times: Vec<u64> = (0..64)
            .map(|i| if i % 7 == 0 { i * 1000 } else { i })
            .collect();
        for (i, t) in times.iter().enumerate() {
            q.push(ev(*t, i as u64));
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(drain(&mut q), sorted);
    }

    #[test]
    fn calendar_cancellation() {
        let mut q = CalendarQueue::new(4, 4);
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        q.push(ev(30, 2));
        assert!(q.cancel(EventId(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(drain(&mut q), vec![10, 30]);
    }

    #[test]
    fn calendar_fifo_tie_break() {
        let mut q = CalendarQueue::new(4, 4);
        q.push(ev(10, 0));
        q.push(ev(10, 1));
        q.push(ev(10, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn calendar_resizes_under_load() {
        let mut q = CalendarQueue::new(1, 2);
        let n = 500u64;
        for i in 0..n {
            q.push(ev((i * 37) % 1000, i));
        }
        assert_eq!(q.len(), n as usize);
        let out = drain(&mut q);
        assert_eq!(out.len(), n as usize);
        assert!(
            out.windows(2).all(|w| w[0] <= w[1]),
            "must drain in time order"
        );
    }

    #[test]
    fn both_queues_agree_on_random_workload() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new(16, 8);
        for seq in 0..2000u64 {
            let t = rng.gen_range(0..100_000u64);
            heap.push(ev(t, seq));
            cal.push(ev(t, seq));
        }
        let a = drain(&mut heap);
        let b = drain(&mut cal);
        assert_eq!(a, b);
    }

    #[test]
    fn fifo_band_orders_by_time() {
        let mut q = FifoBandQueue::new();
        for (i, t) in [50u64, 10, 30, 20, 40].iter().enumerate() {
            q.push(ev(*t, i as u64));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(drain(&mut q), vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn fifo_band_fifo_tie_break_across_bands() {
        let mut q = FifoBandQueue::new();
        q.push(ev(20, 0)); // fifo
        q.push(ev(10, 1)); // under the tail -> heap
        q.push(ev(20, 2)); // fifo (same key components except seq)
        q.push(ev(10, 3)); // heap, ties with seq 1 on time
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.ticks(), e.seq))
            .collect();
        assert_eq!(order, vec![(10, 1), (10, 3), (20, 0), (20, 2)]);
    }

    #[test]
    fn fifo_band_priority_before_seq() {
        let mut q = FifoBandQueue::new();
        let mut high = ev(10, 0);
        high.priority = 5;
        let mut low = ev(10, 1);
        low.priority = -1;
        q.push(high);
        q.push(low);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 0);
    }

    #[test]
    fn fifo_band_cancellation_in_both_bands() {
        let mut q = FifoBandQueue::new();
        q.push(ev(100, 0)); // fifo
        q.push(ev(10, 1)); // heap
        q.push(ev(200, 2)); // fifo
        q.push(ev(20, 3)); // heap
        assert!(q.cancel(EventId(0)));
        assert!(q.cancel(EventId(3)));
        assert!(!q.cancel(EventId(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(drain(&mut q), vec![10, 200]);
        assert!(!q.cancel(EventId(77)), "cancel on empty queue");
    }

    #[test]
    fn fifo_band_peek_skips_cancelled() {
        let mut q = FifoBandQueue::new();
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        q.cancel(EventId(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(20)));
    }

    #[test]
    fn monotone_constant_delay_pushes_ride_the_fifo_band() {
        // The parcel-model shape: at each dispatch, schedule one short event (under
        // the tail -> heap) and one constant-latency event (appends to the fifo).
        let mut q = FifoBandQueue::new();
        let mut seq = 0u64;
        for now in (0..1000u64).step_by(10) {
            q.push(ev(now + 2_000, seq)); // round trip
            q.push(ev(now + 3, seq + 1)); // service completion
            seq += 2;
        }
        assert!(
            q.fifo_band_len() >= 100,
            "constant-delay events should append (fifo {})",
            q.fifo_band_len()
        );
        let out = drain(&mut q);
        assert_eq!(out.len(), 200);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    fn fat_ev(time: u64, seq: u64) -> ScheduledEvent<[u64; 4]> {
        // 32 bytes: above the inline threshold, so heap-backed queues park the
        // payload in the arena and sift compact `SlotEntry` keys instead.
        ScheduledEvent {
            time: SimTime::from_ticks(time),
            priority: 0,
            seq,
            id: EventId(seq),
            payload: [seq, seq + 1, seq + 2, seq + 3],
        }
    }

    #[test]
    fn arena_slots_are_reused_across_push_pop() {
        // Steady-state churn must recycle payload slots: the arena's backing
        // storage stays at the in-flight high-water mark (1 here), not the
        // total event count.
        let mut q = BinaryHeapQueue::new();
        for round in 0..1000u64 {
            q.push(fat_ev(round, round));
            assert_eq!(q.pop().map(|e| e.payload[0]), Some(round));
        }
        assert_eq!(q.heap.arena.slots.len(), 1);

        let mut band = FifoBandQueue::new();
        band.push(fat_ev(1000, 0));
        for round in 0..1000u64 {
            // Every push lands under the tail -> heap band -> arena.
            band.push(fat_ev(round, round + 1));
            assert_eq!(band.pop().map(|e| e.time.ticks()), Some(round));
        }
        assert_eq!(band.heap.arena.slots.len(), 1);
    }

    #[test]
    fn small_payloads_bypass_the_arena() {
        // u32 payloads are at or under the inline threshold: the hybrid heap
        // must keep them by value and never touch the arena.
        assert!(!arena_backed::<u32>());
        assert!(arena_backed::<[u64; 4]>());

        let mut q = BinaryHeapQueue::new();
        for round in 0..100u64 {
            q.push(ev(round, round));
        }
        assert!(q.heap.arena.slots.is_empty());
        assert_eq!(drain(&mut q).len(), 100);

        let mut band = FifoBandQueue::new();
        band.push(ev(1000, 0));
        for round in 0..100u64 {
            band.push(ev(round, round + 1)); // under the tail -> heap band
        }
        assert!(band.heap.arena.slots.is_empty());
        assert_eq!(drain(&mut band).len(), 101);
    }

    #[test]
    fn live_ids_reports_non_cancelled_ids() {
        let mut q = FifoBandQueue::new();
        q.push(ev(100, 0)); // fifo band
        q.push(ev(10, 1)); // under the tail -> heap band
        q.push(ev(200, 2)); // fifo band
        q.cancel(EventId(2));
        let mut ids = q.live_ids();
        ids.sort();
        assert_eq!(ids, vec![EventId(0), EventId(1)]);

        let mut h = BinaryHeapQueue::new();
        h.push(ev(10, 0));
        h.push(ev(20, 1));
        h.cancel(EventId(0));
        assert_eq!(h.live_ids(), vec![EventId(1)]);

        let mut c = CalendarQueue::new(4, 4);
        c.push(ev(10, 0));
        c.push(ev(20, 1));
        c.cancel(EventId(1));
        assert_eq!(c.live_ids(), vec![EventId(0)]);
    }

    #[test]
    fn fifo_band_agrees_with_heap_on_random_workload() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut heap = BinaryHeapQueue::new();
        let mut band = FifoBandQueue::new();
        for seq in 0..2000u64 {
            let t = rng.gen_range(0..100_000u64);
            heap.push(ev(t, seq));
            band.push(ev(t, seq));
        }
        let a = drain(&mut heap);
        let b = drain(&mut band);
        assert_eq!(a, b);
    }
}

//! Event records and pending-event-set implementations.
//!
//! The engine keeps a *pending event set*: a priority queue ordered by
//! `(time, priority, sequence)`. Two interchangeable implementations are provided:
//!
//! * [`BinaryHeapQueue`] — a classic binary-heap future event list; the default.
//! * [`CalendarQueue`] — a bucketed calendar queue in the style of Brown (1988),
//!   which gives near-O(1) enqueue/dequeue when event times are roughly uniform
//!   over a known horizon. The benchmark crate compares the two (ablation E-X in
//!   DESIGN.md).
//!
//! Ties on time are broken first by an explicit scheduling priority (lower value is
//! served first) and then by insertion order, so models get deterministic FIFO
//! semantics for simultaneous events — the same guarantee SES/Workbench provides.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier handed back by `schedule`, usable to cancel a pending event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

/// A scheduled occurrence of a model event `E`.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Secondary ordering key for simultaneous events; lower fires first.
    pub priority: i32,
    /// Unique, monotonically increasing sequence number (insertion order).
    pub seq: u64,
    /// Identifier for cancellation.
    pub id: EventId,
    /// The model-defined payload.
    pub payload: E,
}

impl<E> ScheduledEvent<E> {
    fn key(&self) -> (SimTime, i32, u64) {
        (self.time, self.priority, self.seq)
    }
}

/// Abstraction over pending-event-set implementations.
pub trait EventQueue<E> {
    /// Insert a scheduled event.
    fn push(&mut self, ev: ScheduledEvent<E>);
    /// Remove and return the event with the smallest `(time, priority, seq)` key,
    /// skipping cancelled events.
    fn pop(&mut self) -> Option<ScheduledEvent<E>>;
    /// Peek at the time of the next (non-cancelled) event without removing it.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// Mark an event as cancelled. Returns `true` if the id was pending.
    fn cancel(&mut self, id: EventId) -> bool;
    /// Number of pending (non-cancelled) events.
    fn len(&self) -> usize;
    /// True when no pending events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Binary heap implementation
// ---------------------------------------------------------------------------

struct HeapEntry<E>(ScheduledEvent<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) yields the smallest key first.
        other.0.key().cmp(&self.0.key())
    }
}

/// Binary-heap future event list with lazy cancellation.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    cancelled: std::collections::HashSet<EventId>,
    live: usize,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            live: 0,
        }
    }

    fn drop_cancelled_head(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.0.id) {
                let popped = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&popped.0.id);
            } else {
                return;
            }
        }
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn push(&mut self, ev: ScheduledEvent<E>) {
        self.live += 1;
        self.heap.push(HeapEntry(ev));
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.drop_cancelled_head();
        let ev = self.heap.pop().map(|e| e.0)?;
        self.live -= 1;
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.drop_cancelled_head();
        self.heap.peek().map(|e| e.0.time)
    }

    fn cancel(&mut self, id: EventId) -> bool {
        // We cannot cheaply test membership in the heap, so record the id and rely on
        // lazy removal; guard `live` by only counting ids not already cancelled.
        if self.cancelled.insert(id) {
            if self.live == 0 {
                // Nothing pending: the id cannot be live, undo.
                self.cancelled.remove(&id);
                return false;
            }
            self.live -= 1;
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.live
    }
}

// ---------------------------------------------------------------------------
// Calendar queue implementation
// ---------------------------------------------------------------------------

/// A bucketed calendar queue (Brown, CACM 1988) with lazy cancellation.
///
/// Events are hashed into `num_buckets` buckets of `bucket_width` ticks by their
/// timestamp; dequeue scans forward from the bucket containing the current
/// minimum "year". The structure resizes (doubling/halving bucket count) when the
/// population crosses thresholds, keeping amortized O(1) behaviour for workloads
/// whose inter-event gaps are not pathologically skewed.
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<ScheduledEvent<E>>>,
    bucket_width: u64,
    /// Index of the bucket the next dequeue should start scanning from.
    cursor: usize,
    /// Start time of the "year" the cursor is in.
    year_start: u64,
    len: usize,
    cancelled: std::collections::HashSet<EventId>,
    last_dequeued: SimTime,
}

impl<E> CalendarQueue<E> {
    /// Create a calendar queue with the given bucket width (in ticks) and bucket count.
    ///
    /// `bucket_width` should be on the order of the typical inter-event gap.
    pub fn new(bucket_width: u64, num_buckets: usize) -> Self {
        let num_buckets = num_buckets.max(2);
        CalendarQueue {
            buckets: (0..num_buckets).map(|_| Vec::new()).collect(),
            bucket_width: bucket_width.max(1),
            cursor: 0,
            year_start: 0,
            len: 0,
            cancelled: std::collections::HashSet::new(),
            last_dequeued: SimTime::ZERO,
        }
    }

    fn bucket_index(&self, t: SimTime) -> usize {
        ((t.ticks() / self.bucket_width) as usize) % self.buckets.len()
    }

    fn year_len(&self) -> u64 {
        self.bucket_width * self.buckets.len() as u64
    }

    fn maybe_resize(&mut self) {
        let n = self.buckets.len();
        let target = if self.len > 2 * n {
            n * 2
        } else if self.len < n / 2 && n > 2 {
            n / 2
        } else {
            return;
        };
        let mut all: Vec<ScheduledEvent<E>> = Vec::with_capacity(self.len);
        for b in self.buckets.iter_mut() {
            all.append(b);
        }
        self.buckets = (0..target).map(|_| Vec::new()).collect();
        for ev in all {
            let idx = self.bucket_index(ev.time);
            self.buckets[idx].push(ev);
        }
        // Reposition the cursor at the bucket holding the previous dequeue point.
        self.cursor = self.bucket_index(self.last_dequeued);
        self.year_start = self.last_dequeued.ticks() - self.last_dequeued.ticks() % self.year_len();
    }

    /// Find, remove and return the globally minimal event (direct search).
    /// Used as a fallback when the calendar scan wraps a full year without a hit.
    fn pop_direct(&mut self) -> Option<ScheduledEvent<E>> {
        let mut best: Option<(usize, usize)> = None;
        let mut best_key = (SimTime::MAX, i32::MAX, u64::MAX);
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (ei, ev) in bucket.iter().enumerate() {
                if self.cancelled.contains(&ev.id) {
                    continue;
                }
                let key = ev.key();
                if key < best_key {
                    best_key = key;
                    best = Some((bi, ei));
                }
            }
        }
        let (bi, ei) = best?;
        let ev = self.buckets[bi].swap_remove(ei);
        Some(ev)
    }

    fn purge_cancelled(&mut self) {
        if self.cancelled.is_empty() {
            return;
        }
        let cancelled = std::mem::take(&mut self.cancelled);
        for bucket in self.buckets.iter_mut() {
            bucket.retain(|ev| !cancelled.contains(&ev.id));
        }
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, ev: ScheduledEvent<E>) {
        let idx = self.bucket_index(ev.time);
        self.buckets[idx].push(ev);
        self.len += 1;
        self.maybe_resize();
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.len == 0 {
            return None;
        }
        // Scan at most one full year of buckets starting at the cursor. A bucket visited
        // at wrap `w` and index `bi` covers the slot
        // [year_start + w*year_len + bi*width, year_start + w*year_len + (bi+1)*width);
        // the first event found inside its own slot is the year's minimum. If a full
        // year is scanned without a hit (sparse far-future events), fall back to a
        // direct minimum search.
        let n = self.buckets.len();
        for step in 0..n {
            let bi = (self.cursor + step) % n;
            let wrap = ((self.cursor + step) / n) as u64;
            let year = self.year_start + wrap * self.year_len();
            let slot_lo = year + bi as u64 * self.bucket_width;
            let slot_hi = slot_lo + self.bucket_width;
            let mut best: Option<usize> = None;
            let mut best_key = (SimTime::MAX, i32::MAX, u64::MAX);
            for (ei, ev) in self.buckets[bi].iter().enumerate() {
                if self.cancelled.contains(&ev.id) {
                    continue;
                }
                let t = ev.time.ticks();
                if t >= slot_lo && t < slot_hi && ev.key() < best_key {
                    best_key = ev.key();
                    best = Some(ei);
                }
            }
            if let Some(ei) = best {
                let ev = self.buckets[bi].swap_remove(ei);
                self.cancelled.remove(&ev.id);
                self.len -= 1;
                self.cursor = bi;
                self.year_start = ev.time.ticks() - ev.time.ticks() % self.year_len();
                self.last_dequeued = ev.time;
                return Some(ev);
            }
        }
        // Fallback: direct minimum search across all buckets.
        self.purge_cancelled();
        let ev = self.pop_direct()?;
        self.len -= 1;
        self.cursor = self.bucket_index(ev.time);
        self.year_start = ev.time.ticks() - ev.time.ticks() % self.year_len();
        self.last_dequeued = ev.time;
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        // Calendar queues do not support cheap peek; do a direct scan. The engine only
        // calls this for horizon checks, which is infrequent relative to push/pop.
        let mut best: Option<SimTime> = None;
        for bucket in &self.buckets {
            for ev in bucket {
                if self.cancelled.contains(&ev.id) {
                    continue;
                }
                if best.is_none_or(|b| ev.time < b) {
                    best = Some(ev.time);
                }
            }
        }
        best
    }

    fn cancel(&mut self, id: EventId) -> bool {
        if self.len == 0 {
            return false;
        }
        if self.cancelled.insert(id) {
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u64) -> ScheduledEvent<u32> {
        ScheduledEvent {
            time: SimTime::from_ticks(time),
            priority: 0,
            seq,
            id: EventId(seq),
            payload: seq as u32,
        }
    }

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.time.ticks());
        }
        out
    }

    #[test]
    fn heap_orders_by_time() {
        let mut q = BinaryHeapQueue::new();
        for (i, t) in [50u64, 10, 30, 20, 40].iter().enumerate() {
            q.push(ev(*t, i as u64));
        }
        assert_eq!(drain(&mut q), vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn heap_fifo_tie_break() {
        let mut q = BinaryHeapQueue::new();
        q.push(ev(10, 0));
        q.push(ev(10, 1));
        q.push(ev(10, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn heap_priority_before_seq() {
        let mut q = BinaryHeapQueue::new();
        let mut high = ev(10, 0);
        high.priority = 5;
        let mut low = ev(10, 1);
        low.priority = -1;
        q.push(high);
        q.push(low);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 0);
    }

    #[test]
    fn heap_cancellation() {
        let mut q = BinaryHeapQueue::new();
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        q.push(ev(30, 2));
        assert!(q.cancel(EventId(1)));
        assert!(!q.cancel(EventId(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(drain(&mut q), vec![10, 30]);
    }

    #[test]
    fn heap_cancel_unknown_id_on_empty() {
        let mut q: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        assert!(!q.cancel(EventId(77)));
        assert!(q.is_empty());
    }

    #[test]
    fn heap_peek_skips_cancelled() {
        let mut q = BinaryHeapQueue::new();
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        q.cancel(EventId(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(20)));
    }

    #[test]
    fn calendar_orders_by_time() {
        let mut q = CalendarQueue::new(8, 4);
        for (i, t) in [50u64, 10, 30, 20, 40, 15, 200, 3].iter().enumerate() {
            q.push(ev(*t, i as u64));
        }
        assert_eq!(drain(&mut q), vec![3, 10, 15, 20, 30, 40, 50, 200]);
    }

    #[test]
    fn calendar_handles_clustered_and_sparse_times() {
        let mut q = CalendarQueue::new(2, 4);
        let times: Vec<u64> = (0..64)
            .map(|i| if i % 7 == 0 { i * 1000 } else { i })
            .collect();
        for (i, t) in times.iter().enumerate() {
            q.push(ev(*t, i as u64));
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(drain(&mut q), sorted);
    }

    #[test]
    fn calendar_cancellation() {
        let mut q = CalendarQueue::new(4, 4);
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        q.push(ev(30, 2));
        assert!(q.cancel(EventId(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(drain(&mut q), vec![10, 30]);
    }

    #[test]
    fn calendar_fifo_tie_break() {
        let mut q = CalendarQueue::new(4, 4);
        q.push(ev(10, 0));
        q.push(ev(10, 1));
        q.push(ev(10, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn calendar_resizes_under_load() {
        let mut q = CalendarQueue::new(1, 2);
        let n = 500u64;
        for i in 0..n {
            q.push(ev((i * 37) % 1000, i));
        }
        assert_eq!(q.len(), n as usize);
        let out = drain(&mut q);
        assert_eq!(out.len(), n as usize);
        assert!(
            out.windows(2).all(|w| w[0] <= w[1]),
            "must drain in time order"
        );
    }

    #[test]
    fn both_queues_agree_on_random_workload() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new(16, 8);
        for seq in 0..2000u64 {
            let t = rng.gen_range(0..100_000u64);
            heap.push(ev(t, seq));
            cal.push(ev(t, seq));
        }
        let a = drain(&mut heap);
        let b = drain(&mut cal);
        assert_eq!(a, b);
    }
}

//! Lightweight event tracing.
//!
//! A [`Tracer`] records `(time, category, message)` entries into a bounded ring buffer.
//! Models use it for debugging and for the animation-style "what happened when" dumps
//! that SES/Workbench provided; benchmark binaries leave it disabled so tracing never
//! perturbs measured results.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Verbosity levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Tracing disabled.
    Off,
    /// Major model transitions only.
    Coarse,
    /// Every event.
    Fine,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the record.
    pub time: SimTime,
    /// Category label, e.g. "hwp", "lwp", "parcel".
    pub category: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// Bounded in-memory trace sink.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl Tracer {
    /// Create a tracer retaining at most `capacity` records.
    pub fn new(level: TraceLevel, capacity: usize) -> Self {
        Tracer {
            level,
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A disabled tracer (records nothing, negligible overhead).
    pub fn disabled() -> Self {
        Tracer::new(TraceLevel::Off, 1)
    }

    /// Current level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Change the level.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// True if records at `level` would be retained.
    #[inline]
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level != TraceLevel::Off && level <= self.level
    }

    /// Record a coarse-level message.
    pub fn coarse(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        self.record(TraceLevel::Coarse, time, category, message);
    }

    /// Record a fine-level message.
    pub fn fine(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        self.record(TraceLevel::Fine, time, category, message);
    }

    fn record(
        &mut self,
        level: TraceLevel,
        time: SimTime,
        category: &'static str,
        message: impl Into<String>,
    ) {
        if !self.enabled(level) {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            category,
            message: message.into(),
        });
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained records as one line per record.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!("[{}] {}: {}\n", r.time, r.category, r.message));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.coarse(SimTime::ZERO, "x", "hello");
        t.fine(SimTime::ZERO, "x", "world");
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn coarse_level_drops_fine_records() {
        let mut t = Tracer::new(TraceLevel::Coarse, 16);
        t.coarse(SimTime::from_ns(1), "a", "kept");
        t.fine(SimTime::from_ns(2), "a", "dropped");
        assert_eq!(t.records().count(), 1);
        assert!(t.enabled(TraceLevel::Coarse));
        assert!(!t.enabled(TraceLevel::Fine));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Tracer::new(TraceLevel::Fine, 3);
        for i in 0..5u64 {
            t.fine(SimTime::from_ns(i), "a", format!("m{i}"));
        }
        assert_eq!(t.records().count(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.records().next().unwrap();
        assert_eq!(first.message, "m2");
    }

    #[test]
    fn dump_contains_messages_in_order() {
        let mut t = Tracer::new(TraceLevel::Fine, 8);
        t.fine(SimTime::from_ns(1), "hwp", "start");
        t.fine(SimTime::from_ns(2), "lwp", "stop");
        let d = t.dump();
        let start = d.find("start").unwrap();
        let stop = d.find("stop").unwrap();
        assert!(start < stop);
    }
}

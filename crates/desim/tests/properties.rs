//! Property-based tests of the simulation engine's core data structures.

use desim::event::{BinaryHeapQueue, CalendarQueue, EventId, EventQueue, ScheduledEvent};
use desim::prelude::*;
use proptest::prelude::*;

fn drain<Q: EventQueue<u64>>(q: &mut Q) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    while let Some(e) = q.pop() {
        out.push((e.time.ticks(), e.seq));
    }
    out
}

fn events(times: &[u64]) -> Vec<ScheduledEvent<u64>> {
    times
        .iter()
        .enumerate()
        .map(|(i, &t)| ScheduledEvent {
            time: SimTime::from_ticks(t),
            priority: 0,
            seq: i as u64,
            id: EventId(i as u64),
            payload: i as u64,
        })
        .collect()
}

proptest! {
    // Pin the case count and RNG seed so every run (local or CI) generates exactly
    // the same inputs: a failure here always reproduces. The vendored proptest is
    // seed-deterministic by default; this makes the choice explicit and survives a
    // future swap to real proptest's `ProptestConfig` env-based seeding.
    #![proptest_config(ProptestConfig::with_cases(64).with_rng_seed(0xDE51_0001))]

    /// Both pending-event-set implementations dequeue in exactly the same total order
    /// (time, then insertion order) for any input.
    #[test]
    fn event_queues_agree(times in proptest::collection::vec(0u64..10_000, 1..300)) {
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new(16, 8);
        for ev in events(&times) {
            heap.push(ev.clone());
            cal.push(ev);
        }
        let a = drain(&mut heap);
        let b = drain(&mut cal);
        prop_assert_eq!(&a, &b);
        // And the order is sorted by (time, seq).
        let mut sorted = a.clone();
        sorted.sort();
        prop_assert_eq!(a, sorted);
    }

    /// Cancelling an arbitrary subset removes exactly those events and no others.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let evs = events(&times);
        let mut q = BinaryHeapQueue::new();
        for ev in evs.iter().cloned() {
            q.push(ev);
        }
        let mut expected: Vec<u64> = Vec::new();
        for (i, ev) in evs.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                q.cancel(ev.id);
            } else {
                expected.push(ev.seq);
            }
        }
        let mut drained: Vec<u64> = drain(&mut q).into_iter().map(|(_, s)| s).collect();
        drained.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(drained, expected);
    }

    /// Tally::merge gives the same moments as recording everything into one tally.
    #[test]
    fn tally_merge_is_associative(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * whole.variance().abs().max(1.0));
    }

    /// The time-weighted average always lies between the minimum and maximum recorded values.
    #[test]
    fn time_weighted_average_is_bounded(
        steps in proptest::collection::vec((1u64..1_000, -100.0f64..100.0), 1..100),
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        for &(dt, v) in &steps {
            t += dt;
            tw.set(SimTime::from_ticks(t), v);
        }
        let end = SimTime::from_ticks(t + 10);
        let avg = tw.time_average(end);
        prop_assert!(avg >= tw.min() - 1e-9 && avg <= tw.max() + 1e-9);
    }

    /// The engine dispatches every scheduled event exactly once and in time order,
    /// regardless of insertion order.
    #[test]
    fn engine_dispatches_all_events_in_order(times in proptest::collection::vec(0u64..100_000, 1..200)) {
        struct Collect {
            seen: Vec<u64>,
        }
        impl Model for Collect {
            type Event = u64;
            fn handle(&mut self, now: SimTime, _ev: u64, _s: &mut Scheduler<u64>) {
                self.seen.push(now.ticks());
            }
        }
        let mut sim = Simulation::new(Collect { seen: vec![] });
        for (i, &t) in times.iter().enumerate() {
            sim.scheduler().schedule_at(SimTime::from_ticks(t), i as u64);
        }
        let report = sim.run();
        prop_assert_eq!(report.events_processed as usize, times.len());
        let seen = &sim.model().seen;
        prop_assert!(seen.windows(2).all(|w| w[0] <= w[1]));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seen.clone(), sorted);
    }

    /// Quantiles are monotone in q — including histograms whose mass is heavily
    /// (or entirely) in the underflow/overflow buckets.
    #[test]
    fn histogram_quantiles_are_monotone(
        xs in proptest::collection::vec(-30.0f64..30.0, 1..200),
        qs in proptest::collection::vec(0.0f64..1.0, 2..20),
    ) {
        // Range [0, 10) over draws from [-30, 30): roughly 5/6 of the mass
        // lands outside the binned range.
        let mut h = Histogram::new(0.0, 10.0, 8);
        for &x in &xs {
            h.record(x);
        }
        let mut qs = qs;
        qs.push(0.0);
        qs.push(1.0);
        qs.sort_by(|a, b| a.total_cmp(b));
        let values: Vec<f64> = qs
            .iter()
            .map(|&q| h.quantile(q).expect("non-empty histogram"))
            .collect();
        prop_assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "quantiles not monotone: qs {:?} -> {:?}", qs, values
        );
        // q = 0 must never report below the smallest occupied bucket, q = 1
        // never above the largest.
        prop_assert!(values.iter().all(|v| (0.0..=10.0).contains(v)));
    }

    /// The bulk uniform path consumes exactly the sequential stream's values.
    #[test]
    fn fill_uniform01_matches_sequential_draws(
        seed in any::<u64>(),
        lens in proptest::collection::vec(0usize..100, 1..10),
        warmup in 0usize..40,
    ) {
        let mut bulk = RandomStream::new(seed, 7);
        let mut seq = RandomStream::new(seed, 7);
        for _ in 0..warmup {
            prop_assert_eq!(bulk.uniform01().to_bits(), seq.uniform01().to_bits());
        }
        for len in lens {
            let mut out = vec![0.0; len];
            bulk.fill_uniform01(&mut out);
            for x in out {
                prop_assert_eq!(x.to_bits(), seq.uniform01().to_bits());
            }
            prop_assert_eq!(bulk.draws(), seq.draws());
        }
    }

    /// Exponential samples are non-negative and their mean converges to the parameter.
    #[test]
    fn exponential_samples_have_the_right_mean(seed in any::<u64>(), mean in 0.5f64..100.0) {
        let mut s = RandomStream::new(seed, 1);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            let x = s.exponential(mean);
            prop_assert!(x >= 0.0);
            total += x;
        }
        let sample_mean = total / n as f64;
        prop_assert!((sample_mean - mean).abs() / mean < 0.1,
            "sample mean {} vs {}", sample_mean, mean);
    }
}

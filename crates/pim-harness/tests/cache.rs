//! Incremental-execution suite: the unit-result cache must be *invisible* in the
//! artifacts and *visible* in the manifest and the wall clock.
//!
//! The core contract extends PR 3's determinism guarantee: a warm batch — every unit
//! served from the content-addressed cache — produces byte-identical artifact files
//! at any `--jobs` value, reports its hits in the schema-v2 manifest, and collapses
//! to assembly plus I/O (asserted here as ≥5× over the cold run; release builds
//! measure two to three orders of magnitude).

use pim_harness::prelude::*;
use serde::Value;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pim-cache-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read_manifest(dir: &Path) -> Value {
    let text = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest exists");
    serde_json::value_from_str(&text).expect("manifest parses")
}

/// Sum one counter across the manifest's per-scenario cache block.
fn manifest_total(manifest: &Value, field: &str) -> u64 {
    let Some(Value::Seq(per)) = manifest.get("cache").and_then(|c| c.get("per_scenario")) else {
        panic!("manifest has no cache.per_scenario block");
    };
    per.iter()
        .map(|entry| entry.get(field).and_then(|v| v.as_f64()).expect(field) as u64)
        .sum()
}

/// The acceptance contract of the incremental tentpole, on the full catalog
/// (every builtin plus every shipped preset spec):
///
/// 1. a cold `--all --jobs 8 --cache DIR` populates the cache (manifest v2 reports
///    all-miss, zero hits);
/// 2. warm runs at `--jobs 1` *and* `--jobs 8` serve every unit from the cache
///    (manifest reports all-hit, zero computed) — claim order and worker count do
///    not reach the cache key;
/// 3. every artifact file is byte-identical across the cold and both warm runs;
/// 4. the warm run is ≥5× faster than the cold run.
#[test]
fn warm_runs_are_byte_identical_fully_hit_and_at_least_5x_faster() {
    let specs_dir =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let mut registry = Registry::builtin();
    register_specs(&mut registry, load_specs(&specs_dir).expect("presets load"))
        .expect("presets register");
    let names = registry.names();
    assert!(names.len() >= 20, "catalog shrank to {}", names.len());

    let base = temp_base("warm");
    let cache_dir = base.join("cache");
    let run = |jobs: usize, sub: &str| {
        let out = base.join(sub);
        let start = Instant::now();
        let outcome = run_batch(
            &registry,
            &names,
            &BatchOptions {
                jobs,
                out_dir: Some(out.clone()),
                cache_dir: Some(cache_dir.clone()),
                ..Default::default()
            },
        )
        .expect("cached batch runs");
        assert!(outcome.cache_enabled);
        (out, start.elapsed().as_secs_f64())
    };

    let (cold, cold_secs) = run(8, "cold");
    let (warm1, _) = run(1, "warm1");
    let (warm8, warm_secs) = run(8, "warm8");

    // (1) Cold: all units computed, none served.
    let cold_manifest = read_manifest(&cold);
    assert_eq!(manifest_total(&cold_manifest, "hits"), 0);
    assert_eq!(manifest_total(&cold_manifest, "recomputed"), 0);
    let units = manifest_total(&cold_manifest, "misses");
    assert!(
        units > 500,
        "expected the full catalog's units, got {units}"
    );

    // (2) Warm at both job counts: every unit served, none computed.
    for dir in [&warm1, &warm8] {
        let manifest = read_manifest(dir);
        assert_eq!(manifest_total(&manifest, "hits"), units);
        assert_eq!(manifest_total(&manifest, "misses"), 0);
        assert_eq!(manifest_total(&manifest, "recomputed"), 0);
    }
    // Identical cache state and jobs-independent accounting: the two warm
    // manifests are byte-identical, counts included.
    assert_eq!(
        std::fs::read(warm1.join("manifest.json")).unwrap(),
        std::fs::read(warm8.join("manifest.json")).unwrap(),
        "warm manifests differ between --jobs 1 and --jobs 8"
    );

    // (3) Every artifact byte-identical across cold and warm runs.
    for name in &names {
        let file = format!("{name}.json");
        let a = std::fs::read(cold.join(&file)).expect("cold artifact exists");
        assert!(!a.is_empty());
        for warm in [&warm1, &warm8] {
            let b = std::fs::read(warm.join(&file)).expect("warm artifact exists");
            assert_eq!(a, b, "artifact '{file}' differs between cold and warm runs");
        }
    }

    // (4) A warm batch is assembly + I/O. 5× is the acceptance floor; the release
    // binary measures 100×+, so this cannot flake on a loaded CI box.
    assert!(
        cold_secs >= 5.0 * warm_secs,
        "warm run not ≥5x faster: cold {cold_secs:.3}s vs warm {warm_secs:.3}s"
    );

    let _ = std::fs::remove_dir_all(&base);
}

/// Corrupt cache entries — truncated, bit-flipped, or replaced with garbage — must
/// be detected by the checksum/shape verification, evicted, and recomputed. The
/// artifacts stay byte-identical to the cold run and the manifest reports the
/// recomputations; a third run hits everything again (the evicted entries were
/// re-stored).
#[test]
fn corrupt_entries_are_detected_evicted_and_recomputed() {
    let registry = Registry::builtin();
    let names = ["table1", "figure7", "ablation_nb", "bandwidth_claims"];
    let base = temp_base("corrupt");
    let cache_dir = base.join("cache");
    let run = |sub: &str| {
        let out = base.join(sub);
        run_batch(
            &registry,
            &names,
            &BatchOptions {
                jobs: 2,
                out_dir: Some(out.clone()),
                cache_dir: Some(cache_dir.clone()),
                ..Default::default()
            },
        )
        .expect("cached batch runs");
        out
    };
    let cold = run("cold");

    // Damage every entry a different way: truncation, a flipped payload byte, and
    // outright garbage.
    let units_dir = cache_dir.join("units");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&units_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert_eq!(
        entries.len(),
        names.len(),
        "one entry per single-unit scenario"
    );
    let text = std::fs::read_to_string(&entries[0]).unwrap();
    std::fs::write(&entries[0], &text.as_bytes()[..text.len() / 3]).unwrap();
    let mut bytes = std::fs::read(&entries[1]).unwrap();
    let payload_pos = bytes.len() * 3 / 4;
    bytes[payload_pos] ^= 0x01;
    std::fs::write(&entries[1], &bytes).unwrap();
    std::fs::write(&entries[2], b"not json at all").unwrap();

    let warm = run("warm");
    let manifest = read_manifest(&warm);
    assert_eq!(manifest_total(&manifest, "recomputed"), 3);
    assert_eq!(manifest_total(&manifest, "hits"), 1);
    assert_eq!(manifest_total(&manifest, "misses"), 0);

    // Corruption never reaches the artifacts.
    for name in names {
        let file = format!("{name}.json");
        assert_eq!(
            std::fs::read(cold.join(&file)).unwrap(),
            std::fs::read(warm.join(&file)).unwrap(),
            "artifact '{file}' poisoned by a corrupt cache entry"
        );
    }

    // The evicted entries were re-stored: everything hits again.
    let third = run("third");
    let manifest = read_manifest(&third);
    assert_eq!(manifest_total(&manifest, "hits"), names.len() as u64);
    assert_eq!(manifest_total(&manifest, "recomputed"), 0);

    let _ = std::fs::remove_dir_all(&base);
}

/// `--no-cache` semantics at the library layer: the same batch without a cache
/// directory computes everything and reports a disabled cache block in the manifest.
#[test]
fn uncached_batch_reports_disabled_cache_block() {
    let registry = Registry::builtin();
    let base = temp_base("disabled");
    let outcome = run_batch(
        &registry,
        &["table1"],
        &BatchOptions {
            jobs: 1,
            out_dir: Some(base.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!outcome.cache_enabled);
    let manifest = read_manifest(&base);
    assert_eq!(
        manifest.get("cache").and_then(|c| c.get("enabled")),
        Some(&Value::Bool(false))
    );
    assert_eq!(manifest_total(&manifest, "hits"), 0);
    assert_eq!(manifest_total(&manifest, "misses"), 0);
    let _ = std::fs::remove_dir_all(&base);
}

//! Property suite for the `run --shard I/N` partition (vendored proptest, pinned
//! seeds — the same deterministic harness as `cache_properties.rs`).
//!
//! The partition function must make four promises to the cross-shard protocol:
//!
//! 1. **Disjointness** — no unit is owned by two shards (nothing is computed
//!    twice);
//! 2. **Coverage** — every unit is owned by some shard (nothing is dropped);
//! 3. **Reorder stability** — ownership is a pure function of unit identity:
//!    shuffling the unit list, or minting keys in a different order, never moves
//!    a unit between shards;
//! 4. **Approximate uniformity** — for any real sweep (≥64 units) no shard owns
//!    more than 2× the mean, so an N-way split actually buys ~N-way wall-clock.

use pim_harness::prelude::*;
use proptest::prelude::*;
use serde::Value;

/// Mint the unit keys of a synthetic sweep: `grids` grid points × `reps`
/// replications of one scenario.
fn sweep_keys(scenario: &str, seed: u64, grids: usize, reps: usize) -> Vec<UnitKey> {
    let config = Value::Map(vec![("axis".into(), Value::U64(grids as u64))]);
    let keyer = UnitKeyer::new(scenario, &config, seed);
    let mut keys = Vec::with_capacity(grids * reps);
    for grid in 0..grids {
        for rep in 0..reps {
            keys.push(keyer.key(grid, rep));
        }
    }
    keys
}

/// All shards of an N-way partition.
fn shards(count: u32) -> Vec<ShardSpec> {
    (1..=count)
        .map(|i| ShardSpec::new(i, count).expect("1 <= i <= count"))
        .collect()
}

proptest! {
    /// Disjointness + coverage in one pass: every unit of a random sweep is owned
    /// by exactly one of the N shards.
    #[test]
    fn every_unit_is_owned_by_exactly_one_shard(
        seed in 0u64..1_000_000,
        grids in 1usize..96,
        reps in 1usize..4,
        count in 1u32..9,
    ) {
        let shards = shards(count);
        for key in sweep_keys("prop", seed, grids, reps) {
            let owners: Vec<u32> = shards
                .iter()
                .filter(|s| s.owns(&key))
                .map(|s| s.index())
                .collect();
            prop_assert_eq!(
                owners.len(),
                1,
                "unit {} owned by shards {:?} of {}",
                key.digest(),
                owners,
                count
            );
        }
    }

    /// Reorder stability: ownership never depends on the order units are listed or
    /// keys are minted in. Assign the same sweep forwards and backwards (with decoy
    /// keys minted in between) — per-unit owners are identical.
    #[test]
    fn ownership_is_stable_under_unit_reordering(
        seed in 0u64..1_000_000,
        grids in 1usize..64,
        count in 2u32..7,
    ) {
        let shards = shards(count);
        let owner = |key: &UnitKey| -> u32 {
            shards
                .iter()
                .find(|s| s.owns(key))
                .map(|s| s.index())
                .expect("coverage: some shard owns every key")
        };
        let keys = sweep_keys("prop", seed, grids, 2);
        let forward: Vec<u32> = keys.iter().map(owner).collect();
        // Re-mint the same sweep in reverse, with unrelated keys interleaved.
        let config = Value::Map(vec![("axis".into(), Value::U64(grids as u64))]);
        let keyer = UnitKeyer::new("prop", &config, seed);
        let decoy = UnitKeyer::new("decoy", &Value::Null, seed ^ 0xdead);
        let mut backward: Vec<u32> = Vec::with_capacity(keys.len());
        for grid in (0..grids).rev() {
            for rep in (0..2usize).rev() {
                let _ = decoy.key(grid, rep);
                backward.push(owner(&keyer.key(grid, rep)));
            }
        }
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }

    /// Approximate uniformity: for sweeps of at least 64 units, no shard owns more
    /// than twice the mean share (and none is starved to zero when the mean is
    /// comfortably above 1).
    #[test]
    fn no_shard_owns_more_than_twice_the_mean(
        seed in 0u64..1_000_000,
        grids in 32usize..128,
        count in 2u32..9,
    ) {
        let keys = sweep_keys("prop", seed, grids, 2);
        let total = keys.len();
        prop_assert!(total >= 64);
        let mut owned = vec![0usize; count as usize];
        for key in &keys {
            for (i, shard) in shards(count).iter().enumerate() {
                if shard.owns(key) {
                    owned[i] += 1;
                }
            }
        }
        let mean = total as f64 / f64::from(count);
        for (i, &n) in owned.iter().enumerate() {
            prop_assert!(
                (n as f64) <= 2.0 * mean,
                "shard {}/{} owns {} of {} units (mean {:.1})",
                i + 1,
                count,
                n,
                total,
                mean
            );
            if mean >= 8.0 {
                prop_assert!(
                    n > 0,
                    "shard {}/{} starved: 0 of {} units (mean {:.1})",
                    i + 1,
                    count,
                    total,
                    mean
                );
            }
        }
    }

    /// The degenerate split: one shard owns everything, so `--shard 1/1` is exactly
    /// an ordinary run's unit set.
    #[test]
    fn single_shard_partition_owns_every_unit(
        seed in 0u64..1_000_000,
        grids in 1usize..64,
    ) {
        let shard = ShardSpec::new(1, 1).expect("1/1 is valid");
        for key in sweep_keys("prop", seed, grids, 1) {
            prop_assert!(shard.owns(&key));
        }
    }
}

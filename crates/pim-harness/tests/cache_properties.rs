//! Property suite for the unit-result cache's key derivation (vendored proptest,
//! pinned seeds — the same deterministic harness as `spec_properties.rs`).
//!
//! Three families of properties:
//!
//! 1. **Stability & distinctness** — a [`UnitKey`] digest is a pure function of its
//!    fields; keys differ whenever base seeds, grid indices, replication indices,
//!    scenario names or fingerprints differ.
//! 2. **Claim-order independence** — the set of cache entries a batch writes is
//!    identical at `--jobs 1` and `--jobs 8`: worker count and steal order never
//!    reach the key derivation or the entry contents.
//! 3. **Spec sensitivity** — any single-field edit to a scenario spec (an axis
//!    value, a fraction, the model family, the replication count, the seed mode)
//!    changes the spec fingerprint, re-addressing every unit; invalid edits are
//!    rejected at parse time and never reach fingerprinting at all.

use pim_harness::prelude::*;
use pim_harness::spec::parse_spec;
use proptest::prelude::*;
use serde::Value;
use std::collections::BTreeMap;
use std::path::Path;

fn key(scenario: &str, config: &Value, seed: u64, grid: usize, rep: usize) -> UnitKey {
    UnitKeyer::new(scenario, config, seed).key(grid, rep)
}

proptest! {
    /// Same fields, same digest — whatever order keys are minted in.
    #[test]
    fn digests_are_pure_functions_of_the_fields(
        seed in 0u64..1_000_000,
        grid in 0usize..4_096,
        rep in 0usize..64,
    ) {
        let config = Value::Map(vec![("x".into(), Value::U64(seed))]);
        let a = key("scenario", &config, seed, grid, rep);
        // Mint a decoy in between: keyers share no mutable state.
        let _ = key("other", &Value::Null, seed ^ 1, grid + 1, rep + 1);
        let b = key("scenario", &config, seed, grid, rep);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a, b);
    }

    /// Distinct base seeds, grid indices or replication indices always produce
    /// distinct digests (the cache can never serve one unit's result for another).
    #[test]
    fn distinct_fields_produce_distinct_digests(
        seed_a in 0u64..1_000_000,
        seed_delta in 1u64..1_000,
        grid_a in 0usize..2_048,
        grid_delta in 1usize..100,
        rep_a in 0usize..32,
        rep_delta in 1usize..32,
    ) {
        let config = Value::Map(vec![]);
        let base = key("s", &config, seed_a, grid_a, rep_a);
        prop_assert_ne!(
            base.digest(),
            key("s", &config, seed_a + seed_delta, grid_a, rep_a).digest()
        );
        prop_assert_ne!(
            base.digest(),
            key("s", &config, seed_a, grid_a + grid_delta, rep_a).digest()
        );
        prop_assert_ne!(
            base.digest(),
            key("s", &config, seed_a, grid_a, rep_a + rep_delta).digest()
        );
        prop_assert_ne!(base.digest(), key("t", &config, seed_a, grid_a, rep_a).digest());
    }

    /// Any change to the config tree changes the fingerprint and hence the digest.
    #[test]
    fn config_edits_change_the_fingerprint(
        nodes in 1u64..512,
        delta in 1u64..512,
        fraction in 0.0f64..1.0,
    ) {
        let config = |n: u64, f: f64| {
            Value::Map(vec![
                ("node_counts".into(), Value::Seq(vec![Value::U64(n)])),
                ("remote_fraction".into(), Value::F64(f)),
            ])
        };
        let base = key("s", &config(nodes, fraction), 1, 0, 0);
        let widened = key("s", &config(nodes + delta, fraction), 1, 0, 0);
        prop_assert_ne!(base.digest(), widened.digest());
        let nudged = key("s", &config(nodes, fraction + 1.5), 1, 0, 0);
        prop_assert_ne!(base.digest(), nudged.digest());
    }

    /// Spec-level sensitivity: editing an axis value, a fraction, the replication
    /// count or the seed changes `ScenarioSpec::fingerprint`; editing the family
    /// does too (here: the same grid under `parcels` vs a rejected family tag).
    #[test]
    fn single_field_spec_edits_change_the_fingerprint(
        nodes in 1usize..256,
        delta in 1usize..256,
        fraction in 0.0f64..0.5,
        nudge in 0.01f64..0.5,
        reps in 1usize..8,
    ) {
        let spec_json = |n: usize, f: f64, reps: usize, seed: &str| format!(
            r#"{{
                "schema_version": 1,
                "name": "prop_spec",
                "description": "cache property spec",
                "model": "parcels",
                "replications": {reps},
                "seed": {seed},
                "grid": {{
                    "node_counts": [{n}],
                    "parallelisms": [4],
                    "latencies": [100.0],
                    "remote_fractions": [{f:?}]
                }}
            }}"#
        );
        let base = parse_spec(&spec_json(nodes, fraction, reps, "\"derived\"")).unwrap();
        let fp = base.fingerprint();
        // Same spec re-parsed: same fingerprint (it is content-addressed, not
        // identity-addressed).
        prop_assert_eq!(
            &fp,
            &parse_spec(&spec_json(nodes, fraction, reps, "\"derived\"")).unwrap().fingerprint()
        );
        // Axis value widened.
        let widened = parse_spec(&spec_json(nodes + delta, fraction, reps, "\"derived\"")).unwrap();
        prop_assert_ne!(&fp, &widened.fingerprint());
        // Fraction nudged.
        let nudged = parse_spec(&spec_json(nodes, fraction + nudge, reps, "\"derived\"")).unwrap();
        prop_assert_ne!(&fp, &nudged.fingerprint());
        // Replications changed.
        let replicated = parse_spec(&spec_json(nodes, fraction, reps + 1, "\"derived\"")).unwrap();
        prop_assert_ne!(&fp, &replicated.fingerprint());
        // Seed mode changed.
        let fixed = parse_spec(&spec_json(nodes, fraction, reps, "{\"fixed\": 7}")).unwrap();
        prop_assert_ne!(&fp, &fixed.fingerprint());
    }

    /// Rejection: an invalid edit (empty axis, unknown family) fails at parse time —
    /// there is no such thing as a fingerprint for a spec the runner would refuse.
    #[test]
    fn invalid_spec_edits_are_rejected_before_fingerprinting(tag in 0u64..1_000) {
        let empty_axis = r#"{
            "schema_version": 1, "name": "x", "description": "d", "model": "parcels",
            "grid": {"node_counts": [], "parallelisms": [4], "latencies": [100.0],
                     "remote_fractions": [0.4]}
        }"#;
        prop_assert!(parse_spec(empty_axis).is_err());
        let bad_family = format!(
            r#"{{
                "schema_version": 1, "name": "x", "description": "d",
                "model": "family{tag}",
                "grid": {{"node_counts": [2], "parallelisms": [4], "latencies": [100.0],
                          "remote_fractions": [0.4]}}
            }}"#
        );
        prop_assert!(parse_spec(&bad_family).is_err());
    }
}

/// The family edit, concretely: an analytic and a parcels spec sharing every common
/// field still fingerprint differently.
#[test]
fn family_change_changes_the_fingerprint() {
    let parcels = parse_spec(
        r#"{
            "schema_version": 1, "name": "fam", "description": "d", "model": "parcels",
            "grid": {"node_counts": [4], "parallelisms": [4], "latencies": [100.0],
                     "remote_fractions": [0.4]}
        }"#,
    )
    .unwrap();
    let analytic = parse_spec(
        r#"{
            "schema_version": 1, "name": "fam", "description": "d", "model": "analytic",
            "grid": {"node_counts": [4], "lwp_fractions": [0.4]}
        }"#,
    )
    .unwrap();
    assert_ne!(parcels.fingerprint(), analytic.fingerprint());
}

/// Claim-order independence, end to end: the *entry files* a cold batch writes —
/// names and bytes — are identical whether one worker runs every unit in order or
/// eight workers steal them in arbitrary interleavings.
#[test]
fn cache_entry_files_are_independent_of_job_count() {
    let registry = Registry::builtin();
    // A mix of multi-unit scenarios so stealing actually interleaves.
    let names = ["figure7", "ablation_network", "ablation_imbalance"];
    let base = std::env::temp_dir().join(format!("pim-cache-order-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let run = |jobs: usize, sub: &str| {
        let cache = base.join(sub);
        run_batch(
            &registry,
            &names,
            &BatchOptions {
                jobs,
                cache_dir: Some(cache.clone()),
                ..Default::default()
            },
        )
        .expect("cached batch runs");
        cache
    };
    let serial = run(1, "jobs1");
    let parallel = run(8, "jobs8");
    let listing = |cache: &Path| -> BTreeMap<String, Vec<u8>> {
        std::fs::read_dir(cache.join("units"))
            .expect("units dir exists")
            .map(|e| {
                let path = e.unwrap().path();
                (
                    path.file_name().unwrap().to_string_lossy().to_string(),
                    std::fs::read(&path).unwrap(),
                )
            })
            .collect()
    };
    let a = listing(&serial);
    let b = listing(&parallel);
    assert!(
        a.len() >= 1 + 6 + 27,
        "expected every unit persisted, got {}",
        a.len()
    );
    assert_eq!(a, b, "cache entries differ between --jobs 1 and --jobs 8");
    let _ = std::fs::remove_dir_all(&base);
}

//! Integration tests for the sweep service: spec submissions over real sockets,
//! byte-identity between served artifacts and direct execution, warm-cache
//! serving, unit-level single-flight deduplication across concurrent clients,
//! the ndjson progress stream, the HTTP error surface, and the traffic
//! discipline — bounded workers with 503 + `Retry-After` backpressure, silent
//! -client reaping, `/metrics` reconciliation, graceful drain, and
//! client-disconnect cancellation.

use pim_harness::prelude::*;
use serde::Value;
use std::io::{Read, Write};
use std::time::Duration;
use tiny_http::client;

/// A small analytic spec: 3 × 2 grid = 6 units, milliseconds to run.
const SPEC: &str = r#"{
    "schema_version": 1,
    "name": "serve_probe",
    "description": "tiny grid for service tests",
    "model": "analytic",
    "grid": {
        "node_counts": [2, 8, 32],
        "lwp_fractions": [0.25, 0.75]
    },
    "columns": ["nodes", "pct_lwp", "gain"]
}"#;
const SPEC_UNITS: u64 = 6;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pim-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bind a service on an OS-assigned port and serve on a detached thread.
/// Returns the `host:port` to dial.
fn start(opts: &ServeOptions) -> String {
    let server = SweepServer::bind(opts).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    std::thread::spawn(move || {
        let _ = server.serve_forever();
    });
    addr
}

fn header_u64(resp: &client::ClientResponse, name: &str) -> u64 {
    resp.header(name)
        .unwrap_or_else(|| panic!("missing header {name}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric header {name}"))
}

/// A distinct parcels spec per `tag`: same shape, different name and grid, so
/// concurrent submissions address disjoint unit keys. Two units each, DES-slow
/// enough that a small worker pool saturates under a client fleet.
fn parcels_spec(tag: usize) -> String {
    format!(
        r#"{{
    "schema_version": 1,
    "name": "serve_soak_{tag}",
    "description": "distinct-grid spec for saturation tests",
    "model": "parcels",
    "config": {{"horizon_cycles": 300000.0}},
    "grid": {{
        "node_counts": [{nodes}],
        "parallelisms": [8],
        "latencies": [1000.0],
        "remote_fractions": [0.1, 0.5]
    }}
}}"#,
        nodes = 2 + tag
    )
}

/// What direct in-process execution produces for `spec` under `seed` — the
/// byte-identity reference for any served 200 body.
fn reference_for(spec: &str, seed: u64) -> String {
    parse_spec(spec)
        .expect("spec parses")
        .into_scenario()
        .run(&SeedPolicy::new(seed))
        .to_json()
}

/// Walk a parsed JSON document by map keys.
fn value_at<'v>(doc: &'v Value, path: &[&str]) -> Option<&'v Value> {
    let mut v = doc;
    for key in path {
        let Value::Map(fields) = v else { return None };
        v = &fields.iter().find(|(k, _)| k == key)?.1;
    }
    Some(v)
}

fn metrics_u64(doc: &Value, path: &[&str]) -> u64 {
    match value_at(doc, path) {
        Some(Value::U64(n)) => *n,
        other => panic!("metrics field {path:?} is {other:?}"),
    }
}

/// Fetch and parse `GET /metrics`.
fn fetch_metrics(addr: &str) -> Value {
    let resp = client::request(addr, "GET", "/metrics", &[], b"").expect("metrics request");
    assert_eq!(resp.status, 200);
    serde_json::from_str(String::from_utf8_lossy(&resp.body).trim()).expect("metrics JSON parses")
}

/// Poll `GET /metrics` until `cond` holds (counters are recorded after the
/// response write, so clients can briefly outrun them).
fn wait_for_metrics(addr: &str, what: &str, cond: impl Fn(&Value) -> bool) -> Value {
    let mut last = Value::Null;
    for _ in 0..400 {
        last = fetch_metrics(addr);
        if cond(&last) {
            return last;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("metrics never satisfied: {what}; last document: {last:?}");
}

/// The reference artifact: what direct in-process execution (and therefore the
/// CLI) produces for this spec under the daemon's default seed.
fn reference_artifact(seed: u64) -> String {
    let scenario = parse_spec(SPEC).expect("spec parses").into_scenario();
    scenario.run(&SeedPolicy::new(seed)).to_json()
}

#[test]
fn served_artifact_is_byte_identical_cold_and_warm() {
    let cache = temp_dir("roundtrip");
    let addr = start(&ServeOptions {
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    });

    let cold = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("cold request");
    assert_eq!(cold.status, 200);
    assert_eq!(header_u64(&cold, "X-Pim-Units"), SPEC_UNITS);
    assert_eq!(header_u64(&cold, "X-Pim-Cache-Misses"), SPEC_UNITS);
    assert_eq!(header_u64(&cold, "X-Pim-Cache-Hits"), 0);
    assert_eq!(
        String::from_utf8_lossy(&cold.body),
        reference_artifact(DEFAULT_SEED),
        "served artifact differs from direct execution"
    );

    // Warm: all hits, zero recomputation, byte-identical body.
    let warm = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("warm request");
    assert_eq!(warm.status, 200);
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Hits"), SPEC_UNITS);
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Misses"), 0);
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Recomputed"), 0);
    assert_eq!(warm.body, cold.body);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn memory_only_daemon_still_serves_warm_repeats() {
    // No --cache at all: the pool's in-memory results must carry the warmth.
    let addr = start(&ServeOptions::default());
    let cold = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("cold");
    let warm = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("warm");
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Hits"), SPEC_UNITS);
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Misses"), 0);
    assert_eq!(warm.body, cold.body);
}

#[test]
fn concurrent_identical_submissions_compute_each_unit_exactly_once() {
    // N clients POST the same spec at the same instant to a fresh daemon.
    // Single-flight per unit digest means the summed accounting must show
    // exactly one miss per unit across ALL responses — the other N-1 clients
    // get hits — and every client receives byte-identical payloads.
    const CLIENTS: usize = 5;
    let cache = temp_dir("dedup");
    let addr = start(&ServeOptions {
        cache_dir: Some(cache.clone()),
        // Deduplication across *in-flight* requests needs every client in
        // service at once; the default worker count is core-bound and the CI
        // container may have one core.
        workers: CLIENTS,
        queue: CLIENTS,
        ..ServeOptions::default()
    });
    let barrier = std::sync::Barrier::new(CLIENTS);
    let responses: Vec<client::ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    client::request(&addr, "POST", "/run", &[], SPEC.as_bytes())
                        .expect("concurrent request")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (mut hits, mut misses, mut recomputed) = (0, 0, 0);
    for resp in &responses {
        assert_eq!(resp.status, 200);
        hits += header_u64(resp, "X-Pim-Cache-Hits");
        misses += header_u64(resp, "X-Pim-Cache-Misses");
        recomputed += header_u64(resp, "X-Pim-Cache-Recomputed");
        assert_eq!(resp.body, responses[0].body, "client payloads diverged");
    }
    assert_eq!(misses, SPEC_UNITS, "exactly one computation per unit key");
    assert_eq!(recomputed, 0);
    assert_eq!(hits, (CLIENTS as u64 - 1) * SPEC_UNITS);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn seed_override_readdresses_the_sweep() {
    let cache = temp_dir("seed");
    let addr = start(&ServeOptions {
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    });
    let base = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("base");
    let seeded =
        client::request(&addr, "POST", "/run?seed=99", &[], SPEC.as_bytes()).expect("seeded");
    assert_eq!(seeded.status, 200);
    assert_ne!(seeded.body, base.body, "seed override had no effect");
    assert_eq!(
        String::from_utf8_lossy(&seeded.body),
        reference_artifact(99)
    );
    // A different seed is a different key space: all misses, no hits against
    // the base-seed submission's entries.
    assert_eq!(header_u64(&seeded, "X-Pim-Cache-Misses"), SPEC_UNITS);
    assert_eq!(header_u64(&seeded, "X-Pim-Cache-Hits"), 0);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn progress_stream_narrates_and_ends_with_the_artifact() {
    let addr = start(&ServeOptions::default());
    let resp = client::request(&addr, "POST", "/run?progress=1", &[], SPEC.as_bytes())
        .expect("progress request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
    let text = String::from_utf8(resp.body).expect("ndjson is UTF-8");
    let events: Vec<Value> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("each line is one JSON event"))
        .collect();
    let kind = |e: &Value| match e {
        Value::Map(fields) => fields
            .iter()
            .find(|(k, _)| k == "event")
            .and_then(|(_, v)| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("event field"),
        _ => panic!("event is not an object"),
    };
    assert_eq!(kind(&events[0]), "start");
    let units = events.iter().filter(|e| kind(e) == "unit").count() as u64;
    assert_eq!(units, SPEC_UNITS, "one unit event per completed unit");
    assert_eq!(kind(&events[events.len() - 2]), "done");
    assert_eq!(kind(&events[events.len() - 1]), "report");
}

#[test]
fn error_surface_is_stable() {
    let addr = start(&ServeOptions::default());
    // Liveness and catalog endpoints.
    let health = client::request(&addr, "GET", "/healthz", &[], b"").expect("healthz");
    assert_eq!((health.status, health.body.as_slice()), (200, &b"ok\n"[..]));
    let scenarios = client::request(&addr, "GET", "/scenarios", &[], b"").expect("scenarios");
    assert_eq!(scenarios.status, 200);
    assert!(String::from_utf8_lossy(&scenarios.body).contains("\"figure5\""));
    // A malformed spec is a 400 carrying the spec error, not a hung socket.
    let bad = client::request(&addr, "POST", "/run", &[], b"{\"schema_version\": 1}").expect("bad");
    assert_eq!(bad.status, 400);
    assert!(!bad.body.is_empty());
    // Bad query parameters are 400s that name the parameter.
    for target in ["/run?seed=banana", "/run?progress=2"] {
        let resp = client::request(&addr, "POST", target, &[], SPEC.as_bytes()).expect("query");
        assert_eq!(resp.status, 400, "{target}");
    }
    // Unknown path and wrong method. A 405 must name the allowed method so
    // clients can repair the request without consulting the docs.
    let missing = client::request(&addr, "GET", "/nope", &[], b"").expect("404");
    assert_eq!(missing.status, 404);
    let wrong = client::request(&addr, "GET", "/run", &[], b"").expect("405");
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("allow"), Some("POST"));
    for path in ["/healthz", "/scenarios", "/metrics"] {
        let resp = client::request(&addr, "POST", path, &[], b"").expect("405");
        assert_eq!(resp.status, 405, "{path}");
        assert_eq!(resp.header("allow"), Some("GET"), "{path}");
    }
}

#[test]
fn duplicate_query_parameters_are_rejected_with_400() {
    let addr = start(&ServeOptions::default());
    let dup =
        client::request(&addr, "POST", "/run?seed=1&seed=2", &[], SPEC.as_bytes()).expect("dup");
    assert_eq!(dup.status, 400);
    assert!(
        String::from_utf8_lossy(&dup.body).contains("duplicate query parameter 'seed'"),
        "body should name the repeated key: {:?}",
        String::from_utf8_lossy(&dup.body)
    );
    // The rule is structural — the same contradiction the CLI refuses in
    // repeated flags — so it applies even where the endpoint ignores the
    // parameter entirely.
    let health = client::request(&addr, "GET", "/healthz?x=1&x=2", &[], b"").expect("healthz dup");
    assert_eq!(health.status, 400);
}

#[test]
fn silent_connections_are_reaped_with_408_and_the_daemon_keeps_serving() {
    let addr = start(&ServeOptions {
        workers: 1,
        queue: 4,
        timeout_ms: 250,
        ..ServeOptions::default()
    });
    // A connection that never sends a byte pins the only worker...
    let silent = std::net::TcpStream::connect(&addr).expect("connect silent");
    // ...until the read deadline reaps it, at which point the queued client
    // behind it must be served. Without the deadline this request hangs
    // forever and the test times out.
    let health = client::request(&addr, "GET", "/healthz", &[], b"").expect("healthz after reap");
    assert_eq!(health.status, 200);
    // The silent peer was told why before the close.
    let mut raw = String::new();
    (&silent).read_to_string(&mut raw).expect("read the 408");
    assert!(raw.starts_with("HTTP/1.1 408"), "got: {raw:?}");
}

#[test]
fn metrics_schema_v1_shape_and_counters() {
    let addr = start(&ServeOptions {
        workers: 3,
        queue: 7,
        jobs: 2,
        ..ServeOptions::default()
    });
    let doc = fetch_metrics(&addr);
    assert_eq!(
        metrics_u64(&doc, &["schema_version"]),
        pim_harness::serve::METRICS_SCHEMA_VERSION
    );
    assert!(matches!(
        value_at(&doc, &["draining"]),
        Some(Value::Bool(false))
    ));
    assert_eq!(metrics_u64(&doc, &["workers", "configured"]), 3);
    assert_eq!(metrics_u64(&doc, &["workers", "queue_capacity"]), 7);
    assert_eq!(metrics_u64(&doc, &["workers", "rejected_503"]), 0);
    assert_eq!(metrics_u64(&doc, &["pool", "permits_total"]), 2);
    assert_eq!(metrics_u64(&doc, &["pool", "permits_in_use"]), 0);
    assert_eq!(metrics_u64(&doc, &["pool", "mem_entries"]), 0);
    // Counters are recorded after the response write, so the serving request
    // itself is not yet visible in its own document.
    assert_eq!(metrics_u64(&doc, &["requests", "total"]), 0);
    // A served request then shows up under its "METHOD /path" label.
    let health = client::request(&addr, "GET", "/healthz", &[], b"").expect("healthz");
    assert_eq!(health.status, 200);
    let doc = wait_for_metrics(&addr, "healthz counted", |d| {
        value_at(d, &["requests", "by_endpoint", "GET /healthz", "200"]).is_some()
    });
    assert_eq!(
        metrics_u64(&doc, &["requests", "by_endpoint", "GET /healthz", "200"]),
        1
    );
    assert_eq!(metrics_u64(&doc, &["cache", "units_served"]), 0);
}

#[test]
fn saturation_returns_503_with_retry_after_and_metrics_reconcile() {
    // A fleet far larger than the pool: every request must resolve as a 200
    // (eventually, via Retry-After honoring retries) or a 503 that carries
    // Retry-After — never a hang, never a connection reset.
    const CLIENTS: usize = 16;
    let addr = start(&ServeOptions {
        workers: 2,
        queue: 2,
        ..ServeOptions::default()
    });
    let specs: Vec<String> = (0..CLIENTS).map(parcels_spec).collect();
    let barrier = std::sync::Barrier::new(CLIENTS);
    let results: Vec<(client::ClientResponse, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let addr = &addr;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let mut rejections = 0u64;
                    loop {
                        let resp = client::request(addr, "POST", "/run", &[], spec.as_bytes())
                            .expect("a saturated service still answers cleanly");
                        if resp.status == 503 {
                            let retry: u64 = resp
                                .header("retry-after")
                                .expect("every 503 carries Retry-After")
                                .parse()
                                .expect("Retry-After is integer seconds");
                            assert!((1..=60).contains(&retry), "Retry-After {retry} off-range");
                            rejections += 1;
                            // The real guidance is seconds; a test compresses it.
                            std::thread::sleep(Duration::from_millis(40));
                            continue;
                        }
                        assert_eq!(resp.status, 200);
                        return (resp, rejections);
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut total_rejections = 0u64;
    let (mut hits, mut misses, mut recomputed, mut units) = (0u64, 0u64, 0u64, 0u64);
    for (i, (resp, rejections)) in results.iter().enumerate() {
        total_rejections += rejections;
        hits += header_u64(resp, "X-Pim-Cache-Hits");
        misses += header_u64(resp, "X-Pim-Cache-Misses");
        recomputed += header_u64(resp, "X-Pim-Cache-Recomputed");
        units += header_u64(resp, "X-Pim-Units");
        assert_eq!(
            String::from_utf8_lossy(&resp.body),
            reference_for(&specs[i], DEFAULT_SEED),
            "served artifact for client {i} differs from direct execution"
        );
    }
    // The service-side ledger must agree with the per-response headers
    // exactly: same totals, one `<rejected>` line per 503 the fleet saw.
    // (`busy == 1` is the worker serving the /metrics poll itself.)
    let doc = wait_for_metrics(&addr, "all 200s counted and workers settled", |d| {
        metrics_u64(d, &["requests", "by_endpoint", "POST /run", "200"]) == CLIENTS as u64
            && metrics_u64(d, &["workers", "busy"]) == 1
    });
    assert_eq!(metrics_u64(&doc, &["cache", "hits"]), hits);
    assert_eq!(metrics_u64(&doc, &["cache", "misses"]), misses);
    assert_eq!(metrics_u64(&doc, &["cache", "recomputed"]), recomputed);
    assert_eq!(metrics_u64(&doc, &["cache", "units_served"]), units);
    assert_eq!(
        metrics_u64(&doc, &["workers", "rejected_503"]),
        total_rejections
    );
    if total_rejections > 0 {
        assert_eq!(
            metrics_u64(&doc, &["requests", "by_endpoint", "<rejected>", "503"]),
            total_rejections
        );
    }
    assert_eq!(metrics_u64(&doc, &["pool", "permits_in_use"]), 0);
    assert_eq!(metrics_u64(&doc, &["pool", "flights_in_progress"]), 0);
}

#[test]
fn drain_finishes_inflight_work_answers_queued_clients_and_then_refuses() {
    let server = SweepServer::bind(&ServeOptions {
        workers: 1,
        queue: 4,
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let handle = server.drain_handle();
    let server_thread = std::thread::spawn(move || server.serve_forever());

    // Client A submits a run but stalls halfway through the body, pinning the
    // only worker mid-request for as long as this test wants.
    let mut a = std::net::TcpStream::connect(&addr).expect("connect A");
    let body = SPEC.as_bytes();
    let (first, rest) = body.split_at(body.len() / 2);
    write!(
        a,
        "POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("A's head");
    a.write_all(first).expect("A's first half");
    a.flush().expect("flush A");

    // Client B queues behind A before the drain begins.
    let b = std::thread::spawn({
        let addr = addr.clone();
        move || client::request(&addr, "GET", "/healthz", &[], b"").expect("queued healthz")
    });
    std::thread::sleep(Duration::from_millis(200));

    handle.request_drain();
    assert!(handle.is_draining());
    std::thread::sleep(Duration::from_millis(100));

    // A completes its submission after the drain began: in-flight work is
    // finished and answered in full, not cut off.
    a.write_all(rest).expect("A's second half");
    a.flush().expect("flush rest");
    let mut response = Vec::new();
    a.read_to_end(&mut response).expect("read A's response");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 200"),
        "A should be served through the drain: {:?}",
        &text[..text.len().min(60)]
    );
    assert!(
        text.ends_with(&reference_artifact(DEFAULT_SEED)),
        "drained artifact differs from direct execution"
    );

    // B was already queued, so it gets an answer — and the answer says the
    // service is going away.
    let b = b.join().unwrap();
    assert_eq!(b.status, 503);
    assert_eq!(String::from_utf8_lossy(&b.body), "draining\n");

    let summary = server_thread
        .join()
        .unwrap()
        .expect("serve_forever returns the drain summary");
    assert_eq!(summary.abandoned, 0, "clean drain leaves nothing behind");
    assert_eq!(summary.served, 2, "A's 200 and B's draining 503");
    assert_eq!(summary.rejected, 0);

    // The drained daemon is gone: a new connection is refused outright or
    // closed without an answer.
    if let Ok(mut post) = std::net::TcpStream::connect(&addr) {
        let _ = post.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let mut buf = Vec::new();
        let n = post.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(
            n,
            0,
            "a drained daemon must not answer: {:?}",
            String::from_utf8_lossy(&buf)
        );
    }
}

#[test]
fn a_disconnected_progress_client_cancels_its_run_and_frees_the_pool() {
    // Enough slow units that the run is still mid-flight when the client
    // vanishes; cancellation must abort the sweep well short of completion.
    const TOTAL_UNITS: u64 = 64;
    let spec = r#"{
        "schema_version": 1,
        "name": "serve_cancel_probe",
        "description": "slow wide grid for disconnect tests",
        "model": "parcels",
        "config": {"horizon_cycles": 1000000.0},
        "grid": {
            "node_counts": [2, 4, 8, 12, 16, 24, 32, 48],
            "parallelisms": [8],
            "latencies": [1000.0],
            "remote_fractions": [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
        }
    }"#;
    let addr = start(&ServeOptions {
        workers: 2,
        queue: 4,
        ..ServeOptions::default()
    });
    {
        // Hand-rolled client: submit with progress, read up to the start
        // event (so the run is genuinely under way), then vanish.
        let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
        write!(
            conn,
            "POST /run?progress=1 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            spec.len()
        )
        .expect("head");
        conn.write_all(spec.as_bytes()).expect("body");
        let mut seen = Vec::new();
        let mut chunk = [0u8; 256];
        while !String::from_utf8_lossy(&seen).contains("\"event\":\"start\"") {
            let n = conn.read(&mut chunk).expect("progress bytes");
            assert!(n > 0, "stream ended before the start event");
            seen.extend_from_slice(&chunk[..n]);
        }
    } // dropped mid-run: the next unit event's write fails on the dead socket
      // The handler notices the dead stream, cancels the run (recorded as the
      // nginx-style 499, never written to anyone), and the pool returns to idle
      // with the sweep unfinished.
    let doc = wait_for_metrics(&addr, "cancelled run recorded as 499", |d| {
        value_at(d, &["requests", "by_endpoint", "POST /run", "499"]).is_some()
            && metrics_u64(d, &["pool", "permits_in_use"]) == 0
            && metrics_u64(d, &["pool", "flights_in_progress"]) == 0
    });
    assert!(
        metrics_u64(&doc, &["pool", "mem_entries"]) < TOTAL_UNITS,
        "cancellation should abort the sweep early, not run it to completion"
    );
    // A cancelled request never reaches the response path, so the cache
    // ledger (which reconciles against served headers) stays untouched.
    assert_eq!(metrics_u64(&doc, &["cache", "units_served"]), 0);
    // The daemon is unharmed.
    let health = client::request(&addr, "GET", "/healthz", &[], b"").expect("healthz after cancel");
    assert_eq!(health.status, 200);
}

//! Integration tests for the sweep service: spec submissions over real sockets,
//! byte-identity between served artifacts and direct execution, warm-cache
//! serving, unit-level single-flight deduplication across concurrent clients,
//! the ndjson progress stream, and the HTTP error surface.

use pim_harness::prelude::*;
use serde::Value;
use tiny_http::client;

/// A small analytic spec: 3 × 2 grid = 6 units, milliseconds to run.
const SPEC: &str = r#"{
    "schema_version": 1,
    "name": "serve_probe",
    "description": "tiny grid for service tests",
    "model": "analytic",
    "grid": {
        "node_counts": [2, 8, 32],
        "lwp_fractions": [0.25, 0.75]
    },
    "columns": ["nodes", "pct_lwp", "gain"]
}"#;
const SPEC_UNITS: u64 = 6;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pim-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bind a service on an OS-assigned port and serve on a detached thread.
/// Returns the `host:port` to dial.
fn start(opts: &ServeOptions) -> String {
    let server = SweepServer::bind(opts).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    std::thread::spawn(move || {
        let _ = server.serve_forever();
    });
    addr
}

fn header_u64(resp: &client::ClientResponse, name: &str) -> u64 {
    resp.header(name)
        .unwrap_or_else(|| panic!("missing header {name}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric header {name}"))
}

/// The reference artifact: what direct in-process execution (and therefore the
/// CLI) produces for this spec under the daemon's default seed.
fn reference_artifact(seed: u64) -> String {
    let scenario = parse_spec(SPEC).expect("spec parses").into_scenario();
    scenario.run(&SeedPolicy::new(seed)).to_json()
}

#[test]
fn served_artifact_is_byte_identical_cold_and_warm() {
    let cache = temp_dir("roundtrip");
    let addr = start(&ServeOptions {
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    });

    let cold = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("cold request");
    assert_eq!(cold.status, 200);
    assert_eq!(header_u64(&cold, "X-Pim-Units"), SPEC_UNITS);
    assert_eq!(header_u64(&cold, "X-Pim-Cache-Misses"), SPEC_UNITS);
    assert_eq!(header_u64(&cold, "X-Pim-Cache-Hits"), 0);
    assert_eq!(
        String::from_utf8_lossy(&cold.body),
        reference_artifact(DEFAULT_SEED),
        "served artifact differs from direct execution"
    );

    // Warm: all hits, zero recomputation, byte-identical body.
    let warm = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("warm request");
    assert_eq!(warm.status, 200);
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Hits"), SPEC_UNITS);
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Misses"), 0);
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Recomputed"), 0);
    assert_eq!(warm.body, cold.body);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn memory_only_daemon_still_serves_warm_repeats() {
    // No --cache at all: the pool's in-memory results must carry the warmth.
    let addr = start(&ServeOptions::default());
    let cold = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("cold");
    let warm = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("warm");
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Hits"), SPEC_UNITS);
    assert_eq!(header_u64(&warm, "X-Pim-Cache-Misses"), 0);
    assert_eq!(warm.body, cold.body);
}

#[test]
fn concurrent_identical_submissions_compute_each_unit_exactly_once() {
    // N clients POST the same spec at the same instant to a fresh daemon.
    // Single-flight per unit digest means the summed accounting must show
    // exactly one miss per unit across ALL responses — the other N-1 clients
    // get hits — and every client receives byte-identical payloads.
    const CLIENTS: usize = 5;
    let cache = temp_dir("dedup");
    let addr = start(&ServeOptions {
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    });
    let barrier = std::sync::Barrier::new(CLIENTS);
    let responses: Vec<client::ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    client::request(&addr, "POST", "/run", &[], SPEC.as_bytes())
                        .expect("concurrent request")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (mut hits, mut misses, mut recomputed) = (0, 0, 0);
    for resp in &responses {
        assert_eq!(resp.status, 200);
        hits += header_u64(resp, "X-Pim-Cache-Hits");
        misses += header_u64(resp, "X-Pim-Cache-Misses");
        recomputed += header_u64(resp, "X-Pim-Cache-Recomputed");
        assert_eq!(resp.body, responses[0].body, "client payloads diverged");
    }
    assert_eq!(misses, SPEC_UNITS, "exactly one computation per unit key");
    assert_eq!(recomputed, 0);
    assert_eq!(hits, (CLIENTS as u64 - 1) * SPEC_UNITS);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn seed_override_readdresses_the_sweep() {
    let cache = temp_dir("seed");
    let addr = start(&ServeOptions {
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    });
    let base = client::request(&addr, "POST", "/run", &[], SPEC.as_bytes()).expect("base");
    let seeded =
        client::request(&addr, "POST", "/run?seed=99", &[], SPEC.as_bytes()).expect("seeded");
    assert_eq!(seeded.status, 200);
    assert_ne!(seeded.body, base.body, "seed override had no effect");
    assert_eq!(
        String::from_utf8_lossy(&seeded.body),
        reference_artifact(99)
    );
    // A different seed is a different key space: all misses, no hits against
    // the base-seed submission's entries.
    assert_eq!(header_u64(&seeded, "X-Pim-Cache-Misses"), SPEC_UNITS);
    assert_eq!(header_u64(&seeded, "X-Pim-Cache-Hits"), 0);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn progress_stream_narrates_and_ends_with_the_artifact() {
    let addr = start(&ServeOptions::default());
    let resp = client::request(&addr, "POST", "/run?progress=1", &[], SPEC.as_bytes())
        .expect("progress request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
    let text = String::from_utf8(resp.body).expect("ndjson is UTF-8");
    let events: Vec<Value> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("each line is one JSON event"))
        .collect();
    let kind = |e: &Value| match e {
        Value::Map(fields) => fields
            .iter()
            .find(|(k, _)| k == "event")
            .and_then(|(_, v)| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("event field"),
        _ => panic!("event is not an object"),
    };
    assert_eq!(kind(&events[0]), "start");
    let units = events.iter().filter(|e| kind(e) == "unit").count() as u64;
    assert_eq!(units, SPEC_UNITS, "one unit event per completed unit");
    assert_eq!(kind(&events[events.len() - 2]), "done");
    assert_eq!(kind(&events[events.len() - 1]), "report");
}

#[test]
fn error_surface_is_stable() {
    let addr = start(&ServeOptions::default());
    // Liveness and catalog endpoints.
    let health = client::request(&addr, "GET", "/healthz", &[], b"").expect("healthz");
    assert_eq!((health.status, health.body.as_slice()), (200, &b"ok\n"[..]));
    let scenarios = client::request(&addr, "GET", "/scenarios", &[], b"").expect("scenarios");
    assert_eq!(scenarios.status, 200);
    assert!(String::from_utf8_lossy(&scenarios.body).contains("\"figure5\""));
    // A malformed spec is a 400 carrying the spec error, not a hung socket.
    let bad = client::request(&addr, "POST", "/run", &[], b"{\"schema_version\": 1}").expect("bad");
    assert_eq!(bad.status, 400);
    assert!(!bad.body.is_empty());
    // Bad query parameters are 400s that name the parameter.
    for target in ["/run?seed=banana", "/run?progress=2"] {
        let resp = client::request(&addr, "POST", target, &[], SPEC.as_bytes()).expect("query");
        assert_eq!(resp.status, 400, "{target}");
    }
    // Unknown path and wrong method.
    let missing = client::request(&addr, "GET", "/nope", &[], b"").expect("404");
    assert_eq!(missing.status, 404);
    let wrong = client::request(&addr, "GET", "/run", &[], b"").expect("405");
    assert_eq!(wrong.status, 405);
}

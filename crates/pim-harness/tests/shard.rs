//! Cross-shard conformance suite: `run --shard I/N` must be an *execution*
//! strategy, never an *observable* one.
//!
//! The contract under test: N same-host shard runs over the same catalog and seed,
//! each into its own cache, followed by `cache merge` and one unsharded run over
//! the merged cache, produce artifact files **byte-identical** to a plain
//! single-process run — and the accounting proves no unit was computed twice
//! (shard executed-sets are disjoint), none was skipped (their union is exactly
//! the single-process cache population), and the merged-cache run recomputed
//! nothing (100% hits).

use pim_harness::prelude::*;
use serde::Value;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pim-shard-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read_manifest(dir: &Path) -> Value {
    let text = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest exists");
    serde_json::value_from_str(&text).expect("manifest parses")
}

/// Sum one counter across the manifest's per-scenario cache block.
fn manifest_total(manifest: &Value, field: &str) -> u64 {
    let Some(Value::Seq(per)) = manifest.get("cache").and_then(|c| c.get("per_scenario")) else {
        panic!("manifest has no cache.per_scenario block");
    };
    per.iter()
        .map(|entry| entry.get(field).and_then(|v| v.as_f64()).expect(field) as u64)
        .sum()
}

/// The digests (entry file stems) present in a cache directory.
fn cache_digests(cache_dir: &Path) -> BTreeSet<String> {
    std::fs::read_dir(cache_dir.join("units"))
        .expect("cache units dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .map(|p| p.file_stem().unwrap().to_string_lossy().to_string())
        .collect()
}

/// The digests a shard run reports having executed, across all its scenarios.
fn executed_digests(outcome: &BatchOutcome) -> BTreeSet<String> {
    outcome
        .shard_scenarios
        .iter()
        .flat_map(|s| s.executed.iter().map(|u| u.digest.clone()))
        .collect()
}

/// The full catalog: every builtin plus every shipped preset spec.
fn full_registry() -> Registry {
    let specs_dir =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let mut registry = Registry::builtin();
    register_specs(&mut registry, load_specs(&specs_dir).expect("presets load"))
        .expect("presets register");
    registry
}

/// Run the whole N-shard protocol and verify every clause of the contract.
/// `shard_jobs[i]` is the `--jobs` value shard `i+1` runs with, so one pass can
/// cover several worker counts (claim order must never reach the partition).
fn check_sharded_protocol(registry: &Registry, names: &[&str], base: &Path, shard_jobs: &[usize]) {
    let count = shard_jobs.len() as u32;

    // Baseline: one ordinary single-process run, cold cache.
    let single_out = base.join("single");
    let single_cache = base.join("single-cache");
    let baseline = run_batch(
        registry,
        names,
        &BatchOptions {
            jobs: 8,
            out_dir: Some(single_out.clone()),
            cache_dir: Some(single_cache.clone()),
            ..Default::default()
        },
    )
    .expect("single-process batch runs");
    assert!(baseline.shard.is_none());
    let all_units = cache_digests(&single_cache);
    let units_total = all_units.len() as u64;
    assert!(units_total > 0);

    // N shard runs, each into its own cache and out dir, at its own job count.
    let shards: Vec<BatchOutcome> = shard_jobs
        .iter()
        .enumerate()
        .map(|(i, &jobs)| {
            let index = i as u32 + 1;
            run_batch(
                registry,
                names,
                &BatchOptions {
                    jobs,
                    out_dir: Some(base.join(format!("shard-{index}/out"))),
                    cache_dir: Some(base.join(format!("shard-{index}/cache"))),
                    shard: Some(ShardSpec::new(index, count).unwrap()),
                    ..Default::default()
                },
            )
            .expect("shard batch runs")
        })
        .collect();

    // Accounting, per shard: no reports, a manifest shard block, and — on a cold
    // per-shard cache — exactly one miss per executed unit.
    let mut executed_sets: Vec<BTreeSet<String>> = Vec::new();
    for (i, outcome) in shards.iter().enumerate() {
        let index = i as u32 + 1;
        assert!(
            outcome.reports.is_empty(),
            "shard {index} assembled reports"
        );
        let executed = executed_digests(outcome);
        let misses: u64 = outcome.cache_counts.iter().map(|c| c.misses).sum();
        assert_eq!(
            misses,
            executed.len() as u64,
            "shard {index}/{count}: cold shard must miss exactly its executed units"
        );
        let manifest = read_manifest(&base.join(format!("shard-{index}/out")));
        let block = manifest.get("shard").expect("manifest has a shard block");
        assert_eq!(block.get("index"), Some(&Value::U64(u64::from(index))));
        assert_eq!(block.get("count"), Some(&Value::U64(u64::from(count))));
        assert_eq!(manifest_total(&manifest, "misses"), misses);
        // The shard's cache holds exactly what it executed.
        assert_eq!(
            cache_digests(&base.join(format!("shard-{index}/cache"))),
            executed,
            "shard {index}/{count} cache content != its executed set"
        );
        executed_sets.push(executed);
    }

    // Disjointness: no unit computed twice across shards.
    for i in 0..executed_sets.len() {
        for j in i + 1..executed_sets.len() {
            let overlap: Vec<&String> = executed_sets[i].intersection(&executed_sets[j]).collect();
            assert!(
                overlap.is_empty(),
                "shards {}/{count} and {}/{count} both executed {} unit(s)",
                i + 1,
                j + 1,
                overlap.len()
            );
        }
    }
    // Coverage: the union is exactly the single-process unit population, so every
    // unit was computed exactly once across the N shards.
    let union: BTreeSet<String> = executed_sets.iter().flatten().cloned().collect();
    assert_eq!(union, all_units, "shards did not cover the sweep exactly");
    let executed_total: u64 = executed_sets.iter().map(|s| s.len() as u64).sum();
    assert_eq!(executed_total, units_total);
    // Both sides of the per-scenario ledger agree as well.
    for outcome in &shards {
        for (s, b) in outcome.shard_scenarios.iter().zip(&baseline.reports) {
            assert_eq!(s.scenario, b.scenario, "scenario order drifted");
        }
        let total: u64 = outcome.shard_scenarios.iter().map(|s| s.units_total).sum();
        assert_eq!(total, units_total, "shards disagree on the sweep size");
    }

    // Merge the shard caches and re-run unsharded over the merged cache.
    let merged_cache = base.join("merged-cache");
    let sources: Vec<PathBuf> = (1..=count)
        .map(|i| base.join(format!("shard-{i}/cache")))
        .collect();
    let merge = cache_merge(&merged_cache, &sources).expect("merge succeeds");
    assert_eq!(
        merge.copied, units_total,
        "merge copied a different unit count"
    );
    assert_eq!(merge.skipped_invalid, 0);
    assert_eq!(merge.entries_after, units_total);
    assert_eq!(cache_digests(&merged_cache), all_units);

    let merged_out = base.join("merged-out");
    let merged = run_batch(
        registry,
        names,
        &BatchOptions {
            jobs: 8,
            out_dir: Some(merged_out.clone()),
            cache_dir: Some(merged_cache.clone()),
            ..Default::default()
        },
    )
    .expect("merged-cache batch runs");
    // 100% hits: the merged cache recomputes nothing.
    let hits: u64 = merged.cache_counts.iter().map(|c| c.hits).sum();
    let misses: u64 = merged.cache_counts.iter().map(|c| c.misses).sum();
    let recomputed: u64 = merged.cache_counts.iter().map(|c| c.recomputed).sum();
    assert_eq!(
        (hits, misses, recomputed),
        (units_total, 0, 0),
        "merged-cache run was not all-hits"
    );

    // The headline clause: every artifact file byte-identical to the
    // single-process run. (The manifests legitimately differ — cold misses vs
    // warm hits — which is exactly why they are accounting, not artifacts.)
    for name in names {
        let file = format!("{name}.json");
        let a = std::fs::read(single_out.join(&file)).expect("baseline artifact exists");
        let b = std::fs::read(merged_out.join(&file)).expect("merged artifact exists");
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "artifact '{file}' differs between single-process and sharded+merged runs"
        );
    }
}

/// Two shards over the full catalog (all builtins + all shipped preset specs),
/// one shard at `--jobs 1` and the other at `--jobs 8`, so byte-identity is
/// proven across worker counts in the same pass.
#[test]
fn two_shards_merge_to_byte_identical_artifacts() {
    let registry = full_registry();
    let names = registry.names();
    assert!(names.len() >= 20, "catalog shrank to {}", names.len());
    let base = temp_base("two");
    check_sharded_protocol(&registry, &names, &base, &[1, 8]);
    let _ = std::fs::remove_dir_all(&base);
}

/// Three shards over the builtin catalog: the protocol holds for N > 2 and for
/// scenarios whose unit counts do not divide N.
#[test]
fn three_shards_merge_to_byte_identical_artifacts() {
    let registry = Registry::builtin();
    let names = registry.names();
    let base = temp_base("three");
    check_sharded_protocol(&registry, &names, &base, &[2, 2, 2]);
    let _ = std::fs::remove_dir_all(&base);
}

/// Sharding every builtin individually: each scenario can be partitioned on its
/// own (every builtin keys all of its units), and a shard that owns zero units of
/// a small scenario still succeeds with an empty executed set.
#[test]
fn every_builtin_scenario_is_shardable() {
    let registry = Registry::builtin();
    let base = temp_base("each");
    for name in registry.names() {
        let outcome = run_batch(
            &registry,
            &[name],
            &BatchOptions {
                jobs: 2,
                cache_dir: Some(base.join("cache")),
                shard: Some(ShardSpec::new(1, 5).unwrap()),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("scenario '{name}' cannot be sharded: {e}"));
        assert_eq!(outcome.shard_scenarios.len(), 1);
        let s = &outcome.shard_scenarios[0];
        assert!(s.executed.len() as u64 <= s.units_total);
    }
    let _ = std::fs::remove_dir_all(&base);
}

//! Property-based tests of the spec deserializer (vendored proptest, pinned seeds).
//!
//! Two families of properties:
//!
//! 1. **Round-trip**: any valid [`ScenarioSpec`] survives serialize → parse exactly
//!    (the canonical JSON form is lossless, including shortest-round-trip floats);
//! 2. **Rejection**: structured corruptions of a valid spec — bad schema versions,
//!    unknown model families, empty grid axes, zero node counts, `NaN`/∞ fractions —
//!    are rejected by the parser, whatever the surrounding spec looks like.

use pim_core::prelude::SystemConfig;
use pim_harness::spec::{
    parse_spec, AnalyticMode, AnalyticSpec, MeasuredSpec, ModelSpec, ParcelsSpec, ScenarioSpec,
    SeedMode,
};
use pim_workload::AddressPattern;
use proptest::prelude::*;
use serde::{Serialize, Value};

fn fractions() -> impl Strategy<Value = Vec<f64>> {
    collection::vec(0.0f64..1.0, 1..4)
}

fn counts() -> impl Strategy<Value = Vec<usize>> {
    collection::vec(1usize..64, 1..4)
}

fn analytic_model() -> impl Strategy<Value = ModelSpec> {
    (
        counts(),
        fractions(),
        fractions(),
        fractions(),
        0u32..2,
        1_000u64..10_000,
    )
        .prop_map(
            |(node_counts, lwp_fractions, p_miss, memory_mix, mode_kind, sim_ops)| {
                ModelSpec::Analytic(AnalyticSpec {
                    base: SystemConfig::table1(),
                    mode: if mode_kind == 0 {
                        AnalyticMode::Expected
                    } else {
                        AnalyticMode::Simulated {
                            sim_ops,
                            ops_per_event: 64,
                        }
                    },
                    node_counts,
                    lwp_fractions,
                    p_miss,
                    memory_mix,
                })
            },
        )
}

fn parcels_model() -> impl Strategy<Value = ModelSpec> {
    (
        counts(),
        collection::vec(1usize..32, 1..3),
        collection::vec(0.0f64..5_000.0, 1..3),
        fractions(),
        collection::vec(0.0f64..64.0, 1..3),
    )
        .prop_map(
            |(node_counts, parallelisms, latencies, remote_fractions, overheads)| {
                ModelSpec::Parcels(ParcelsSpec {
                    base: ParcelsSpec_default_base(),
                    memory_mix: 0.3,
                    node_counts,
                    parallelisms,
                    latencies,
                    remote_fractions,
                    overheads,
                })
            },
        )
}

/// The parcels base the parser resolves (`ParcelsSpec::default_base` is private, but
/// its canonical serialization pins these fields): library defaults with the
/// figure-11 horizon and the mix rebuilt from the default 0.3 memory-mix scalar.
#[allow(non_snake_case)]
fn ParcelsSpec_default_base() -> pim_parcels::prelude::ParcelConfig {
    pim_parcels::prelude::ParcelConfig {
        mix: pim_workload::InstructionMix::with_memory_fraction(0.3),
        horizon_cycles: 500_000.0,
        ..Default::default()
    }
}

fn pattern() -> impl Strategy<Value = AddressPattern> {
    (0u32..3, 1u64..256, 1u64..64, 0.0f64..2.0).prop_map(|(kind, stride, lines, exponent)| {
        match kind {
            0 => AddressPattern::Sequential { stride },
            1 => AddressPattern::UniformRandom {
                footprint: 64 * lines,
                line: 64,
            },
            _ => AddressPattern::Zipf {
                footprint: 64 * lines,
                line: 64,
                exponent,
            },
        }
    })
}

fn measured_model() -> impl Strategy<Value = ModelSpec> {
    (
        1_000u64..50_000,
        collection::vec(pattern(), 1..4),
        fractions(),
    )
        .prop_map(|(ops, patterns, memory_fractions)| {
            ModelSpec::Measured(MeasuredSpec {
                ops,
                cache_bytes: 64 * 1024,
                cache_line_bytes: 64,
                cache_ways: 4,
                bank_rows: 1024,
                patterns,
                memory_fractions,
            })
        })
}

fn valid_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        0u64..1_000_000,
        1usize..4,
        (0u32..2, 0u64..1_000_000),
        0u32..3,
        (analytic_model(), parcels_model(), measured_model()),
    )
        .prop_map(
            |(id, replications, (seed_kind, seed_value), family, models)| {
                let model = match family {
                    0 => models.0,
                    1 => models.1,
                    _ => models.2,
                };
                ScenarioSpec {
                    name: format!("gen_spec_{id}"),
                    description: format!("generated spec {id}"),
                    replications,
                    seed: if seed_kind == 0 {
                        SeedMode::Derived
                    } else {
                        SeedMode::Fixed(seed_value)
                    },
                    columns: None,
                    model,
                }
            },
        )
}

/// Replace the value at `spec_value[key]` (and optionally a nested key) — panics if
/// the path does not exist, which would mean the canonical form changed shape.
fn with_field(spec: &ScenarioSpec, path: &[&str], replacement: Value) -> String {
    fn set(v: &mut Value, path: &[&str], replacement: Value) {
        let Value::Map(entries) = v else {
            panic!("path walks through a non-map")
        };
        let slot = entries
            .iter_mut()
            .find(|(k, _)| k == path[0])
            .unwrap_or_else(|| panic!("canonical spec form lost field '{}'", path[0]));
        if path.len() == 1 {
            slot.1 = replacement;
        } else {
            set(&mut slot.1, &path[1..], replacement);
        }
    }
    let mut v = spec.to_value();
    set(&mut v, path, replacement);
    serde_json::to_string(&v).unwrap()
}

proptest! {
    /// serialize → parse is the identity on valid specs.
    #[test]
    fn round_trip(spec in valid_spec()) {
        prop_assert!(spec.validate().is_ok(), "generated spec invalid: {:?}", spec.validate());
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back = parse_spec(&json);
        prop_assert!(back.is_ok(), "round-trip parse failed: {:?}\n{json}", back);
        prop_assert_eq!(back.unwrap(), spec);
    }

    /// Any schema version other than 1 is rejected, whatever the rest says.
    #[test]
    fn bad_schema_versions_are_rejected(spec in valid_spec(), version in 2u64..1_000) {
        let json = with_field(&spec, &["schema_version"], Value::U64(version));
        let err = parse_spec(&json).unwrap_err();
        prop_assert!(err.contains("schema_version"), "{err}");
    }

    /// Unknown model families are rejected with the list of known families.
    #[test]
    fn unknown_families_are_rejected(spec in valid_spec(), tag in 0u64..1_000) {
        let json = with_field(&spec, &["model"], Value::Str(format!("family{tag}")));
        let err = parse_spec(&json).unwrap_err();
        prop_assert!(err.contains("unknown model family"), "{err}");
    }

    /// Emptying any grid axis is rejected (empty grids must never reach the runner).
    #[test]
    fn empty_grid_axes_are_rejected(spec in valid_spec()) {
        let axes: &[&str] = match &spec.model {
            ModelSpec::Analytic(_) => &["node_counts", "lwp_fractions", "p_miss", "memory_mix"],
            ModelSpec::Parcels(_) => &[
                "node_counts", "parallelisms", "latencies", "remote_fractions", "overheads",
            ],
            ModelSpec::Measured(_) => &["patterns", "memory_fractions"],
        };
        for axis in axes {
            let json = with_field(&spec, &["grid", axis], Value::Seq(vec![]));
            prop_assert!(parse_spec(&json).is_err(), "empty grid.{axis} accepted");
        }
    }

    /// A zero node count anywhere in the axis is rejected.
    #[test]
    fn zero_node_counts_are_rejected(spec in valid_spec()) {
        if matches!(spec.model, ModelSpec::Measured(_)) {
            continue; // no node axis in the measured family
        }
        let json = with_field(
            &spec,
            &["grid", "node_counts"],
            Value::Seq(vec![Value::U64(4), Value::U64(0)]),
        );
        let err = parse_spec(&json).unwrap_err();
        prop_assert!(err.contains("node_counts"), "{err}");
    }

    /// NaN (JSON null) and ∞ fractions are rejected on every fraction axis.
    #[test]
    fn non_finite_fractions_are_rejected(spec in valid_spec()) {
        let axis = match &spec.model {
            ModelSpec::Analytic(_) => "lwp_fractions",
            ModelSpec::Parcels(_) => "remote_fractions",
            ModelSpec::Measured(_) => "memory_fractions",
        };
        // JSON spells NaN as null; 1e999 parses to +∞.
        let nan = with_field(&spec, &["grid", axis], Value::Seq(vec![Value::Null]));
        prop_assert!(parse_spec(&nan).is_err(), "NaN {axis} accepted");
        let inf = with_field(&spec, &["grid", axis], Value::Seq(vec![Value::F64(f64::INFINITY)]));
        prop_assert!(parse_spec(&inf).is_err(), "infinite {axis} accepted");
        let oob = with_field(&spec, &["grid", axis], Value::Seq(vec![Value::F64(1.5)]));
        prop_assert!(parse_spec(&oob).is_err(), "out-of-range {axis} accepted");
    }

    /// Zero replications are rejected whatever the family.
    #[test]
    fn zero_replications_are_rejected(spec in valid_spec()) {
        let json = with_field(&spec, &["replications"], Value::U64(0));
        let err = parse_spec(&json).unwrap_err();
        prop_assert!(err.contains("replications"), "{err}");
    }
}

//! Integration tests of the pim-workload → pim-mem measured bridge: stream
//! determinism per seed, and measured statistics landing inside analytically
//! bounded ranges for uniform and hot-spot address patterns.

use desim::random::RandomStream;
use pim_harness::measure::{measure_stream, MeasureConfig};
use pim_mem::DramTiming;
use pim_workload::{AddressPattern, InstructionMix, OperationStream};

const CACHE_BYTES: u64 = 64 * 1024;
const FOOTPRINT: u64 = 1 << 20; // 16× the cache

fn config(pattern: AddressPattern) -> MeasureConfig {
    MeasureConfig::with_pattern(200_000, InstructionMix::table1(), pattern)
}

fn uniform() -> AddressPattern {
    AddressPattern::UniformRandom {
        footprint: FOOTPRINT,
        line: 64,
    }
}

fn hot_spot() -> AddressPattern {
    AddressPattern::Zipf {
        footprint: FOOTPRINT,
        line: 64,
        exponent: 1.2,
    }
}

/// The operation stream itself is a pure function of `(mix, pattern, seed)`: same
/// seed → identical operation sequence, different seed → different sequence.
#[test]
fn operation_streams_are_deterministic_per_seed() {
    let make = |seed: u64| {
        OperationStream::new(
            InstructionMix::table1(),
            uniform(),
            RandomStream::new(seed, 1),
        )
        .take_ops(10_000)
    };
    assert_eq!(make(7), make(7));
    assert_ne!(make(7), make(8));
}

/// The full measured pipeline (stream → cache → bank) reproduces bit-identical
/// statistics for a given seed — the property every spec-defined measured scenario
/// relies on for cross-`--jobs` byte identity.
#[test]
fn measured_stats_are_deterministic_per_seed() {
    for pattern in [
        uniform(),
        hot_spot(),
        AddressPattern::Sequential { stride: 64 },
    ] {
        let c = config(pattern);
        let a = measure_stream(&c, 0x5C_2004);
        let b = measure_stream(&c, 0x5C_2004);
        assert_eq!(a, b, "stats drifted across identical runs: {c:?}");
        assert_ne!(
            measure_stream(&c, 1),
            measure_stream(&c, 2),
            "seed does not reach the stream: {c:?}"
        );
    }
}

/// Uniform random over a footprint 16× the cache: the steady-state hit probability
/// is at most `cache_lines / footprint_lines` = 1/16, so the measured miss rate must
/// sit in [1 − 2·C/F, 1] — analytically bounded, not assumed.
#[test]
fn uniform_miss_rate_is_analytically_bounded() {
    let s = measure_stream(&config(uniform()), 11);
    let cache_fraction = CACHE_BYTES as f64 / FOOTPRINT as f64; // 1/16
    assert!(
        s.host_miss_rate >= 1.0 - 2.0 * cache_fraction,
        "uniform miss rate {} below the analytic floor {}",
        s.host_miss_rate,
        1.0 - 2.0 * cache_fraction
    );
    assert!(s.host_miss_rate <= 1.0);
    // The mix decides how many operations reference memory at all: 30% ± noise.
    let mem_fraction = s.memory_accesses as f64 / s.ops as f64;
    assert!(
        (mem_fraction - 0.30).abs() < 0.01,
        "memory fraction {mem_fraction}"
    );
}

/// A hot-spot (Zipf) stream over the same footprint concentrates references on a few
/// lines the cache can hold, so its miss rate must land well below uniform's.
#[test]
fn hot_spot_misses_less_than_uniform() {
    let uni = measure_stream(&config(uniform()), 11);
    let hot = measure_stream(&config(hot_spot()), 11);
    assert!(
        hot.host_miss_rate < uni.host_miss_rate - 0.1,
        "hot-spot miss rate {} not clearly below uniform {}",
        hot.host_miss_rate,
        uni.host_miss_rate
    );
}

/// Whatever the pattern, the bank's achieved bandwidth is bracketed by the DRAM
/// timing model: every page access costs between `page` (open row) and
/// `row + page` (closed row) nanoseconds.
#[test]
fn achieved_bandwidth_is_bounded_by_dram_timing() {
    let timing = DramTiming::default();
    let worst = timing.worst_case_bandwidth_gbit_per_s();
    let peak = timing.peak_bandwidth_gbit_per_s();
    for pattern in [
        uniform(),
        hot_spot(),
        AddressPattern::Sequential { stride: 64 },
    ] {
        let s = measure_stream(&config(pattern.clone()), 3);
        assert!(
            s.achieved_gbit_per_s >= worst * 0.999 && s.achieved_gbit_per_s <= peak * 1.001,
            "bandwidth {} outside [{worst}, {peak}] for {pattern:?}",
            s.achieved_gbit_per_s
        );
        assert!((0.0..=1.0).contains(&s.row_hit_rate));
        // Mean DRAM latency is likewise bracketed by the two access costs.
        assert!(
            s.mean_dram_latency_ns >= timing.page_access_ns * 0.999
                && s.mean_dram_latency_ns <= (timing.row_access_ns + timing.page_access_ns) * 1.001,
            "mean latency {} ns for {pattern:?}",
            s.mean_dram_latency_ns
        );
    }
}

/// The uniform stream scatters across rows (row-buffer hits rare); the hot-spot
/// stream re-references hot rows (more row-buffer hits), mirroring the paper's
/// locality story at the DRAM level. Note the cache inverts naive intuition here:
/// it absorbs the hot lines, so the *filtered* hot-spot stream can look less local —
/// what must hold analytically is only that uniform-over-many-rows stays near zero.
#[test]
fn row_buffer_locality_tracks_the_pattern() {
    let uni = measure_stream(&config(uniform()), 5);
    // 1 MiB over 256 B rows = 4096 row frames mapped onto 1024 bank rows: a random
    // sequence almost never lands on the open row twice in a row.
    assert!(
        uni.row_hit_rate < 0.05,
        "uniform row hit rate {}",
        uni.row_hit_rate
    );
    let seq = measure_stream(&config(AddressPattern::Sequential { stride: 64 }), 5);
    assert!(
        seq.row_hit_rate > 0.5,
        "sequential row hit rate {}",
        seq.row_hit_rate
    );
}

//! Cross-model consistency: the closed-form analytic model (`pim-analytic`) and the
//! discrete-event queuing path (`pim-core::PartitionStudy`) must agree on a shared
//! `(N, %WL)` grid.
//!
//! The paper quotes agreement "to an accuracy of between 5% and 18%" between its two
//! independently built tools; our two paths share parameter definitions, so the
//! residual is sampling noise and must sit *well inside* that band.

use pim_analytic::AnalyticModel;
use pim_core::prelude::*;
use pim_harness::prelude::*;

const NODE_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
const WL_FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// In expected-value mode the two implementations evaluate the same formulas, so they
/// must agree to rounding error on times, gains and relative times.
#[test]
fn expected_evaluator_matches_closed_form_exactly() {
    let model = AnalyticModel::table1();
    let study = PartitionStudy::table1();
    for nodes in NODE_COUNTS {
        for wl in WL_FRACTIONS {
            let p = study.evaluate(nodes, wl, EvalMode::Expected);
            let test_ns = model.test_time_ns(nodes as f64, wl);
            let gain = model.gain(nodes as f64, wl);
            let rel = model.time_relative(nodes as f64, wl);
            for (label, a, b) in [
                ("test_ns", p.test_ns, test_ns),
                ("control_ns", p.control_ns, model.control_time_ns()),
                ("gain", p.gain, gain),
                ("relative_time", p.relative_time, rel),
            ] {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "N={nodes} wl={wl}: {label} disagrees ({a} vs {b})"
                );
            }
        }
    }
}

/// In simulated mode the discrete-event path must track the closed form within the
/// paper's stated error band at every grid point (and much closer on average).
#[test]
fn simulated_path_agrees_with_analytic_within_the_papers_band() {
    let spec = SweepSpec {
        node_counts: NODE_COUNTS.to_vec(),
        lwp_fractions: WL_FRACTIONS.to_vec(),
    };
    let mode = EvalMode::Simulated {
        sim_ops: Some(200_000),
        ops_per_event: 64,
        seed: DEFAULT_SEED,
    };
    let sweep = run_sweep(SystemConfig::table1(), &spec, mode, 4);
    let model = AnalyticModel::table1();
    let mut errors = Vec::with_capacity(sweep.points.len());
    for p in &sweep.points {
        let analytic_ns = model.test_time_ns(p.nodes as f64, p.lwp_fraction);
        let err = (analytic_ns - p.test_ns).abs() / analytic_ns;
        assert!(
            err < 0.05,
            "N={} wl={}: simulated {} vs analytic {} ({:.1}% off; paper band is 5-18%)",
            p.nodes,
            p.lwp_fraction,
            p.test_ns,
            analytic_ns,
            err * 100.0
        );
        errors.push(err);
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 0.02, "mean relative error {mean} exceeds 2%");
}

/// The same contract holds end-to-end through the registry: the validation scenario's
/// headline metrics must stay inside the band at the pinned default seed.
#[test]
fn validation_scenario_metrics_stay_inside_the_band() {
    let registry = Registry::builtin();
    let report = registry
        .get("validation")
        .unwrap()
        .run(&SeedPolicy::default());
    let mean = report.metric("mean_relative_error").unwrap();
    let max = report.metric("max_relative_error").unwrap();
    assert!(mean < 0.02, "mean relative error {mean}");
    assert!(max < 0.05, "max relative error {max}");
    assert!(mean <= max);
}

//! Golden-file regression tests: pin the JSON artifacts of key scenarios at the
//! default seed, so a behavioural change anywhere in `desim`/`pim-core`/`pim-parcels`/
//! `pim-analytic` that moves the numbers fails loudly instead of silently corrupting
//! every downstream figure.
//!
//! Numeric fields compare with a per-field relative tolerance (see
//! [`pim_harness::golden`]); everything else must match exactly. To regenerate after
//! an intentional change:
//!
//! ```text
//! PIM_BLESS_GOLDENS=1 cargo test -p pim-harness --test golden
//! ```

use pim_harness::golden::{bless_requested, verify_or_bless_file, BLESS_ENV};
use pim_harness::prelude::*;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check_golden(name: &str) {
    let registry = Registry::builtin();
    let scenario = registry.get(name).expect("scenario is registered");
    let report = scenario.run(&SeedPolicy::default());
    let path = golden_path(name);
    let bless = bless_requested();

    // Deterministic scenarios normally match exactly; the relative tolerance absorbs
    // last-ulp formatting differences without hiding real drift.
    let tol = Tolerance {
        rtol: 1e-6,
        atol: 1e-9,
    };
    match verify_or_bless_file(&path, &report.to_json(), bless, tol) {
        Ok(()) => {
            if bless {
                eprintln!("blessed {}", path.display());
            }
        }
        Err(diffs) => panic!(
            "scenario '{name}' drifted from {} ({} mismatching fields):\n{}\n\
             if the change is intentional, re-bless with `{BLESS_ENV}=1 cargo test \
             -p pim-harness --test golden`",
            path.display(),
            diffs.len(),
            diffs
                .iter()
                .take(20)
                .cloned()
                .collect::<Vec<_>>()
                .join("\n")
        ),
    }
}

/// Every shipped preset spec (`examples/specs/*.json`) is pinned by a golden file
/// under `tests/golden/specs/`, at the default seed. This is what makes the preset
/// library a regression surface: a behavioural change in the spec compiler, the
/// measure bridge or any underlying model fails here instead of silently shifting
/// user-facing catalogs. Stale goldens (no matching preset) also fail.
#[test]
fn golden_spec_presets() {
    let specs_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let specs = pim_harness::spec::load_specs(&specs_dir).expect("presets load");
    assert!(
        specs.len() >= 7,
        "preset library shrank: {} specs",
        specs.len()
    );
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/specs");
    let bless = bless_requested();
    let tol = Tolerance {
        rtol: 1e-6,
        atol: 1e-9,
    };
    let mut names: Vec<String> = Vec::new();
    let mut drifted: Vec<String> = Vec::new();
    for spec in specs {
        names.push(spec.name.clone());
        let scenario = spec.into_scenario();
        let report = scenario.run(&SeedPolicy::default());
        let path = golden_dir.join(format!("{}.json", report.scenario));
        if let Err(diffs) = verify_or_bless_file(&path, &report.to_json(), bless, tol) {
            drifted.push(format!(
                "{}: {} mismatching fields, e.g. {}",
                report.scenario,
                diffs.len(),
                diffs.first().cloned().unwrap_or_default()
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "preset scenarios drifted from their goldens:\n{}\nif intentional, re-bless \
         with `{BLESS_ENV}=1 cargo test -p pim-harness --test golden`",
        drifted.join("\n")
    );
    // Every golden corresponds to a live preset — catch renamed/deleted specs.
    for entry in std::fs::read_dir(&golden_dir).expect("golden spec dir exists") {
        let path = entry.unwrap().path();
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        assert!(
            names.contains(&stem),
            "stale golden {} has no matching preset spec",
            path.display()
        );
    }
}

/// The batch manifest (schema v3: batch identity, the `shard` block — `null` for
/// this unsharded fixture — plus the cache accounting block) is pinned by a golden
/// file of its own. A deterministic fixture — two single-unit scenarios, default
/// seed, cold cache — exercises every field: schema version, base seed, scenario
/// list, shard block, and per-scenario hit/miss/recomputed counts (a cold cache
/// reports exactly one miss per unit). Stale-golden detection: the golden's
/// `schema_version` must equal the live `MANIFEST_SCHEMA_VERSION`, so bumping the
/// constant without re-blessing fails here by construction.
#[test]
fn golden_manifest_v3() {
    let registry = Registry::builtin();
    let base = std::env::temp_dir().join(format!("pim-golden-manifest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let out = run_batch(
        &registry,
        &["table1", "figure7"],
        &BatchOptions {
            jobs: 2,
            out_dir: Some(base.join("artifacts")),
            cache_dir: Some(base.join("cache")),
            ..Default::default()
        },
    )
    .expect("fixture batch runs");
    let manifest_path = out
        .written
        .last()
        .expect("manifest is written last")
        .clone();
    assert!(manifest_path.ends_with("manifest.json"));
    let actual = std::fs::read_to_string(&manifest_path).unwrap();
    let _ = std::fs::remove_dir_all(&base);

    let path = golden_path("manifest_v3");
    let bless = bless_requested();
    let tol = Tolerance {
        rtol: 1e-6,
        atol: 1e-9,
    };
    if let Err(diffs) = verify_or_bless_file(&path, &actual, bless, tol) {
        panic!(
            "manifest drifted from {} ({} mismatching fields):\n{}\n\
             if the change is intentional, re-bless with `{BLESS_ENV}=1 cargo test \
             -p pim-harness --test golden`",
            path.display(),
            diffs.len(),
            diffs.join("\n")
        );
    }
    // Stale-golden detection: the pinned file must carry the live schema version.
    let golden: serde::Value =
        serde_json::value_from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(
        golden.get("schema_version").and_then(|v| v.as_f64()),
        Some(f64::from(MANIFEST_SCHEMA_VERSION)),
        "golden manifest pins a different schema version than MANIFEST_SCHEMA_VERSION; \
         re-bless it"
    );
}

#[test]
fn golden_figure5() {
    check_golden("figure5");
}

#[test]
fn golden_figure11() {
    check_golden("figure11");
}

#[test]
fn golden_table1() {
    check_golden("table1");
}

#[test]
fn golden_validation() {
    check_golden("validation");
}

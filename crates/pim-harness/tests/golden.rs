//! Golden-file regression tests: pin the JSON artifacts of key scenarios at the
//! default seed, so a behavioural change anywhere in `desim`/`pim-core`/`pim-parcels`/
//! `pim-analytic` that moves the numbers fails loudly instead of silently corrupting
//! every downstream figure.
//!
//! Numeric fields compare with a per-field relative tolerance (see
//! [`pim_harness::golden`]); everything else must match exactly. To regenerate after
//! an intentional change:
//!
//! ```text
//! PIM_BLESS_GOLDENS=1 cargo test -p pim-harness --test golden
//! ```

use pim_harness::prelude::*;
use std::path::PathBuf;

/// Environment variable that switches the suite from *verify* to *regenerate*.
const BLESS_ENV: &str = "PIM_BLESS_GOLDENS";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check_golden(name: &str) {
    let registry = Registry::builtin();
    let scenario = registry.get(name).expect("scenario is registered");
    let report = scenario.run(&SeedPolicy::default());
    let actual_json = report.to_json();
    let path = golden_path(name);

    if std::env::var_os(BLESS_ENV).is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual_json).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }

    let golden_json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run `{BLESS_ENV}=1 cargo test -p pim-harness \
             --test golden` to create it",
            path.display()
        )
    });
    let expected = serde_json::value_from_str(&golden_json)
        .unwrap_or_else(|e| panic!("golden file {} is not valid JSON: {e}", path.display()));
    let actual = serde_json::value_from_str(&actual_json).expect("report JSON is valid");

    // Deterministic scenarios normally match exactly; the relative tolerance absorbs
    // last-ulp formatting differences without hiding real drift.
    let tol = Tolerance {
        rtol: 1e-6,
        atol: 1e-9,
    };
    let diffs = diff_json(&expected, &actual, tol);
    assert!(
        diffs.is_empty(),
        "scenario '{name}' drifted from {} ({} mismatching fields):\n{}\n\
         if the change is intentional, re-bless with `{BLESS_ENV}=1 cargo test -p pim-harness \
         --test golden`",
        path.display(),
        diffs.len(),
        diffs
            .iter()
            .take(20)
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn golden_figure5() {
    check_golden("figure5");
}

#[test]
fn golden_figure11() {
    check_golden("figure11");
}

#[test]
fn golden_table1() {
    check_golden("table1");
}

#[test]
fn golden_validation() {
    check_golden("validation");
}

//! Determinism suite: the harness's core contract is that artifacts are pure
//! functions of `(scenario, base seed)` — independent of thread count, scheduling,
//! batch composition and request order.

use pim_harness::prelude::*;

/// Every registered scenario, run twice with the same seed (once per batch, with
/// different worker counts), must produce byte-identical artifacts — the equivalent
/// of `pim-tradeoffs run --all --jobs 1` vs `--jobs 8`. Under the work-stealing
/// runner the two batches execute their flattened unit lists in completely different
/// interleavings, so this catches plain nondeterminism (unseeded RNG,
/// iteration-order dependence), thread-order nondeterminism, and any unit whose
/// stream depends on claim order rather than its grid index. The comparison covers
/// the on-disk files (every `<scenario>.json` plus `manifest.json`), not just the
/// in-memory reports.
#[test]
fn run_all_artifacts_are_byte_identical_across_job_counts() {
    let registry = Registry::builtin();
    let names = registry.names();
    let base = std::env::temp_dir().join(format!("pim-determinism-{}", std::process::id()));
    let run = |jobs: usize, sub: &str| {
        let dir = base.join(sub);
        let outcome = run_batch(
            &registry,
            &names,
            &BatchOptions {
                jobs,
                out_dir: Some(dir.clone()),
                ..Default::default()
            },
        )
        .expect("batch runs");
        assert_eq!(outcome.reports.len(), registry.len());
        // One artifact per scenario plus the manifest.
        assert_eq!(outcome.written.len(), registry.len() + 1);
        dir
    };
    let serial = run(1, "jobs1");
    let parallel = run(8, "jobs8");
    let mut files: Vec<String> = names.iter().map(|n| format!("{n}.json")).collect();
    files.push("manifest.json".to_string());
    for file in files {
        let a = std::fs::read(serial.join(&file)).expect("jobs=1 artifact exists");
        let b = std::fs::read(parallel.join(&file)).expect("jobs=8 artifact exists");
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "artifact '{file}' differs between --jobs 1 and --jobs 8"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Spec-defined scenarios (the shipped presets) honour the same contract: loading
/// `examples/specs/` into the registry and running every spec at `--jobs 1` and
/// `--jobs 8` produces byte-identical artifact files. This covers all three model
/// families (analytic expected + simulated, parcels DES, measured streams) at
/// unit granularity under completely different work-stealing interleavings.
#[test]
fn spec_scenarios_are_byte_identical_across_job_counts() {
    let specs_dir =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let build = || {
        let mut registry = Registry::builtin();
        let names = register_specs(&mut registry, load_specs(&specs_dir).expect("presets load"))
            .expect("presets register");
        (registry, names)
    };
    let (registry, names) = build();
    assert!(
        registry.len() >= 20,
        "catalog with presets loaded should reach 20+, got {}",
        registry.len()
    );
    let base = std::env::temp_dir().join(format!("pim-spec-determinism-{}", std::process::id()));
    let run = |jobs: usize, sub: &str| {
        let dir = base.join(sub);
        run_batch(
            &registry,
            &names,
            &BatchOptions {
                jobs,
                out_dir: Some(dir.clone()),
                ..Default::default()
            },
        )
        .expect("spec batch runs");
        dir
    };
    let serial = run(1, "jobs1");
    let parallel = run(8, "jobs8");
    for name in &names {
        let file = format!("{name}.json");
        let a = std::fs::read(serial.join(&file)).expect("jobs=1 artifact exists");
        let b = std::fs::read(parallel.join(&file)).expect("jobs=8 artifact exists");
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "spec artifact '{file}' differs between --jobs 1 and --jobs 8"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// `jobs: 0` (the [`BatchOptions`] default) must resolve to one worker per
/// available core.
#[test]
fn jobs_zero_resolves_to_available_parallelism() {
    assert_eq!(BatchOptions::default().jobs, 0);
    assert_eq!(
        resolve_jobs(BatchOptions::default().jobs),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    );
    assert_eq!(resolve_jobs(5), 5);
}

/// A scenario's artifact must not depend on which other scenarios share the batch or
/// in what order they were requested.
#[test]
fn request_order_does_not_change_artifacts() {
    let registry = Registry::builtin();
    // Cheap scenarios only: the full grid is covered by the batch test above.
    let forward = ["figure7", "table1", "ablation_nb", "bandwidth_claims"];
    let mut reverse = forward;
    reverse.reverse();
    let opts = BatchOptions {
        jobs: 2,
        ..Default::default()
    };
    let a = run_batch(&registry, &forward, &opts).unwrap();
    let b = run_batch(&registry, &reverse, &opts).unwrap();
    for report in &a.reports {
        let twin = b
            .reports
            .iter()
            .find(|r| r.scenario == report.scenario)
            .unwrap();
        assert_eq!(report.to_json(), twin.to_json(), "{}", report.scenario);
    }
}

/// The base seed must actually reach the stochastic scenarios: different seeds give
/// different tables (compare tables, not whole reports — the seed field itself
/// trivially differs).
#[test]
fn different_base_seeds_change_stochastic_results() {
    let registry = Registry::builtin();
    let scenario = registry.get("bandwidth_claims").unwrap();
    let a = scenario.run(&SeedPolicy::new(1));
    let b = scenario.run(&SeedPolicy::new(2));
    assert_ne!(
        serde_json::to_string(&a.tables).unwrap(),
        serde_json::to_string(&b.tables).unwrap(),
        "seed does not influence the trace-calibrated miss rates"
    );
    // ...while a purely analytic scenario is seed-independent by construction.
    let figure7 = registry.get("figure7").unwrap();
    let a = figure7.run(&SeedPolicy::new(1));
    let b = figure7.run(&SeedPolicy::new(2));
    assert_eq!(
        serde_json::to_string(&a.tables).unwrap(),
        serde_json::to_string(&b.tables).unwrap()
    );
}

//! Determinism suite: the harness's core contract is that artifacts are pure
//! functions of `(scenario, base seed)` — independent of thread count, scheduling,
//! batch composition and request order.

use pim_harness::prelude::*;

/// Every registered scenario, run twice with the same seed (once per batch, with
/// different worker counts), must produce byte-identical JSON. This catches both
/// plain nondeterminism (unseeded RNG, iteration-order dependence) and thread-order
/// nondeterminism in the batch runner itself.
#[test]
fn every_scenario_is_byte_identical_across_reruns_and_job_counts() {
    let registry = Registry::builtin();
    let names = registry.names();
    let run = |jobs: usize| {
        run_batch(
            &registry,
            &names,
            &BatchOptions {
                jobs,
                ..Default::default()
            },
        )
        .expect("batch runs")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.reports.len(), registry.len());
    for (a, b) in serial.reports.iter().zip(&parallel.reports) {
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "scenario '{}' produced different JSON on rerun (jobs=1 vs jobs=8)",
            a.scenario
        );
    }
}

/// A scenario's artifact must not depend on which other scenarios share the batch or
/// in what order they were requested.
#[test]
fn request_order_does_not_change_artifacts() {
    let registry = Registry::builtin();
    // Cheap scenarios only: the full grid is covered by the batch test above.
    let forward = ["figure7", "table1", "ablation_nb", "bandwidth_claims"];
    let mut reverse = forward;
    reverse.reverse();
    let opts = BatchOptions {
        jobs: 2,
        ..Default::default()
    };
    let a = run_batch(&registry, &forward, &opts).unwrap();
    let b = run_batch(&registry, &reverse, &opts).unwrap();
    for report in &a.reports {
        let twin = b
            .reports
            .iter()
            .find(|r| r.scenario == report.scenario)
            .unwrap();
        assert_eq!(report.to_json(), twin.to_json(), "{}", report.scenario);
    }
}

/// The base seed must actually reach the stochastic scenarios: different seeds give
/// different tables (compare tables, not whole reports — the seed field itself
/// trivially differs).
#[test]
fn different_base_seeds_change_stochastic_results() {
    let registry = Registry::builtin();
    let scenario = registry.get("bandwidth_claims").unwrap();
    let a = scenario.run(&SeedPolicy::new(1));
    let b = scenario.run(&SeedPolicy::new(2));
    assert_ne!(
        serde_json::to_string(&a.tables).unwrap(),
        serde_json::to_string(&b.tables).unwrap(),
        "seed does not influence the trace-calibrated miss rates"
    );
    // ...while a purely analytic scenario is seed-independent by construction.
    let figure7 = registry.get("figure7").unwrap();
    let a = figure7.run(&SeedPolicy::new(1));
    let b = figure7.run(&SeedPolicy::new(2));
    assert_eq!(
        serde_json::to_string(&a.tables).unwrap(),
        serde_json::to_string(&b.tables).unwrap()
    );
}

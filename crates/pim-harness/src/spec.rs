//! Declarative scenario specs: user-defined scenarios as data (schema v1).
//!
//! The registry's 13 builtins are hand-written Rust types frozen at the paper's
//! figures and tables. This module opens the catalog: a JSON **scenario spec**
//! describes a new design study as data — a model family, a parameter grid over
//! `SystemConfig`/`ParcelConfig`/workload fields, a replication count, a seed policy
//! and the output columns — and compiles into a [`crate::scenario::Scenario`] that
//! registers beside the builtins and decomposes through
//! [`crate::scenario::Scenario::plan`] into one work unit per (grid point ×
//! replication), so spec-defined scenarios ride the work-stealing batch runner at
//! exactly the same granularity and with the same determinism contract as the
//! builtins.
//!
//! # Spec format (schema v1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "parcel_scaling",
//!   "description": "work ratio across node counts and remote fractions",
//!   "model": "parcels",
//!   "replications": 1,
//!   "seed": "derived",
//!   "columns": null,
//!   "config": { "horizon_cycles": 300000.0 },
//!   "grid": {
//!     "node_counts": [2, 4, 8],
//!     "parallelisms": [8],
//!     "latencies": [1000.0],
//!     "remote_fractions": [0.2, 0.6]
//!   }
//! }
//! ```
//!
//! Three model families are supported:
//!
//! * `"analytic"` — the study-1 partitioning model (closed-form `expected` mode or
//!   the sampled queuing simulation), gridded over node counts, `%WL`, `Pmiss` and
//!   the memory mix;
//! * `"parcels"` — the study-2 discrete-event parcel simulation, gridded over node
//!   counts, parallelism, latency, remote fraction and parcel overhead;
//! * `"measured"` — the pim-workload → pim-mem bridge ([`crate::measure`]): synthetic
//!   operation streams driven through the host cache and DRAM bank models, gridded
//!   over address patterns and memory mixes.
//!
//! Parsing is *hard*: unknown fields, duplicate keys, empty grid axes, zero node
//! counts, non-finite numbers, out-of-range fractions, unknown model families and
//! unsupported schema versions are all rejected with a message naming the offending
//! field, mirroring the `SweepSpec` hardening in `pim-core`.
//!
//! # Seed policy
//!
//! `"seed": "derived"` (the default) gives the scenario the same name-derived stream
//! every builtin gets ([`SeedPolicy::scenario_seed`]), so `--seed` moves spec
//! scenarios and builtins together. `"seed": {"fixed": N}` pins the scenario seed to
//! `N` regardless of the batch's base seed. Either way each unit's stream is a pure
//! function of the scenario seed and the unit's flattened grid index
//! ([`unit_seed`]), never of thread scheduling — artifacts are byte-identical across
//! `--jobs` settings.

use crate::cache::UnitKeyer;
use crate::measure::{measure_stream, pattern_label, validate_pattern, MeasureConfig};
use crate::registry::Registry;
use crate::report::{ScenarioReport, Table};
use crate::scenario::{Scenario, ScenarioPlan, SeedPolicy};
use pim_core::prelude::{EvalMode, PartitionStudy, SystemConfig};
use pim_parcels::prelude::{evaluate_point, ParcelConfig};
use pim_workload::{AddressPattern, InstructionMix};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// Version of the spec schema this build understands. Bump on incompatible format
/// changes; parsing rejects any other value.
pub const SPEC_SCHEMA_VERSION: u32 = 1;

/// Ceiling on `grid points × replications` per spec: a typo like an extra grid axis
/// should fail at parse time, not swamp the batch runner.
pub const MAX_UNITS: usize = 10_000;

/// How a spec-defined scenario derives its seed from the batch seed policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// Derive from the batch base seed and the scenario name, like every builtin.
    Derived,
    /// Pin the scenario seed to this value, ignoring the batch base seed.
    Fixed(u64),
}

/// A parsed, validated scenario spec. Construct via [`parse_spec`] /
/// [`load_spec_file`]; every constructor validates, so a held `ScenarioSpec` is
/// always runnable.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name: registry key, artifact file name and seed-derivation input.
    pub name: String,
    /// One-line description, shown by `pim-tradeoffs list`.
    pub description: String,
    /// Independent replications per grid point (each gets its own derived stream).
    pub replications: usize,
    /// Seed policy (see the module docs).
    pub seed: SeedMode,
    /// Output column subset, in the requested order; `None` means every column the
    /// family provides.
    pub columns: Option<Vec<String>>,
    /// The model family and its parameter grid.
    pub model: ModelSpec,
}

/// The model family of a spec plus its family-specific configuration and grid.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Study-1 partitioning model (`"analytic"`).
    Analytic(AnalyticSpec),
    /// Study-2 parcel discrete-event simulation (`"parcels"`).
    Parcels(ParcelsSpec),
    /// Measured pim-workload → pim-mem bridge (`"measured"`).
    Measured(MeasuredSpec),
}

/// Evaluation mode of the analytic family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalyticMode {
    /// Closed-form expected values (seed-independent).
    Expected,
    /// The sampled queuing simulation.
    Simulated {
        /// Operations actually simulated per point (rescaled to the configured total).
        sim_ops: u64,
        /// Operations batched per simulation event.
        ops_per_event: u64,
    },
}

/// Grid and base configuration of an `"analytic"` spec.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticSpec {
    /// Base `SystemConfig` (Table 1 plus any `config` overrides). Its `p_miss` and
    /// `mix` fields are placeholders — both are grid axes, overridden per point.
    pub base: SystemConfig,
    /// Evaluation mode.
    pub mode: AnalyticMode,
    /// Test-system node counts (axis; all ≥ 1).
    pub node_counts: Vec<usize>,
    /// Lightweight-work fractions `%WL` in `[0, 1]` (axis).
    pub lwp_fractions: Vec<f64>,
    /// Host cache miss rates in `[0, 1]` (axis; defaults to Table 1's `[0.1]`).
    pub p_miss: Vec<f64>,
    /// Memory mixes `mix_l/s` in `[0, 1]` (axis; defaults to Table 1's `[0.3]`).
    pub memory_mix: Vec<f64>,
}

/// Grid and base configuration of a `"parcels"` spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ParcelsSpec {
    /// Base `ParcelConfig` (defaults plus any `config` overrides; the horizon
    /// defaults to 500k cycles, the figure-11 setting, rather than the library
    /// default of 2M, to keep spec grids affordable). Its `nodes`, `parallelism`,
    /// `latency_cycles`, `remote_fraction` and `parcel_overhead_cycles` fields are
    /// placeholders — all five are grid axes.
    pub base: ParcelConfig,
    /// The combined load/store fraction `base.mix` was built from. Stored separately
    /// because `InstructionMix::with_memory_fraction` splits the scalar 2:1 in
    /// floating point — recovering it from `base.mix.memory_fraction()` would not
    /// round-trip bit-exactly through the canonical JSON form.
    pub memory_mix: f64,
    /// Node counts (axis; all ≥ 1).
    pub node_counts: Vec<usize>,
    /// Degrees of parallelism (axis; all ≥ 1).
    pub parallelisms: Vec<usize>,
    /// One-way latencies in cycles (axis; finite, ≥ 0).
    pub latencies: Vec<f64>,
    /// Remote-access fractions in `[0, 1]` (axis).
    pub remote_fractions: Vec<f64>,
    /// Per-parcel handling overheads in cycles (axis; defaults to `[4.0]`).
    pub overheads: Vec<f64>,
}

/// Grid and base configuration of a `"measured"` spec.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredSpec {
    /// Operations drawn from the stream per unit.
    pub ops: u64,
    /// Host cache capacity in bytes.
    pub cache_bytes: u64,
    /// Host cache line size in bytes (power of two).
    pub cache_line_bytes: u64,
    /// Host cache associativity.
    pub cache_ways: usize,
    /// Rows in the DRAM bank.
    pub bank_rows: u64,
    /// Address patterns (axis), in pim-workload's externally-tagged JSON form, e.g.
    /// `{"UniformRandom": {"footprint": 1048576, "line": 64}}`.
    pub patterns: Vec<AddressPattern>,
    /// Memory mixes `mix_l/s` in `[0, 1]` (axis).
    pub memory_fractions: Vec<f64>,
}

/// Full column sets per family, in row order.
const ANALYTIC_COLUMNS: &[&str] = &[
    "nodes",
    "pct_lwp",
    "p_miss",
    "memory_mix",
    "replication",
    "gain",
    "relative_time",
    "control_ns",
    "test_ns",
];
const PARCELS_COLUMNS: &[&str] = &[
    "nodes",
    "parallelism",
    "latency_cycles",
    "remote_pct",
    "overhead_cycles",
    "replication",
    "ops_ratio",
    "test_idle_frac",
    "control_idle_frac",
];
const MEASURED_COLUMNS: &[&str] = &[
    "pattern",
    "memory_fraction",
    "replication",
    "memory_accesses",
    "host_miss_rate",
    "row_hit_rate",
    "mean_dram_latency_ns",
    "achieved_gbit_per_s",
];

impl ScenarioSpec {
    /// The family's wire name (`"analytic"` / `"parcels"` / `"measured"`).
    pub fn family(&self) -> &'static str {
        match self.model {
            ModelSpec::Analytic(_) => "analytic",
            ModelSpec::Parcels(_) => "parcels",
            ModelSpec::Measured(_) => "measured",
        }
    }

    /// Number of grid points (cartesian product of the family's axes). Saturates at
    /// `usize::MAX` on overflow, which [`validate`](Self::validate)'s size gate then
    /// rejects as above the cap — an absurd axis product must become an `Err`, not
    /// a wrapped small number that sneaks past the gate.
    pub fn grid_points(&self) -> usize {
        let product = |axes: &[usize]| {
            axes.iter()
                .fold(1usize, |acc, &len| acc.saturating_mul(len))
        };
        match &self.model {
            ModelSpec::Analytic(a) => product(&[
                a.node_counts.len(),
                a.lwp_fractions.len(),
                a.p_miss.len(),
                a.memory_mix.len(),
            ]),
            ModelSpec::Parcels(p) => product(&[
                p.node_counts.len(),
                p.parallelisms.len(),
                p.latencies.len(),
                p.remote_fractions.len(),
                p.overheads.len(),
            ]),
            ModelSpec::Measured(m) => product(&[m.patterns.len(), m.memory_fractions.len()]),
        }
    }

    /// Number of plan units (`grid points × replications`), saturating like
    /// [`grid_points`](Self::grid_points).
    pub fn units(&self) -> usize {
        self.grid_points().saturating_mul(self.replications)
    }

    /// The family's full column set.
    pub fn available_columns(&self) -> &'static [&'static str] {
        match self.model {
            ModelSpec::Analytic(_) => ANALYTIC_COLUMNS,
            ModelSpec::Parcels(_) => PARCELS_COLUMNS,
            ModelSpec::Measured(_) => MEASURED_COLUMNS,
        }
    }

    /// The columns a run will emit (the selected subset, or every column).
    pub fn output_columns(&self) -> Vec<&str> {
        match &self.columns {
            Some(cols) => cols.iter().map(String::as_str).collect(),
            None => self.available_columns().to_vec(),
        }
    }

    /// Validate every cross-field invariant. All constructors call this, so it only
    /// needs to be called directly on hand-assembled specs (e.g. in tests).
    pub fn validate(&self) -> Result<(), String> {
        validate_name(&self.name)?;
        if self.description.is_empty() {
            return Err("spec description must not be empty".into());
        }
        if self.replications == 0 {
            return Err("replications must be at least 1".into());
        }
        if let Some(cols) = &self.columns {
            if cols.is_empty() {
                return Err("columns, when given, must not be empty".into());
            }
            let available = self.available_columns();
            for c in cols {
                if !available.contains(&c.as_str()) {
                    return Err(format!(
                        "unknown column '{c}' for the {} family; available: {}",
                        self.family(),
                        available.join(", ")
                    ));
                }
            }
            for (i, c) in cols.iter().enumerate() {
                if cols[..i].contains(c) {
                    return Err(format!("column '{c}' listed twice"));
                }
            }
        }
        // Size gate first: the family validators enumerate every grid point, so an
        // absurd grid must be rejected before they run. (Empty axes — grid_points of
        // zero — are caught by the family validators, which name the empty axis.)
        if self.units() > MAX_UNITS {
            return Err(format!(
                "spec expands to {} units (grid points × replications), above the {} cap",
                self.units(),
                MAX_UNITS
            ));
        }
        match &self.model {
            ModelSpec::Analytic(a) => a.validate()?,
            ModelSpec::Parcels(p) => p.validate()?,
            ModelSpec::Measured(m) => m.validate()?,
        }
        Ok(())
    }

    /// Compile the spec into a registrable scenario.
    pub fn into_scenario(self) -> Box<dyn Scenario> {
        let params = self.to_value();
        Box::new(SpecScenario { spec: self, params })
    }

    /// The spec's cache fingerprint: the stable hash of its canonical JSON
    /// rendering. Any single-field edit — an axis value, a fraction, the model
    /// family, the replication count — changes this, which re-addresses every unit
    /// of the compiled scenario in the unit-result cache.
    pub fn fingerprint(&self) -> String {
        crate::cache::fingerprint_value(&self.to_value())
    }
}

/// Spec names become artifact file names and seed inputs, so keep them to a safe
/// alphabet and a sane length.
fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("spec name must not be empty".into());
    }
    if name.len() > 64 {
        return Err(format!("spec name '{name}' exceeds 64 characters"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
    {
        return Err(format!(
            "spec name '{name}' may only contain lowercase letters, digits, '_' and '-'"
        ));
    }
    Ok(())
}

/// Check one fraction-valued axis: non-empty, finite, in `[0, 1]`.
fn validate_fraction_axis(name: &str, values: &[f64]) -> Result<(), String> {
    if values.is_empty() {
        return Err(format!("grid.{name} must not be empty"));
    }
    for &v in values {
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(format!("grid.{name} values must lie in [0, 1], got {v}"));
        }
    }
    Ok(())
}

/// Check a count-valued axis: non-empty, all ≥ 1.
fn validate_count_axis(name: &str, values: &[usize]) -> Result<(), String> {
    if values.is_empty() {
        return Err(format!("grid.{name} must not be empty"));
    }
    if values.contains(&0) {
        return Err(format!("grid.{name} values must all be at least 1"));
    }
    Ok(())
}

impl AnalyticSpec {
    fn validate(&self) -> Result<(), String> {
        validate_count_axis("node_counts", &self.node_counts)?;
        validate_fraction_axis("lwp_fractions", &self.lwp_fractions)?;
        validate_fraction_axis("p_miss", &self.p_miss)?;
        validate_fraction_axis("memory_mix", &self.memory_mix)?;
        if let AnalyticMode::Simulated {
            sim_ops,
            ops_per_event,
        } = self.mode
        {
            if sim_ops == 0 || ops_per_event == 0 {
                return Err("simulated mode needs sim_ops ≥ 1 and ops_per_event ≥ 1".into());
            }
        }
        // Every grid point must produce a valid SystemConfig; the axes were
        // range-checked above, so this catches bad `config` overrides.
        for &pm in &self.p_miss {
            for &mx in &self.memory_mix {
                let mut config = self.base;
                config.p_miss = pm;
                config.mix = InstructionMix::with_memory_fraction(mx);
                config.validate().map_err(|e| {
                    format!("invalid analytic config at p_miss={pm}, mix={mx}: {e}")
                })?;
            }
        }
        Ok(())
    }

    /// Enumerate `(nodes, wl, p_miss, memory_mix)` points in row-major axis order.
    fn points(&self) -> Vec<(usize, f64, f64, f64)> {
        let mut out = Vec::with_capacity(
            self.node_counts.len()
                * self.lwp_fractions.len()
                * self.p_miss.len()
                * self.memory_mix.len(),
        );
        for &n in &self.node_counts {
            for &wl in &self.lwp_fractions {
                for &pm in &self.p_miss {
                    for &mx in &self.memory_mix {
                        out.push((n, wl, pm, mx));
                    }
                }
            }
        }
        out
    }
}

impl ParcelsSpec {
    /// The base configuration before overrides: library defaults with the
    /// figure-11 horizon.
    fn default_base() -> ParcelConfig {
        ParcelConfig {
            horizon_cycles: 500_000.0,
            ..Default::default()
        }
    }

    fn validate(&self) -> Result<(), String> {
        validate_count_axis("node_counts", &self.node_counts)?;
        validate_count_axis("parallelisms", &self.parallelisms)?;
        validate_fraction_axis("remote_fractions", &self.remote_fractions)?;
        if self.latencies.is_empty() {
            return Err("grid.latencies must not be empty".into());
        }
        if self.overheads.is_empty() {
            return Err("grid.overheads must not be empty".into());
        }
        // Delegate per-point range checking (finite latencies/overheads, positive
        // horizon, …) to ParcelConfig::validate on every grid combination.
        for config in self.configs() {
            config.validate().map_err(|e| {
                format!(
                    "invalid parcel config at nodes={}, parallelism={}, latency={}, \
                     remote_fraction={}, overhead={}: {e}",
                    config.nodes,
                    config.parallelism,
                    config.latency_cycles,
                    config.remote_fraction,
                    config.parcel_overhead_cycles
                )
            })?;
        }
        Ok(())
    }

    /// Enumerate the per-point configurations in row-major axis order.
    fn configs(&self) -> Vec<ParcelConfig> {
        let mut out = Vec::new();
        for &n in &self.node_counts {
            for &p in &self.parallelisms {
                for &l in &self.latencies {
                    for &r in &self.remote_fractions {
                        for &o in &self.overheads {
                            out.push(ParcelConfig {
                                nodes: n,
                                parallelism: p,
                                latency_cycles: l,
                                remote_fraction: r,
                                parcel_overhead_cycles: o,
                                ..self.base
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

impl MeasuredSpec {
    fn validate(&self) -> Result<(), String> {
        if self.patterns.is_empty() {
            return Err("grid.patterns must not be empty".into());
        }
        validate_fraction_axis("memory_fractions", &self.memory_fractions)?;
        for (i, pattern) in self.patterns.iter().enumerate() {
            validate_pattern(pattern).map_err(|e| format!("grid.patterns[{i}]: {e}"))?;
        }
        // Geometry checks via a probe config (pattern validity was covered above).
        self.measure_config(&self.patterns[0], self.memory_fractions[0])
            .validate()
    }

    fn measure_config(&self, pattern: &AddressPattern, memory_fraction: f64) -> MeasureConfig {
        MeasureConfig {
            ops: self.ops,
            mix: InstructionMix::with_memory_fraction(memory_fraction),
            pattern: pattern.clone(),
            cache_bytes: self.cache_bytes,
            cache_line_bytes: self.cache_line_bytes,
            cache_ways: self.cache_ways,
            bank_rows: self.bank_rows,
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing (hard-rejecting, field-by-field)
// ---------------------------------------------------------------------------

/// A map reader that tracks which keys were consumed, so unknown and duplicate
/// fields are rejected instead of silently ignored.
struct MapReader<'a> {
    ctx: &'a str,
    entries: &'a [(String, Value)],
    used: Vec<bool>,
}

impl<'a> MapReader<'a> {
    fn new(v: &'a Value, ctx: &'a str) -> Result<Self, String> {
        let Value::Map(entries) = v else {
            return Err(format!("{ctx} must be a JSON object"));
        };
        for (i, (k, _)) in entries.iter().enumerate() {
            if entries[..i].iter().any(|(k2, _)| k2 == k) {
                return Err(format!("{ctx} has duplicate field '{k}'"));
            }
        }
        Ok(MapReader {
            ctx,
            entries,
            used: vec![false; entries.len()],
        })
    }

    /// An empty reader for an absent optional section.
    fn empty(ctx: &'a str) -> Self {
        MapReader {
            ctx,
            entries: &[],
            used: Vec::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<&'a Value> {
        self.entries.iter().position(|(k, _)| k == key).map(|i| {
            self.used[i] = true;
            &self.entries[i].1
        })
    }

    fn require(&mut self, key: &str) -> Result<&'a Value, String> {
        self.get(key)
            .ok_or_else(|| format!("{} is missing required field '{key}'", self.ctx))
    }

    /// A typed optional field.
    fn opt<T: Deserialize>(&mut self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(default),
            Some(v) => T::from_value(v).map_err(|e| format!("{}.{key}: {e}", self.ctx)),
        }
    }

    /// A typed required field.
    fn field<T: Deserialize>(&mut self, key: &str) -> Result<T, String> {
        let v = self.require(key)?;
        T::from_value(v).map_err(|e| format!("{}.{key}: {e}", self.ctx))
    }

    fn finish(self) -> Result<(), String> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("{} has unknown field '{k}'", self.ctx));
            }
        }
        Ok(())
    }
}

/// Parse and validate a spec from its JSON text.
pub fn parse_spec(json: &str) -> Result<ScenarioSpec, String> {
    let value =
        serde_json::value_from_str(json).map_err(|e| format!("spec is not valid JSON: {e}"))?;
    spec_from_value(&value)
}

/// Parse and validate a spec from a JSON value tree.
pub fn spec_from_value(value: &Value) -> Result<ScenarioSpec, String> {
    let mut top = MapReader::new(value, "spec")?;
    let version: u64 = top.field("schema_version")?;
    if version != u64::from(SPEC_SCHEMA_VERSION) {
        return Err(format!(
            "unsupported spec schema_version {version}; this build understands {SPEC_SCHEMA_VERSION}"
        ));
    }
    let name: String = top.field("name")?;
    let description: String = top.field("description")?;
    let family: String = top.field("model")?;
    let replications: usize = top.opt("replications", 1)?;
    let seed = match top.get("seed") {
        None | Some(Value::Null) => SeedMode::Derived,
        Some(Value::Str(s)) if s == "derived" => SeedMode::Derived,
        Some(Value::Str(s)) => {
            return Err(format!(
                "spec.seed must be \"derived\" or {{\"fixed\": N}}, got \"{s}\""
            ))
        }
        Some(other) => {
            let mut m = MapReader::new(other, "spec.seed")?;
            let fixed: u64 = m.field("fixed")?;
            m.finish()?;
            SeedMode::Fixed(fixed)
        }
    };
    let columns: Option<Vec<String>> = match top.get("columns") {
        None | Some(Value::Null) => None,
        Some(v) => Some(Vec::<String>::from_value(v).map_err(|e| format!("spec.columns: {e}"))?),
    };
    let config_value = top.get("config");
    let grid_value = top.require("grid")?;
    let model = match family.as_str() {
        "analytic" => ModelSpec::Analytic(parse_analytic(config_value, grid_value)?),
        "parcels" => ModelSpec::Parcels(parse_parcels(config_value, grid_value)?),
        "measured" => ModelSpec::Measured(parse_measured(config_value, grid_value)?),
        other => {
            return Err(format!(
                "unknown model family '{other}'; known families: analytic, parcels, measured"
            ))
        }
    };
    top.finish()?;
    let spec = ScenarioSpec {
        name,
        description,
        replications,
        seed,
        columns,
        model,
    };
    spec.validate()?;
    Ok(spec)
}

fn config_reader<'a>(config: Option<&'a Value>) -> Result<MapReader<'a>, String> {
    match config {
        None | Some(Value::Null) => Ok(MapReader::empty("spec.config")),
        Some(v) => MapReader::new(v, "spec.config"),
    }
}

fn parse_analytic(config: Option<&Value>, grid: &Value) -> Result<AnalyticSpec, String> {
    let table1 = SystemConfig::table1();
    let mut c = config_reader(config)?;
    let base = SystemConfig {
        total_ops: c.opt("total_ops", table1.total_ops)?,
        hwp_cycle_ns: c.opt("hwp_cycle_ns", table1.hwp_cycle_ns)?,
        lwp_cycle_ns: c.opt("lwp_cycle_ns", table1.lwp_cycle_ns)?,
        hwp_memory_cycles: c.opt("hwp_memory_cycles", table1.hwp_memory_cycles)?,
        hwp_cache_cycles: c.opt("hwp_cache_cycles", table1.hwp_cache_cycles)?,
        lwp_memory_cycles: c.opt("lwp_memory_cycles", table1.lwp_memory_cycles)?,
        // Grid axes; the Table 1 values here are placeholders overridden per point.
        p_miss: table1.p_miss,
        mix: table1.mix,
    };
    let mode = match c.get("mode") {
        None | Some(Value::Null) => AnalyticMode::Expected,
        Some(Value::Str(s)) if s == "expected" => AnalyticMode::Expected,
        Some(Value::Str(s)) => {
            return Err(format!(
                "spec.config.mode must be \"expected\" or {{\"simulated\": …}}, got \"{s}\""
            ))
        }
        Some(v) => {
            let mut m = MapReader::new(v, "spec.config.mode")?;
            let sim = m.require("simulated")?;
            m.finish()?;
            let mut s = MapReader::new(sim, "spec.config.mode.simulated")?;
            let mode = AnalyticMode::Simulated {
                sim_ops: s.opt("sim_ops", 200_000)?,
                ops_per_event: s.opt("ops_per_event", 64)?,
            };
            s.finish()?;
            mode
        }
    };
    c.finish()?;
    let mut g = MapReader::new(grid, "spec.grid")?;
    let spec = AnalyticSpec {
        base,
        mode,
        node_counts: g.field("node_counts")?,
        lwp_fractions: g.field("lwp_fractions")?,
        p_miss: g.opt("p_miss", vec![table1.p_miss])?,
        memory_mix: g.opt("memory_mix", vec![table1.mix.memory_fraction()])?,
    };
    g.finish()?;
    Ok(spec)
}

fn parse_parcels(config: Option<&Value>, grid: &Value) -> Result<ParcelsSpec, String> {
    let defaults = ParcelsSpec::default_base();
    let mut c = config_reader(config)?;
    let memory_mix: f64 = c.opt("memory_mix", 0.3)?;
    if !memory_mix.is_finite() || !(0.0..=1.0).contains(&memory_mix) {
        return Err(format!(
            "spec.config.memory_mix must lie in [0, 1], got {memory_mix}"
        ));
    }
    let base = ParcelConfig {
        cycle_ns: c.opt("cycle_ns", defaults.cycle_ns)?,
        mix: InstructionMix::with_memory_fraction(memory_mix),
        local_memory_cycles: c.opt("local_memory_cycles", defaults.local_memory_cycles)?,
        horizon_cycles: c.opt("horizon_cycles", defaults.horizon_cycles)?,
        ..defaults
    };
    c.finish()?;
    let mut g = MapReader::new(grid, "spec.grid")?;
    let spec = ParcelsSpec {
        node_counts: g.field("node_counts")?,
        parallelisms: g.field("parallelisms")?,
        latencies: g.field("latencies")?,
        remote_fractions: g.field("remote_fractions")?,
        overheads: g.opt("overheads", vec![defaults.parcel_overhead_cycles])?,
        base,
        memory_mix,
    };
    g.finish()?;
    Ok(spec)
}

fn parse_measured(config: Option<&Value>, grid: &Value) -> Result<MeasuredSpec, String> {
    let mut c = config_reader(config)?;
    let ops = c.opt("ops", 100_000u64)?;
    let cache_bytes = c.opt("cache_bytes", 64 * 1024u64)?;
    let cache_line_bytes = c.opt("cache_line_bytes", 64u64)?;
    let cache_ways = c.opt("cache_ways", 4usize)?;
    let bank_rows = c.opt("bank_rows", 1024u64)?;
    c.finish()?;
    let mut g = MapReader::new(grid, "spec.grid")?;
    let patterns_value = g.require("patterns")?;
    let Value::Seq(items) = patterns_value else {
        return Err("spec.grid.patterns must be an array".into());
    };
    let mut patterns = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        patterns.push(parse_pattern(item).map_err(|e| format!("spec.grid.patterns[{i}]: {e}"))?);
    }
    let spec = MeasuredSpec {
        ops,
        cache_bytes,
        cache_line_bytes,
        cache_ways,
        bank_rows,
        patterns,
        memory_fractions: g.field("memory_fractions")?,
    };
    g.finish()?;
    Ok(spec)
}

/// Parse one externally-tagged address pattern with the same strictness as every
/// other spec section: exactly one known variant tag, and no unknown or duplicate
/// fields inside the payload (the derived `AddressPattern::from_value` would
/// silently ignore extras, breaking the "unknown fields are rejected" contract).
fn parse_pattern(v: &Value) -> Result<AddressPattern, String> {
    let Value::Map(entries) = v else {
        return Err(
            "pattern must be an object like {\"Sequential\": {\"stride\": 64}}; known \
             variants: Sequential, UniformRandom, Zipf"
                .into(),
        );
    };
    let [(tag, payload)] = entries.as_slice() else {
        return Err("pattern must have exactly one variant tag".into());
    };
    let mut p = MapReader::new(payload, "pattern payload")?;
    let pattern = match tag.as_str() {
        "Sequential" => AddressPattern::Sequential {
            stride: p.field("stride")?,
        },
        "UniformRandom" => AddressPattern::UniformRandom {
            footprint: p.field("footprint")?,
            line: p.field("line")?,
        },
        "Zipf" => AddressPattern::Zipf {
            footprint: p.field("footprint")?,
            line: p.field("line")?,
            exponent: p.field("exponent")?,
        },
        other => {
            return Err(format!(
                "unknown pattern variant '{other}'; known variants: Sequential, \
                 UniformRandom, Zipf"
            ))
        }
    };
    p.finish()?;
    Ok(pattern)
}

// ---------------------------------------------------------------------------
// Serialization (canonical form: every default resolved)
// ---------------------------------------------------------------------------

impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        let (config, grid) = match &self.model {
            ModelSpec::Analytic(a) => (
                Value::Map(vec![
                    ("total_ops".into(), Value::U64(a.base.total_ops)),
                    ("hwp_cycle_ns".into(), Value::F64(a.base.hwp_cycle_ns)),
                    ("lwp_cycle_ns".into(), Value::F64(a.base.lwp_cycle_ns)),
                    (
                        "hwp_memory_cycles".into(),
                        Value::F64(a.base.hwp_memory_cycles),
                    ),
                    (
                        "hwp_cache_cycles".into(),
                        Value::F64(a.base.hwp_cache_cycles),
                    ),
                    (
                        "lwp_memory_cycles".into(),
                        Value::F64(a.base.lwp_memory_cycles),
                    ),
                    (
                        "mode".into(),
                        match a.mode {
                            AnalyticMode::Expected => Value::Str("expected".into()),
                            AnalyticMode::Simulated {
                                sim_ops,
                                ops_per_event,
                            } => Value::Map(vec![(
                                "simulated".into(),
                                Value::Map(vec![
                                    ("sim_ops".into(), Value::U64(sim_ops)),
                                    ("ops_per_event".into(), Value::U64(ops_per_event)),
                                ]),
                            )]),
                        },
                    ),
                ]),
                Value::Map(vec![
                    ("node_counts".into(), a.node_counts.to_value()),
                    ("lwp_fractions".into(), a.lwp_fractions.to_value()),
                    ("p_miss".into(), a.p_miss.to_value()),
                    ("memory_mix".into(), a.memory_mix.to_value()),
                ]),
            ),
            ModelSpec::Parcels(p) => (
                Value::Map(vec![
                    ("cycle_ns".into(), Value::F64(p.base.cycle_ns)),
                    ("memory_mix".into(), Value::F64(p.memory_mix)),
                    (
                        "local_memory_cycles".into(),
                        Value::F64(p.base.local_memory_cycles),
                    ),
                    ("horizon_cycles".into(), Value::F64(p.base.horizon_cycles)),
                ]),
                Value::Map(vec![
                    ("node_counts".into(), p.node_counts.to_value()),
                    ("parallelisms".into(), p.parallelisms.to_value()),
                    ("latencies".into(), p.latencies.to_value()),
                    ("remote_fractions".into(), p.remote_fractions.to_value()),
                    ("overheads".into(), p.overheads.to_value()),
                ]),
            ),
            ModelSpec::Measured(m) => (
                Value::Map(vec![
                    ("ops".into(), Value::U64(m.ops)),
                    ("cache_bytes".into(), Value::U64(m.cache_bytes)),
                    ("cache_line_bytes".into(), Value::U64(m.cache_line_bytes)),
                    ("cache_ways".into(), Value::U64(m.cache_ways as u64)),
                    ("bank_rows".into(), Value::U64(m.bank_rows)),
                ]),
                Value::Map(vec![
                    (
                        "patterns".into(),
                        Value::Seq(m.patterns.iter().map(|p| p.to_value()).collect()),
                    ),
                    ("memory_fractions".into(), m.memory_fractions.to_value()),
                ]),
            ),
        };
        Value::Map(vec![
            (
                "schema_version".into(),
                Value::U64(u64::from(SPEC_SCHEMA_VERSION)),
            ),
            ("name".into(), Value::Str(self.name.clone())),
            ("description".into(), Value::Str(self.description.clone())),
            ("model".into(), Value::Str(self.family().into())),
            ("replications".into(), Value::U64(self.replications as u64)),
            (
                "seed".into(),
                match self.seed {
                    SeedMode::Derived => Value::Str("derived".into()),
                    SeedMode::Fixed(s) => Value::Map(vec![("fixed".into(), Value::U64(s))]),
                },
            ),
            (
                "columns".into(),
                match &self.columns {
                    None => Value::Null,
                    Some(cols) => cols.to_value(),
                },
            ),
            ("config".into(), config),
            ("grid".into(), grid),
        ])
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        spec_from_value(v).map_err(serde::Error::msg)
    }
}

// ---------------------------------------------------------------------------
// Compilation: ScenarioSpec → Scenario
// ---------------------------------------------------------------------------

/// The seed of flattened unit `index` (grid-point index × replications +
/// replication): the workspace's shared SplitMix64 mixer over the scenario seed and
/// the index, so units decorrelate and any scheduler reproduces the same streams.
pub fn unit_seed(scenario_seed: u64, index: usize) -> u64 {
    desim::random::mix_seed(scenario_seed, index as u64)
}

/// A compiled spec: implements [`Scenario`] over the spec's grid.
struct SpecScenario {
    spec: ScenarioSpec,
    /// The canonical spec rendering, embedded in reports as `params`.
    params: Value,
}

impl SpecScenario {
    fn scenario_seed(&self, seeds: &SeedPolicy) -> u64 {
        match self.spec.seed {
            SeedMode::Derived => seeds.scenario_seed(&self.spec.name),
            SeedMode::Fixed(s) => s,
        }
    }

    /// Indices of the selected columns within the family's full column set
    /// (validated at parse time, so the lookups cannot fail).
    fn selected_indices(&self) -> Vec<usize> {
        let available = self.spec.available_columns();
        self.spec
            .output_columns()
            .iter()
            .map(|c| {
                available
                    .iter()
                    .position(|a| a == c)
                    // audit:allow(unwrap-in-library): parse validated every requested column against this family
                    .expect("columns were validated against the family at parse time")
            })
            .collect()
    }
}

/// Shared assembly: filter full rows down to the selected columns and attach the
/// primary headline metric (max over the primary column).
#[allow(clippy::too_many_arguments)]
fn assemble_spec_report(
    name: &str,
    description: &str,
    seed: u64,
    params: Value,
    all_columns: &[&str],
    selected: &[usize],
    primary: (&str, usize),
    rows: Vec<Vec<Value>>,
) -> ScenarioReport {
    let (metric_name, metric_idx) = primary;
    let metric = rows
        .iter()
        .filter_map(|r| r[metric_idx].as_f64())
        .fold(f64::NEG_INFINITY, f64::max);
    let table = Table {
        name: name.to_string(),
        columns: selected
            .iter()
            .map(|&i| all_columns[i].to_string())
            .collect(),
        rows: rows
            .into_iter()
            .map(|full| selected.iter().map(|&i| full[i].clone()).collect())
            .collect(),
    };
    ScenarioReport::new(name, description, seed, params)
        .with_metric("units", table.rows.len() as f64)
        .with_metric(metric_name, metric)
        .with_table(table)
}

impl Scenario for SpecScenario {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn description(&self) -> &str {
        &self.spec.description
    }

    fn params(&self) -> Value {
        self.params.clone()
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = self.scenario_seed(seeds);
        let (name, description, params) = (self.name(), self.description(), self.params());
        // Keyed on the canonical spec rendering: any single-field edit re-addresses
        // every unit. The resolved seed (not the batch base seed) goes into the key,
        // so a fixed-seed spec legitimately shares entries across base seeds.
        let keyer = UnitKeyer::new(name, &params, seed);
        let selected = self.selected_indices();
        let reps = self.spec.replications;
        match &self.spec.model {
            ModelSpec::Analytic(a) => {
                let points = a.points();
                let mut units = Vec::with_capacity(points.len() * reps);
                for (pi, (n, wl, pm, mx)) in points.into_iter().enumerate() {
                    let mut config = a.base;
                    config.p_miss = pm;
                    config.mix = InstructionMix::with_memory_fraction(mx);
                    let mode = a.mode;
                    for rep in 0..reps {
                        let i = pi * reps + rep;
                        units.push((keyer.key(pi, rep), move || {
                            let eval = match mode {
                                AnalyticMode::Expected => EvalMode::Expected,
                                AnalyticMode::Simulated {
                                    sim_ops,
                                    ops_per_event,
                                } => EvalMode::Simulated {
                                    sim_ops: Some(sim_ops),
                                    ops_per_event,
                                    seed: unit_seed(seed, i),
                                },
                            };
                            let p = PartitionStudy::new(config).evaluate(n, wl, eval);
                            vec![
                                Value::U64(n as u64),
                                Value::F64(wl * 100.0),
                                Value::F64(pm),
                                Value::F64(mx),
                                Value::U64(rep as u64),
                                Value::F64(p.gain),
                                Value::F64(p.relative_time),
                                Value::F64(p.control_ns),
                                Value::F64(p.test_ns),
                            ]
                        }));
                    }
                }
                ScenarioPlan::cached_map_reduce(units, move |rows: Vec<Vec<Value>>| {
                    assemble_spec_report(
                        name,
                        description,
                        seed,
                        params,
                        ANALYTIC_COLUMNS,
                        &selected,
                        ("max_gain", 5),
                        rows,
                    )
                })
            }
            ModelSpec::Parcels(p) => {
                let configs = p.configs();
                let mut units = Vec::with_capacity(configs.len() * reps);
                for (pi, config) in configs.into_iter().enumerate() {
                    for rep in 0..reps {
                        let i = pi * reps + rep;
                        units.push((keyer.key(pi, rep), move || {
                            let point = evaluate_point(config, unit_seed(seed, i));
                            vec![
                                Value::U64(point.nodes as u64),
                                Value::U64(point.parallelism as u64),
                                Value::F64(point.latency_cycles),
                                Value::F64(point.remote_fraction * 100.0),
                                Value::F64(config.parcel_overhead_cycles),
                                Value::U64(rep as u64),
                                Value::F64(point.ops_ratio),
                                Value::F64(point.test_idle_fraction),
                                Value::F64(point.control_idle_fraction),
                            ]
                        }));
                    }
                }
                ScenarioPlan::cached_map_reduce(units, move |rows: Vec<Vec<Value>>| {
                    assemble_spec_report(
                        name,
                        description,
                        seed,
                        params,
                        PARCELS_COLUMNS,
                        &selected,
                        ("max_ops_ratio", 6),
                        rows,
                    )
                })
            }
            ModelSpec::Measured(m) => {
                let mut units = Vec::new();
                for (pat_i, pattern) in m.patterns.iter().enumerate() {
                    for (mix_i, &mx) in m.memory_fractions.iter().enumerate() {
                        let pi = pat_i * m.memory_fractions.len() + mix_i;
                        let config = m.measure_config(pattern, mx);
                        let label = pattern_label(pattern);
                        for rep in 0..reps {
                            let i = pi * reps + rep;
                            let config = config.clone();
                            let label = label.clone();
                            units.push((keyer.key(pi, rep), move || {
                                let s = measure_stream(&config, unit_seed(seed, i));
                                vec![
                                    Value::Str(label),
                                    Value::F64(mx),
                                    Value::U64(rep as u64),
                                    Value::U64(s.memory_accesses),
                                    Value::F64(s.host_miss_rate),
                                    Value::F64(s.row_hit_rate),
                                    Value::F64(s.mean_dram_latency_ns),
                                    Value::F64(s.achieved_gbit_per_s),
                                ]
                            }));
                        }
                    }
                }
                ScenarioPlan::cached_map_reduce(units, move |rows: Vec<Vec<Value>>| {
                    assemble_spec_report(
                        name,
                        description,
                        seed,
                        params,
                        MEASURED_COLUMNS,
                        &selected,
                        ("max_host_miss_rate", 4),
                        rows,
                    )
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Loading and registration
// ---------------------------------------------------------------------------

/// Load and validate one spec file.
pub fn load_spec_file(path: &Path) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read spec file {}: {e}", path.display()))?;
    parse_spec(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Enumerate the spec files a path names: the file itself, or every `*.json` in a
/// directory (sorted by file name so the resulting catalog order is stable). Lets
/// callers that want per-file error reporting (`pim-tradeoffs spec check`) load each
/// file individually instead of failing the whole directory on the first bad spec.
pub fn spec_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    let meta = std::fs::metadata(path)
        .map_err(|e| format!("cannot access spec path {}: {e}", path.display()))?;
    if meta.is_file() {
        return Ok(vec![path.to_path_buf()]);
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read spec directory {}: {e}", path.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "spec directory {} contains no .json files",
            path.display()
        ));
    }
    Ok(files)
}

/// Load specs from a path: a single `.json` file, or every `*.json` in a directory
/// (in [`spec_files`] order). Fail-fast: the first invalid spec aborts the load,
/// which is the right contract for `run --spec` (never run a half-loaded catalog).
pub fn load_specs(path: &Path) -> Result<Vec<ScenarioSpec>, String> {
    spec_files(path)?
        .iter()
        .map(|f| load_spec_file(f))
        .collect()
}

/// Compile and register every spec, returning the registered names in input order.
///
/// A name collision — with a builtin already in `registry` or between two specs —
/// surfaces as an `Err` naming the duplicate.
pub fn register_specs(
    registry: &mut Registry,
    specs: Vec<ScenarioSpec>,
) -> Result<Vec<String>, String> {
    let mut names = Vec::with_capacity(specs.len());
    for spec in specs {
        let name = spec.name.clone();
        registry.register(spec.into_scenario())?;
        names.push(name);
    }
    Ok(names)
}

/// [`register_specs`] over a spec path ([`spec_files`] enumeration), with
/// **file-aware** collision reporting: when two spec files in the load compile to
/// the same scenario name, the error names both paths — the registry's raw
/// duplicate message cannot, because registration happens after the paths are
/// gone. A collision with a builtin names the offending file.
pub fn register_spec_files(registry: &mut Registry, path: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut sources: Vec<(String, PathBuf)> = Vec::new();
    for file in spec_files(path)? {
        let spec = load_spec_file(&file)?;
        let name = spec.name.clone();
        if let Err(e) = registry.register(spec.into_scenario()) {
            return Err(match sources.iter().find(|(n, _)| *n == name) {
                Some((_, first)) => format!(
                    "duplicate scenario name '{name}': defined by both {} and {}",
                    first.display(),
                    file.display()
                ),
                None => format!("{}: {e}", file.display()),
            });
        }
        sources.push((name.clone(), file));
        names.push(name);
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_parcels_json() -> &'static str {
        r#"{
            "schema_version": 1,
            "name": "tiny_parcels",
            "description": "one-point parcel spec",
            "model": "parcels",
            "grid": {
                "node_counts": [2],
                "parallelisms": [4],
                "latencies": [100.0],
                "remote_fractions": [0.4]
            }
        }"#
    }

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = parse_spec(minimal_parcels_json()).unwrap();
        assert_eq!(spec.name, "tiny_parcels");
        assert_eq!(spec.replications, 1);
        assert_eq!(spec.seed, SeedMode::Derived);
        assert_eq!(spec.family(), "parcels");
        assert_eq!(spec.grid_points(), 1);
        assert_eq!(spec.units(), 1);
        assert_eq!(spec.output_columns(), PARCELS_COLUMNS.to_vec());
        let ModelSpec::Parcels(p) = &spec.model else {
            panic!("wrong family")
        };
        assert_eq!(p.overheads, vec![4.0]);
        assert!((p.base.horizon_cycles - 500_000.0).abs() < 1e-9);
    }

    #[test]
    fn canonical_form_round_trips() {
        let spec = parse_spec(minimal_parcels_json()).unwrap();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back = parse_spec(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn rejections_name_the_offending_field() {
        let cases: &[(&str, &str, &str)] = &[
            (
                "bad schema version",
                r#"{"schema_version": 2, "name": "x", "description": "d", "model": "parcels",
                    "grid": {"node_counts":[1],"parallelisms":[1],"latencies":[1.0],"remote_fractions":[0.1]}}"#,
                "schema_version",
            ),
            (
                "unknown family",
                r#"{"schema_version": 1, "name": "x", "description": "d", "model": "quantum",
                    "grid": {}}"#,
                "unknown model family",
            ),
            (
                "unknown top-level field",
                r#"{"schema_version": 1, "name": "x", "description": "d", "model": "parcels", "bogus": 1,
                    "grid": {"node_counts":[1],"parallelisms":[1],"latencies":[1.0],"remote_fractions":[0.1]}}"#,
                "unknown field 'bogus'",
            ),
            (
                "empty axis",
                r#"{"schema_version": 1, "name": "x", "description": "d", "model": "parcels",
                    "grid": {"node_counts":[],"parallelisms":[1],"latencies":[1.0],"remote_fractions":[0.1]}}"#,
                "node_counts",
            ),
            (
                "zero node count",
                r#"{"schema_version": 1, "name": "x", "description": "d", "model": "parcels",
                    "grid": {"node_counts":[0],"parallelisms":[1],"latencies":[1.0],"remote_fractions":[0.1]}}"#,
                "node_counts",
            ),
            (
                "nan fraction (json null)",
                r#"{"schema_version": 1, "name": "x", "description": "d", "model": "parcels",
                    "grid": {"node_counts":[1],"parallelisms":[1],"latencies":[1.0],"remote_fractions":[null]}}"#,
                "remote_fractions",
            ),
            (
                "infinite latency",
                r#"{"schema_version": 1, "name": "x", "description": "d", "model": "parcels",
                    "grid": {"node_counts":[1],"parallelisms":[1],"latencies":[1e999],"remote_fractions":[0.1]}}"#,
                "latency",
            ),
            (
                "bad name",
                r#"{"schema_version": 1, "name": "Bad Name", "description": "d", "model": "parcels",
                    "grid": {"node_counts":[1],"parallelisms":[1],"latencies":[1.0],"remote_fractions":[0.1]}}"#,
                "name",
            ),
            (
                "unknown column",
                r#"{"schema_version": 1, "name": "x", "description": "d", "model": "parcels",
                    "columns": ["no_such_column"],
                    "grid": {"node_counts":[1],"parallelisms":[1],"latencies":[1.0],"remote_fractions":[0.1]}}"#,
                "unknown column",
            ),
            (
                "zero replications",
                r#"{"schema_version": 1, "name": "x", "description": "d", "model": "parcels",
                    "replications": 0,
                    "grid": {"node_counts":[1],"parallelisms":[1],"latencies":[1.0],"remote_fractions":[0.1]}}"#,
                "replications",
            ),
        ];
        for (label, json, needle) in cases {
            let err = parse_spec(json).unwrap_err();
            assert!(
                err.contains(needle),
                "{label}: error '{err}' does not mention '{needle}'"
            );
        }
    }

    #[test]
    fn analytic_defaults_and_grid_axes() {
        let spec = parse_spec(
            r#"{
                "schema_version": 1,
                "name": "an",
                "description": "analytic grid",
                "model": "analytic",
                "grid": {
                    "node_counts": [1, 32],
                    "lwp_fractions": [0.0, 1.0],
                    "p_miss": [0.05, 0.2]
                }
            }"#,
        )
        .unwrap();
        let ModelSpec::Analytic(a) = &spec.model else {
            panic!("wrong family")
        };
        assert_eq!(a.mode, AnalyticMode::Expected);
        assert_eq!(a.memory_mix.len(), 1);
        assert!((a.memory_mix[0] - 0.3).abs() < 1e-12);
        assert_eq!(spec.grid_points(), 2 * 2 * 2);
    }

    #[test]
    fn measured_patterns_parse_and_validate() {
        let spec = parse_spec(
            r#"{
                "schema_version": 1,
                "name": "me",
                "description": "measured",
                "model": "measured",
                "config": {"ops": 5000},
                "grid": {
                    "patterns": [
                        {"Sequential": {"stride": 64}},
                        {"Zipf": {"footprint": 65536, "line": 64, "exponent": 1.1}}
                    ],
                    "memory_fractions": [0.3]
                }
            }"#,
        )
        .unwrap();
        assert_eq!(spec.grid_points(), 2);
        let err = parse_spec(
            r#"{
                "schema_version": 1,
                "name": "me",
                "description": "measured",
                "model": "measured",
                "grid": {
                    "patterns": [{"Sequential": {"stride": 0}}],
                    "memory_fractions": [0.3]
                }
            }"#,
        )
        .unwrap_err();
        assert!(err.contains("stride"), "{err}");
    }

    #[test]
    fn pattern_parsing_is_as_strict_as_the_rest_of_the_spec() {
        let template = |pattern: &str| {
            format!(
                r#"{{"schema_version": 1, "name": "me", "description": "d", "model": "measured",
                    "grid": {{"patterns": [{pattern}], "memory_fractions": [0.3]}}}}"#
            )
        };
        for (label, pattern, needle) in [
            (
                "unknown payload field",
                r#"{"Sequential": {"stride": 64, "bogus_knob": 7}}"#,
                "bogus_knob",
            ),
            (
                "unknown variant",
                r#"{"Strided": {"stride": 64}}"#,
                "unknown pattern variant",
            ),
            (
                "two variant tags",
                r#"{"Sequential": {"stride": 64}, "Zipf": {"footprint": 1024, "line": 64, "exponent": 1.0}}"#,
                "exactly one variant tag",
            ),
            (
                "missing payload field",
                r#"{"UniformRandom": {"footprint": 1024}}"#,
                "line",
            ),
            ("non-object pattern", r#""Sequential""#, "must be an object"),
        ] {
            let err = parse_spec(&template(pattern)).unwrap_err();
            assert!(err.contains(needle), "{label}: '{err}' lacks '{needle}'");
        }
    }

    #[test]
    fn unit_cap_rejects_runaway_grids() {
        let json = format!(
            r#"{{"schema_version": 1, "name": "big", "description": "d", "model": "analytic",
                "replications": 1000,
                "grid": {{"node_counts": [{}], "lwp_fractions": [0.5]}}}}"#,
            (1..=20)
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let err = parse_spec(&json).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn unit_cap_survives_multiplication_overflow() {
        // replications huge enough that points × replications wraps a u64/usize:
        // the size gate must still reject it (saturating, never wrapping to a small
        // number that sneaks past the cap, and never panicking in debug builds).
        let json = format!(
            r#"{{"schema_version": 1, "name": "wrap", "description": "d", "model": "parcels",
                "replications": {},
                "grid": {{"node_counts":[1,2],"parallelisms":[1],"latencies":[1.0],
                          "remote_fractions":[0.1]}}}}"#,
            u64::MAX / 2 + 1
        );
        let err = parse_spec(&json).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn compiled_spec_runs_and_respects_columns() {
        let spec = parse_spec(
            r#"{
                "schema_version": 1,
                "name": "cols",
                "description": "column selection",
                "model": "analytic",
                "columns": ["nodes", "gain"],
                "grid": {"node_counts": [1, 64], "lwp_fractions": [1.0]}
            }"#,
        )
        .unwrap();
        let scenario = spec.into_scenario();
        let report = scenario.run(&SeedPolicy::default());
        assert_eq!(report.scenario, "cols");
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].columns, vec!["nodes", "gain"]);
        assert_eq!(report.tables[0].rows.len(), 2);
        // 64 nodes at 100% WL: gain = 64 / 3.125 = 20.48.
        assert!(report.metric("max_gain").unwrap() > 20.0);
        assert_eq!(report.metric("units"), Some(2.0));
    }

    #[test]
    fn fixed_seed_ignores_the_batch_base_seed() {
        let json = r#"{
            "schema_version": 1,
            "name": "pinned",
            "description": "fixed seed",
            "model": "measured",
            "seed": {"fixed": 42},
            "config": {"ops": 20000},
            "grid": {
                "patterns": [{"UniformRandom": {"footprint": 1048576, "line": 64}}],
                "memory_fractions": [0.3]
            }
        }"#;
        let scenario = parse_spec(json).unwrap().into_scenario();
        let a = scenario.run(&SeedPolicy::new(1));
        let b = scenario.run(&SeedPolicy::new(2));
        assert_eq!(a.seed, 42);
        assert_eq!(
            serde_json::to_string(&a.tables).unwrap(),
            serde_json::to_string(&b.tables).unwrap()
        );
    }

    #[test]
    fn derived_seed_follows_the_batch_base_seed() {
        let json = r#"{
            "schema_version": 1,
            "name": "derived_demo",
            "description": "derived seed",
            "model": "measured",
            "config": {"ops": 20000},
            "grid": {
                "patterns": [{"UniformRandom": {"footprint": 1048576, "line": 64}}],
                "memory_fractions": [0.3]
            }
        }"#;
        let scenario = parse_spec(json).unwrap().into_scenario();
        let a = scenario.run(&SeedPolicy::new(1));
        let b = scenario.run(&SeedPolicy::new(2));
        assert_ne!(
            serde_json::to_string(&a.tables).unwrap(),
            serde_json::to_string(&b.tables).unwrap()
        );
    }

    #[test]
    fn spec_collisions_surface_as_errors_in_both_directions() {
        // Direction 1: a spec colliding with a builtin.
        let mut registry = Registry::builtin();
        let clash = parse_spec(&minimal_parcels_json().replace("tiny_parcels", "figure5")).unwrap();
        let err = register_specs(&mut registry, vec![clash]).unwrap_err();
        assert!(err.contains("duplicate scenario name 'figure5'"), "{err}");

        // Direction 2: two specs colliding with each other.
        let mut registry = Registry::builtin();
        let a = parse_spec(minimal_parcels_json()).unwrap();
        let b = a.clone();
        let err = register_specs(&mut registry, vec![a, b]).unwrap_err();
        assert!(
            err.contains("duplicate scenario name 'tiny_parcels'"),
            "{err}"
        );

        // A clean set registers beside the builtins.
        let mut registry = Registry::builtin();
        let names = register_specs(
            &mut registry,
            vec![parse_spec(minimal_parcels_json()).unwrap()],
        )
        .unwrap();
        assert_eq!(names, vec!["tiny_parcels"]);
        assert_eq!(registry.len(), 14);
        assert!(registry.get("tiny_parcels").is_some());
    }

    #[test]
    fn unit_seed_decorrelates_indices_and_scenarios() {
        assert_ne!(unit_seed(1, 0), unit_seed(1, 1));
        assert_ne!(unit_seed(1, 0), unit_seed(2, 0));
        assert_eq!(unit_seed(7, 3), unit_seed(7, 3));
    }
}

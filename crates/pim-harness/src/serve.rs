//! Sweep-as-a-service: the `pim-serve` daemon behind `pim-tradeoffs serve`.
//!
//! A [`SweepServer`] accepts scenario-spec submissions over HTTP (`POST /run`, body
//! = one schema-v1 spec document, exactly what `run --spec FILE` reads), compiles
//! them through [`crate::spec`], and executes their units on **one persistent
//! [`UnitPool`]** shared by every connection for the daemon's lifetime. That pool —
//! not the HTTP layer — is where the service semantics live:
//!
//! * at most `--jobs` units compute at any instant, however many clients are active;
//! * repeat queries are answered from the pool's warm in-memory results (and the
//!   on-disk unit cache when `--cache` is given) without recomputation;
//! * concurrent submissions with overlapping grids deduplicate at *unit*
//!   granularity: single-flight per [`UnitKey`](crate::cache::UnitKey) digest means
//!   two clients asking for the same grid point trigger exactly one computation.
//!
//! The default `POST /run` response body is byte-identical to what
//! `pim-tradeoffs run --spec FILE --seed S` prints for a single scenario — the
//! report's pretty JSON rendering — so a curl and a CLI run are interchangeable
//! artifacts. Cache accounting rides in `X-Pim-*` response headers to keep the body
//! pristine. With `?progress=1` the response switches to a chunked
//! `application/x-ndjson` stream of progress events (this mode trades the
//! byte-identical body for liveness; the final `report` event carries the same
//! artifact in compact form).
//!
//! # Traffic discipline
//!
//! The HTTP layer is a fixed **acceptor + bounded worker pool**, not a thread per
//! connection. The acceptor thread (the caller of
//! [`serve_forever`](SweepServer::serve_forever)) pushes accepted sockets onto a
//! bounded pending queue consumed by `--workers` handler threads; when the queue
//! is full it answers `503` with a `Retry-After` estimated from current pool
//! occupancy and closes the connection, so overload degrades into fast, honest
//! rejections instead of unbounded thread growth. Every accepted socket carries a
//! `--timeout-ms` read/write deadline — a client that connects and goes silent
//! costs one worker for at most one deadline, then gets a `408`.
//!
//! Shutdown is a **graceful drain**: a SIGTERM/SIGINT (when the embedder enables
//! [`ServeOptions::handle_signals`]) or a [`DrainHandle::request_drain`] stops
//! the acceptor, lets queued and in-flight requests finish up to `--drain-ms`,
//! and returns a [`DrainSummary`]. While draining, `/healthz` answers `503
//! draining` so load balancers stop routing here. A client that disconnects
//! mid-request is detected (socket probe between units in artifact mode, dead
//! progress stream in `?progress=1` mode) and its waits are cancelled — but only
//! the waits it uniquely owns: single-flight computations with other interested
//! clients fail over to those waiters (see
//! [`UnitPool::run_plans_cancellable`]).
//!
//! # Endpoints
//!
//! | Method | Path         | Meaning                                             |
//! |--------|--------------|-----------------------------------------------------|
//! | GET    | `/healthz`   | liveness probe, body `ok` (`503 draining` in drain) |
//! | GET    | `/scenarios` | JSON array of builtin scenario names                |
//! | GET    | `/metrics`   | service counters, schema-v1 JSON (see the docs)     |
//! | POST   | `/run`       | compile + execute the spec in the body              |
//!
//! `POST /run` query parameters: `seed=S` overrides the daemon's base seed for this
//! submission (default: the `--seed` the daemon was started with); `progress=1`
//! selects the ndjson progress stream. Repeated query keys are a `400` — like the
//! CLI's duplicate-flag rule, silently ignoring one of two conflicting values
//! would make the response depend on argument order.
//!
//! # Where this sits on the determinism map
//!
//! This module is deliberately **off the unit path** (see the audit crate's
//! classification): it may read wall clocks for request logging, metrics and
//! backpressure estimates, and talk to sockets, because nothing here influences
//! unit outputs — units are pure functions of their keys, the pool replays them
//! from content-addressed storage, and the artifact bytes are produced by the same
//! report renderer the CLI uses.

use crate::cache::UnitCache;
use crate::exec::{resolve_jobs, UnitPool, CANCELLED_MSG};
use crate::registry::Registry;
use crate::scenario::SeedPolicy;
use crate::spec::parse_spec;
use serde::{Serialize, Value};
use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tiny_http::{ChunkedWriter, Request, Response};

/// Version of the `GET /metrics` JSON schema. Bump on incompatible shape
/// changes so scrapers can refuse documents they do not understand.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// The internal status label for requests whose client vanished mid-run
/// (nothing was written back). Follows nginx's convention for the same case.
const STATUS_CLIENT_GONE: u16 = 499;

/// Configuration for [`SweepServer::bind`].
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:8787` (`127.0.0.1:0` lets the OS pick).
    pub addr: String,
    /// On-disk unit cache directory; `None` serves from memory only.
    pub cache_dir: Option<PathBuf>,
    /// Compute-permit budget shared by all clients (`0` = one per core).
    pub jobs: usize,
    /// Base seed for submissions that do not pass `?seed=`.
    pub seed: u64,
    /// Log one stderr line per request (method, path, status, wall time).
    pub log: bool,
    /// Connection-handler threads (`0` = one per core). Bounds how many
    /// requests are *in service* concurrently; the pool's `jobs` gate still
    /// bounds how many units *compute* concurrently.
    pub workers: usize,
    /// Pending-connection queue bound (`0` = twice the resolved workers).
    /// Accepted sockets beyond workers + queue are answered `503`.
    pub queue: usize,
    /// Per-connection read/write deadline in milliseconds (`0` = none): a
    /// single stalled socket operation fails after this long, freeing the
    /// worker with a `408` instead of pinning it forever.
    pub timeout_ms: u64,
    /// Drain deadline in milliseconds: how long
    /// [`serve_forever`](SweepServer::serve_forever) waits for queued and
    /// in-flight requests after a drain is requested.
    pub drain_ms: u64,
    /// Install SIGTERM/SIGINT handlers that trigger a graceful drain. Off by
    /// default so embedders (tests, benches) keep their own signal story; the
    /// CLI turns it on.
    pub handle_signals: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: None,
            jobs: 0,
            seed: crate::DEFAULT_SEED,
            log: false,
            workers: 0,
            queue: 0,
            timeout_ms: 30_000,
            drain_ms: 5_000,
            handle_signals: false,
        }
    }
}

/// Monotonic service counters behind `GET /metrics`. Counts are recorded when
/// a response is fully written (or the client is found gone), so a scraped
/// total can briefly trail a client-observed response by one update.
struct Metrics {
    started: Instant,
    /// Completed requests (anything with a recorded status, 499 included).
    total: AtomicU64,
    /// (endpoint label, status) → count.
    requests: Mutex<HashMap<(String, u16), u64>>,
    /// Sums of the per-request `X-Pim-Cache-*` header accounting, over
    /// successfully answered `/run` requests.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_recomputed: AtomicU64,
    /// Sum of `X-Pim-Units` over successfully answered `/run` requests.
    units_served: AtomicU64,
    /// Connections answered `503` by the acceptor (queue full or draining).
    rejected_503: AtomicU64,
    /// Workers currently inside a request handler.
    busy: AtomicU64,
    /// Exponentially-weighted mean request wall time, for `Retry-After`
    /// estimates (0 until the first request completes).
    ewma_request_micros: AtomicU64,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            total: AtomicU64::new(0),
            requests: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_recomputed: AtomicU64::new(0),
            units_served: AtomicU64::new(0),
            rejected_503: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            ewma_request_micros: AtomicU64::new(0),
        }
    }

    fn record(&self, label: &str, status: u16) {
        self.total.fetch_add(1, Ordering::SeqCst);
        // audit:allow(unwrap-in-library): a poisoned lock means a handler already panicked; propagate that panic
        let mut requests = self.requests.lock().expect("no handler panicked");
        *requests.entry((label.to_string(), status)).or_insert(0) += 1;
    }

    fn record_run_accounting(&self, units: u64, counts: &crate::cache::CacheCounts) {
        self.units_served.fetch_add(units, Ordering::SeqCst);
        self.cache_hits.fetch_add(counts.hits, Ordering::SeqCst);
        self.cache_misses.fetch_add(counts.misses, Ordering::SeqCst);
        self.cache_recomputed
            .fetch_add(counts.recomputed, Ordering::SeqCst);
    }

    /// Fold one completed request's wall time into the EWMA (α = 1/8).
    fn observe_request_wall(&self, wall: Duration) {
        let sample = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        let old = self.ewma_request_micros.load(Ordering::SeqCst);
        let new = if old == 0 {
            sample
        } else {
            old - old / 8 + sample / 8
        };
        self.ewma_request_micros.store(new, Ordering::SeqCst);
    }
}

/// Why a socket was diverted to the rejection lane.
enum QueueRefusal {
    /// The pending bound is reached: the service is saturated.
    Full,
    /// The queue is closed: the service is draining.
    Closed,
}

/// A bounded, closable hand-off queue between the acceptor and a consumer
/// thread pool.
struct PendingQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    pending: VecDeque<T>,
    closed: bool,
}

impl<T> PendingQueue<T> {
    fn new(capacity: usize) -> PendingQueue<T> {
        PendingQueue {
            inner: Mutex::new(QueueInner {
                pending: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn push(&self, item: T) -> Result<(), (T, QueueRefusal)> {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        let mut inner = self.inner.lock().expect("no worker panicked");
        if inner.closed {
            return Err((item, QueueRefusal::Closed));
        }
        if inner.pending.len() >= self.capacity {
            return Err((item, QueueRefusal::Full));
        }
        inner.pending.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Next pending item; blocks while the queue is open and empty, returns
    /// `None` once it is closed *and* empty (consumers exit on that).
    fn pop(&self) -> Option<T> {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        let mut inner = self.inner.lock().expect("no worker panicked");
        loop {
            if let Some(item) = inner.pending.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
            inner = self.ready.wait(inner).expect("no worker panicked");
        }
    }

    fn close(&self) {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        self.inner.lock().expect("no worker panicked").closed = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        self.inner.lock().expect("no worker panicked").pending.len()
    }
}

/// Daemon state shared by the acceptor, every worker, and drain handles.
struct ServeState {
    pool: UnitPool,
    cache: Option<UnitCache>,
    base_seed: u64,
    log: bool,
    /// Resolved worker-thread count (the `--workers` knob with 0 = cores).
    workers: usize,
    /// Per-connection socket deadline; `None` disables deadlines.
    timeout: Option<Duration>,
    /// Set once a drain is requested; never cleared.
    draining: AtomicBool,
    queue: PendingQueue<TcpStream>,
    /// The rejection lane: sockets refused by `queue`, answered `503` by one
    /// dedicated thread. Rejection must *read* the request before responding
    /// (closing with unread bytes makes the kernel RST the connection and the
    /// client may never see the 503), and that read cannot run on the
    /// acceptor thread — so it gets its own bounded lane. Overflowing even
    /// this lane drops the socket outright: under extreme overload a hard
    /// close is the only answer that costs nothing.
    reject: PendingQueue<(TcpStream, QueueRefusal)>,
    metrics: Metrics,
}

/// The sweep service: a bound listener plus the persistent scheduler state.
pub struct SweepServer {
    listener: tiny_http::Server,
    state: Arc<ServeState>,
    /// The resolved bound address, kept for drain wake-up self-connects.
    addr: String,
    drain_ms: u64,
    handle_signals: bool,
}

/// A remote control for one [`SweepServer`]: lets another thread (a signal
/// watcher, a bench harness, a test) ask the acceptor to drain gracefully.
/// Clones of the daemon state keep it valid for the daemon's whole life.
pub struct DrainHandle {
    state: Arc<ServeState>,
    addr: String,
}

impl DrainHandle {
    /// Request a graceful drain: the acceptor stops accepting, queued and
    /// in-flight requests finish (up to the server's drain deadline), and
    /// [`SweepServer::serve_forever`] returns its [`DrainSummary`].
    /// Idempotent; safe from any thread.
    pub fn request_drain(&self) {
        if self.state.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // The acceptor sits in blocking accept(); a self-connect wakes it so
        // it can observe the flag without polling (polling would tax every
        // real connection's accept latency).
        let _ = TcpStream::connect(&self.addr);
    }

    /// Whether a drain has been requested on this server.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }
}

/// What a drained [`SweepServer::serve_forever`] accomplished, for the
/// operator's log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Requests answered over the daemon's lifetime (any status).
    pub served: u64,
    /// Connections rejected `503` by the acceptor (saturation or drain).
    pub rejected: u64,
    /// Connections still queued or in flight when the drain deadline expired
    /// (0 on a clean drain).
    pub abandoned: u64,
    /// How long the drain waited for in-flight work, in milliseconds.
    pub drain_wait_ms: u64,
    /// Daemon lifetime, in milliseconds.
    pub uptime_ms: u64,
}

impl std::fmt::Display for DrainSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drained: {} request(s) served, {} rejected (503), {} abandoned; \
             drain waited {} ms; up {} ms",
            self.served, self.rejected, self.abandoned, self.drain_wait_ms, self.uptime_ms
        )
    }
}

impl SweepServer {
    /// Bind the service and open its cache. The pool and cache outlive every
    /// request — this is the decoupling that makes warm serving and
    /// cross-request deduplication possible.
    pub fn bind(opts: &ServeOptions) -> Result<SweepServer, String> {
        let cache = match &opts.cache_dir {
            Some(dir) => Some(UnitCache::open(dir)?),
            None => None,
        };
        let listener =
            tiny_http::Server::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
        let addr = listener
            .local_addr()
            .map(|a| a.to_string())
            .map_err(|e| format!("local_addr: {e}"))?;
        let workers = resolve_jobs(opts.workers).max(1);
        let queue_capacity = if opts.queue == 0 {
            workers * 2
        } else {
            opts.queue
        };
        Ok(SweepServer {
            listener,
            addr,
            drain_ms: opts.drain_ms,
            handle_signals: opts.handle_signals,
            state: Arc::new(ServeState {
                pool: UnitPool::new(opts.jobs),
                cache,
                base_seed: opts.seed,
                log: opts.log,
                workers,
                timeout: (opts.timeout_ms > 0).then(|| Duration::from_millis(opts.timeout_ms)),
                draining: AtomicBool::new(false),
                queue: PendingQueue::new(queue_capacity),
                reject: PendingQueue::new((queue_capacity * 4).max(64)),
                metrics: Metrics::new(),
            }),
        })
    }

    /// The bound `host:port` — how callers learn the port after binding to `:0`.
    pub fn local_addr(&self) -> Result<String, String> {
        Ok(self.addr.clone())
    }

    /// A handle other threads can use to drain this server gracefully.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            state: Arc::clone(&self.state),
            addr: self.addr.clone(),
        }
    }

    /// Accept and serve connections on the bounded worker pool until a drain
    /// is requested (via [`DrainHandle::request_drain`] or, with
    /// [`ServeOptions::handle_signals`], SIGTERM/SIGINT), then let queued and
    /// in-flight requests finish up to the drain deadline and return the
    /// [`DrainSummary`]. An `Err` is only a listener failure.
    pub fn serve_forever(&self) -> Result<DrainSummary, String> {
        let state = &self.state;
        // workers + the rejector: all must exit for a clean drain.
        let alive = Arc::new(AtomicUsize::new(state.workers + 1));
        for _ in 0..state.workers {
            let state = Arc::clone(&self.state);
            let alive = Arc::clone(&alive);
            std::thread::spawn(move || {
                while let Some(stream) = state.queue.pop() {
                    let started = Instant::now();
                    state.metrics.busy.fetch_add(1, Ordering::SeqCst);
                    handle_connection(&state, stream);
                    state.metrics.busy.fetch_sub(1, Ordering::SeqCst);
                    state.metrics.observe_request_wall(started.elapsed());
                }
                alive.fetch_sub(1, Ordering::SeqCst);
            });
        }
        {
            let state = Arc::clone(&self.state);
            let alive = Arc::clone(&alive);
            std::thread::spawn(move || {
                while let Some((stream, refusal)) = state.reject.pop() {
                    reject_busy(&state, stream, &refusal);
                }
                alive.fetch_sub(1, Ordering::SeqCst);
            });
        }
        if self.handle_signals {
            tiny_http::shutdown::install();
            let handle = self.drain_handle();
            std::thread::spawn(move || loop {
                if tiny_http::shutdown::requested() {
                    handle.request_drain();
                    break;
                }
                if handle.is_draining() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            });
        }

        loop {
            let stream = match self.listener.accept() {
                Ok(stream) => stream,
                Err(e) => {
                    state.draining.store(true, Ordering::SeqCst);
                    state.queue.close();
                    state.reject.close();
                    return Err(format!("accept: {e}"));
                }
            };
            if state.draining.load(Ordering::SeqCst) {
                // The drain wake-up self-connect, or a client racing the
                // drain: either way, no longer accepting.
                drop(stream);
                break;
            }
            if let Some(timeout) = state.timeout {
                let _ = tiny_http::set_stream_deadlines(&stream, timeout);
            }
            if let Err((stream, refusal)) = state.queue.push(stream) {
                // Divert to the rejection lane; if even that is full, the
                // socket is dropped on the floor (hard close).
                let _ = state.reject.push((stream, refusal));
            }
        }

        // Drain: workers finish the current and queued requests (the rejector
        // flushes its lane likewise); we wait up to the deadline, then report
        // whatever still hadn't finished.
        state.queue.close();
        state.reject.close();
        let wait_started = Instant::now();
        let deadline = Duration::from_millis(self.drain_ms);
        while alive.load(Ordering::SeqCst) > 0 && wait_started.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let abandoned = state.queue.depth() as u64
            + state.reject.depth() as u64
            + state.metrics.busy.load(Ordering::SeqCst);
        Ok(DrainSummary {
            served: state.metrics.total.load(Ordering::SeqCst),
            rejected: state.metrics.rejected_503.load(Ordering::SeqCst),
            abandoned,
            drain_wait_ms: wait_started.elapsed().as_millis() as u64,
            uptime_ms: state.metrics.started.elapsed().as_millis() as u64,
        })
    }
}

/// Estimate how long a rejected client should wait before retrying: the work
/// ahead of it (busy workers + queued sockets + itself) times the mean request
/// wall, spread over the worker pool. Clamped to `1..=60` seconds; 1s before
/// any request has completed.
fn retry_after_secs(state: &ServeState) -> u64 {
    let busy = state.metrics.busy.load(Ordering::SeqCst);
    let queued = state.queue.depth() as u64;
    let ewma_micros = state.metrics.ewma_request_micros.load(Ordering::SeqCst);
    let per_request_ms = if ewma_micros == 0 {
        1_000
    } else {
        (ewma_micros / 1_000).max(1)
    };
    let outstanding = busy + queued + 1;
    let workers = state.workers.max(1) as u64;
    (outstanding * per_request_ms)
        .div_ceil(workers * 1_000)
        .clamp(1, 60)
}

/// Rejection-lane handling: answer a refused socket `503` with retry guidance.
/// The request is read (and discarded) first — closing a socket with unread
/// request bytes makes the kernel reset the connection, and a reset client
/// may never see the 503 it should be honoring. Runs on the dedicated
/// rejector thread; the socket's deadlines bound how long a slow sender can
/// hold it.
fn reject_busy(state: &ServeState, mut stream: TcpStream, refusal: &QueueRefusal) {
    state.metrics.rejected_503.fetch_add(1, Ordering::SeqCst);
    let body = match refusal {
        QueueRefusal::Full => "server at capacity; retry later\n",
        QueueRefusal::Closed => "draining\n",
    };
    state.metrics.record("<rejected>", 503);
    {
        let mut reader = BufReader::new(&mut stream);
        let _ = Request::read_from(&mut reader);
    }
    let retry = retry_after_secs(state);
    let _ = text_response(503, body)
        .with_header("Retry-After", &retry.to_string())
        .write_to(&mut stream);
    if state.log {
        eprintln!("serve: <rejected> -> 503 (Retry-After: {retry} s)");
    }
}

/// Read one request, route it, write one response; errors end the connection.
fn handle_connection(state: &ServeState, mut stream: TcpStream) {
    let started = Instant::now();
    let request = {
        let mut reader = BufReader::new(&mut stream);
        Request::read_from(&mut reader)
    };
    let (label, status) = match request {
        Err(e) if tiny_http::is_timeout(&e) => {
            // The connection idled past --timeout-ms mid-request: reap it
            // with a 408 so the worker is immediately reusable.
            let _ = text_response(408, "request read timed out\n").write_to(&mut stream);
            ("<timeout>".to_string(), 408)
        }
        Err(e) => {
            let _ = text_response(400, &format!("malformed request: {e}\n")).write_to(&mut stream);
            ("<malformed>".to_string(), 400)
        }
        Ok(request) => {
            let label = format!("{} {}", request.method, request.path());
            // A write error means the client vanished mid-response (even
            // mid-head): account it like any other abandoned exchange.
            let status = route(state, &request, &mut stream).unwrap_or(STATUS_CLIENT_GONE);
            (label, status)
        }
    };
    state.metrics.record(&label, status);
    if state.log {
        let ms = started.elapsed().as_secs_f64() * 1e3;
        eprintln!("serve: {label} -> {status} ({ms:.1} ms)");
    }
}

/// Dispatch one parsed request. Returns the response status for logging; an `Err`
/// means the client vanished mid-write (nothing to do but log).
fn route(state: &ServeState, request: &Request, stream: &mut TcpStream) -> std::io::Result<u16> {
    if let Some(key) = request.duplicate_query_key() {
        // Same rule as the CLI's repeated flags: two values for one knob is a
        // contradiction to surface, not an ordering puzzle to guess at.
        text_response(400, &format!("duplicate query parameter '{key}'\n")).write_to(stream)?;
        return Ok(400);
    }
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => {
            if state.draining.load(Ordering::SeqCst) {
                text_response(503, "draining\n").write_to(stream)?;
                Ok(503)
            } else {
                text_response(200, "ok\n").write_to(stream)?;
                Ok(200)
            }
        }
        ("GET", "/scenarios") => {
            let names = Value::Seq(
                Registry::builtin()
                    .names()
                    .into_iter()
                    .map(|n| Value::Str(n.to_string()))
                    .collect(),
            );
            // audit:allow(unwrap-in-library): the vendored JSON writer is total for string sequences
            let mut body = serde_json::to_string(&names).expect("name list serializes");
            body.push('\n');
            Response::new(200)
                .with_body("application/json", body.into_bytes())
                .write_to(stream)?;
            Ok(200)
        }
        ("GET", "/metrics") => {
            let mut body = metrics_json(state);
            body.push('\n');
            Response::new(200)
                .with_body("application/json", body.into_bytes())
                .write_to(stream)?;
            Ok(200)
        }
        ("POST", "/run") => handle_run(state, request, stream),
        (_, "/healthz" | "/scenarios" | "/metrics") => {
            text_response(405, "method not allowed\n")
                .with_header("Allow", "GET")
                .write_to(stream)?;
            Ok(405)
        }
        (_, "/run") => {
            text_response(405, "method not allowed\n")
                .with_header("Allow", "POST")
                .write_to(stream)?;
            Ok(405)
        }
        (_, path) => {
            text_response(404, &format!("no such endpoint: {path}\n")).write_to(stream)?;
            Ok(404)
        }
    }
}

/// Render the `GET /metrics` document (schema v1, compact JSON, sorted
/// per-endpoint keys — byte-stable given equal counters).
fn metrics_json(state: &ServeState) -> String {
    let m = &state.metrics;
    let mut per_endpoint: Vec<((String, u16), u64)> = {
        // audit:allow(unwrap-in-library): a poisoned lock means a handler already panicked; propagate that panic
        let requests = m.requests.lock().expect("no handler panicked");
        requests.iter().map(|(k, v)| (k.clone(), *v)).collect()
    };
    per_endpoint.sort();
    let mut by_endpoint: Vec<(String, Value)> = Vec::new();
    for ((label, status), count) in per_endpoint {
        let entry = (status.to_string(), Value::U64(count));
        match by_endpoint.last_mut() {
            Some((last, Value::Map(statuses))) if *last == label => statuses.push(entry),
            _ => by_endpoint.push((label, Value::Map(vec![entry]))),
        }
    }
    let doc = Value::Map(vec![
        (
            "schema_version".to_string(),
            Value::U64(METRICS_SCHEMA_VERSION),
        ),
        (
            "uptime_ms".to_string(),
            Value::U64(m.started.elapsed().as_millis() as u64),
        ),
        (
            "draining".to_string(),
            Value::Bool(state.draining.load(Ordering::SeqCst)),
        ),
        (
            "workers".to_string(),
            Value::Map(vec![
                ("configured".to_string(), Value::U64(state.workers as u64)),
                (
                    "busy".to_string(),
                    Value::U64(m.busy.load(Ordering::SeqCst)),
                ),
                (
                    "queue_depth".to_string(),
                    Value::U64(state.queue.depth() as u64),
                ),
                (
                    "queue_capacity".to_string(),
                    Value::U64(state.queue.capacity as u64),
                ),
                (
                    "rejected_503".to_string(),
                    Value::U64(m.rejected_503.load(Ordering::SeqCst)),
                ),
            ]),
        ),
        (
            "pool".to_string(),
            Value::Map(vec![
                (
                    "permits_in_use".to_string(),
                    Value::U64(state.pool.permits_in_use() as u64),
                ),
                (
                    "permits_total".to_string(),
                    Value::U64(state.pool.permits_total() as u64),
                ),
                (
                    "mem_entries".to_string(),
                    Value::U64(state.pool.mem_entries() as u64),
                ),
                (
                    "flights_in_progress".to_string(),
                    Value::U64(state.pool.flights_in_progress() as u64),
                ),
            ]),
        ),
        (
            "requests".to_string(),
            Value::Map(vec![
                (
                    "total".to_string(),
                    Value::U64(m.total.load(Ordering::SeqCst)),
                ),
                ("by_endpoint".to_string(), Value::Map(by_endpoint)),
            ]),
        ),
        (
            "cache".to_string(),
            Value::Map(vec![
                (
                    "hits".to_string(),
                    Value::U64(m.cache_hits.load(Ordering::SeqCst)),
                ),
                (
                    "misses".to_string(),
                    Value::U64(m.cache_misses.load(Ordering::SeqCst)),
                ),
                (
                    "recomputed".to_string(),
                    Value::U64(m.cache_recomputed.load(Ordering::SeqCst)),
                ),
                (
                    "units_served".to_string(),
                    Value::U64(m.units_served.load(Ordering::SeqCst)),
                ),
            ]),
        ),
    ]);
    // audit:allow(unwrap-in-library): the vendored JSON writer is total for this composed document
    serde_json::to_string(&doc).expect("metrics document serializes")
}

/// `POST /run`: compile the spec in the body, execute it on the shared pool, and
/// answer with the artifact (fixed body) or a progress stream (`?progress=1`).
fn handle_run(
    state: &ServeState,
    request: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<u16> {
    let submission = match parse_submission(state, request) {
        Ok(submission) => submission,
        Err(message) => {
            text_response(400, &format!("{message}\n")).write_to(stream)?;
            return Ok(400);
        }
    };
    let scenario = submission.spec.into_scenario();
    let plan = scenario.plan(&SeedPolicy::new(submission.seed));
    let units = plan.unit_count();

    if !submission.progress {
        // Artifact mode: between units, probe the socket so a vanished client
        // stops costing compute. The probe is serialized by a mutex because it
        // briefly flips the socket non-blocking, and it never runs
        // concurrently with the response write (which happens after the run).
        let probe_stream = stream.try_clone().ok().map(Mutex::new);
        let gone = AtomicBool::new(false);
        let cancel = || {
            if gone.load(Ordering::SeqCst) {
                return true;
            }
            let Some(lock) = &probe_stream else {
                return false;
            };
            // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
            let probe = lock.lock().expect("no worker panicked");
            if tiny_http::client_disconnected(&probe) {
                gone.store(true, Ordering::SeqCst);
                return true;
            }
            false
        };
        let outcome =
            state
                .pool
                .run_plans_cancellable(vec![plan], state.cache.as_ref(), None, Some(&cancel));
        return match outcome {
            Err(message) if message == CANCELLED_MSG && gone.load(Ordering::SeqCst) => {
                // The client is gone; there is nobody to answer.
                Ok(STATUS_CLIENT_GONE)
            }
            Err(message) => {
                text_response(500, &format!("{message}\n")).write_to(stream)?;
                Ok(500)
            }
            Ok(mut outcomes) => {
                // audit:allow(unwrap-in-library): one plan in, one outcome out
                let outcome = outcomes.pop().expect("one plan produces one outcome");
                state
                    .metrics
                    .record_run_accounting(units as u64, &outcome.cache);
                // The body is exactly what `run --spec FILE --seed S` prints:
                // accounting travels in headers so the artifact stays pristine.
                Response::new(200)
                    .with_header("X-Pim-Units", &units.to_string())
                    .with_header("X-Pim-Cache-Hits", &outcome.cache.hits.to_string())
                    .with_header("X-Pim-Cache-Misses", &outcome.cache.misses.to_string())
                    .with_header(
                        "X-Pim-Cache-Recomputed",
                        &outcome.cache.recomputed.to_string(),
                    )
                    .with_body("application/json", outcome.report.to_json().into_bytes())
                    .write_to(stream)?;
                Ok(200)
            }
        };
    }

    // Progress mode: a chunked ndjson stream. Events during execution, then the
    // accounting and the artifact (compact) as the final two events. A dead
    // stream (chunk write failure) doubles as the cancellation signal: the
    // socket itself cannot be probed here, because the chunked writer owns it
    // and probes would race in-flight chunk frames.
    let sink = ProgressSink {
        writer: Mutex::new(ChunkedWriter::begin(
            &mut *stream,
            200,
            &[("Content-Type", "application/x-ndjson")],
        )?),
        dead: AtomicBool::new(false),
    };
    emit(
        &sink,
        &[
            ("event", Value::Str("start".into())),
            ("scenario", Value::Str(scenario.name().to_string())),
            ("units", Value::U64(units as u64)),
        ],
    );
    let on_unit = |done: usize, total: usize| {
        emit(
            &sink,
            &[
                ("event", Value::Str("unit".into())),
                ("done", Value::U64(done as u64)),
                ("units", Value::U64(total as u64)),
            ],
        );
    };
    let cancel = || sink.dead.load(Ordering::SeqCst);
    let outcome = state.pool.run_plans_cancellable(
        vec![plan],
        state.cache.as_ref(),
        Some(&on_unit),
        Some(&cancel),
    );
    match outcome {
        Err(message) if message == CANCELLED_MSG && sink.dead.load(Ordering::SeqCst) => {
            // The progress client hung up; nothing to finish.
            return Ok(STATUS_CLIENT_GONE);
        }
        Err(message) => {
            emit(
                &sink,
                &[
                    ("event", Value::Str("error".into())),
                    ("message", Value::Str(message)),
                ],
            );
        }
        Ok(mut outcomes) => {
            // audit:allow(unwrap-in-library): one plan in, one outcome out
            let outcome = outcomes.pop().expect("one plan produces one outcome");
            state
                .metrics
                .record_run_accounting(units as u64, &outcome.cache);
            emit(
                &sink,
                &[
                    ("event", Value::Str("done".into())),
                    ("hits", Value::U64(outcome.cache.hits)),
                    ("misses", Value::U64(outcome.cache.misses)),
                    ("recomputed", Value::U64(outcome.cache.recomputed)),
                ],
            );
            emit(
                &sink,
                &[
                    ("event", Value::Str("report".into())),
                    ("artifact", outcome.report.to_value()),
                ],
            );
        }
    }
    sink.writer
        .into_inner()
        // audit:allow(unwrap-in-library): emit never panics while holding the writer lock
        .expect("no handler panicked")
        .finish()?;
    Ok(200)
}

/// A validated `POST /run` submission.
struct Submission {
    spec: crate::spec::ScenarioSpec,
    seed: u64,
    progress: bool,
}

fn parse_submission(state: &ServeState, request: &Request) -> Result<Submission, String> {
    let body =
        std::str::from_utf8(&request.body).map_err(|_| "request body is not UTF-8".to_string())?;
    let spec = parse_spec(body)?;
    let seed = match request.query_value("seed") {
        None => state.base_seed,
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("?seed= expects an integer, got '{raw}'"))?,
    };
    let progress = match request.query_value("progress").as_deref() {
        None | Some("0") => false,
        Some("1") => true,
        Some(other) => return Err(format!("?progress= expects 0 or 1, got '{other}'")),
    };
    Ok(Submission {
        spec,
        seed,
        progress,
    })
}

/// The progress stream plus its liveness flag: a failed chunk write marks the
/// stream dead, which the run's cancellation probe observes.
struct ProgressSink<'s> {
    writer: Mutex<ChunkedWriter<&'s mut TcpStream>>,
    dead: AtomicBool,
}

/// Write one compact-JSON event line to the shared chunked writer. Write errors
/// mark the sink dead (the client is gone) but never poison the computation,
/// which other waiters may be deduplicating against.
fn emit(sink: &ProgressSink<'_>, fields: &[(&str, Value)]) {
    let event = Value::Map(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    );
    let Ok(mut line) = serde_json::to_string(&event) else {
        return;
    };
    line.push('\n');
    // audit:allow(unwrap-in-library): emit never panics while holding the writer lock
    let mut writer = sink.writer.lock().expect("no handler panicked");
    if writer.chunk(line.as_bytes()).is_err() {
        sink.dead.store(true, Ordering::SeqCst);
    }
}

fn text_response(status: u16, body: &str) -> Response {
    Response::new(status).with_body("text/plain; charset=utf-8", body.as_bytes().to_vec())
}

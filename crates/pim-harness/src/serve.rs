//! Sweep-as-a-service: the `pim-serve` daemon behind `pim-tradeoffs serve`.
//!
//! A [`SweepServer`] accepts scenario-spec submissions over HTTP (`POST /run`, body
//! = one schema-v1 spec document, exactly what `run --spec FILE` reads), compiles
//! them through [`crate::spec`], and executes their units on **one persistent
//! [`UnitPool`]** shared by every connection for the daemon's lifetime. That pool —
//! not the HTTP layer — is where the service semantics live:
//!
//! * at most `--jobs` units compute at any instant, however many clients are active;
//! * repeat queries are answered from the pool's warm in-memory results (and the
//!   on-disk unit cache when `--cache` is given) without recomputation;
//! * concurrent submissions with overlapping grids deduplicate at *unit*
//!   granularity: single-flight per [`UnitKey`](crate::cache::UnitKey) digest means
//!   two clients asking for the same grid point trigger exactly one computation.
//!
//! The default `POST /run` response body is byte-identical to what
//! `pim-tradeoffs run --spec FILE --seed S` prints for a single scenario — the
//! report's pretty JSON rendering — so a curl and a CLI run are interchangeable
//! artifacts. Cache accounting rides in `X-Pim-*` response headers to keep the body
//! pristine. With `?progress=1` the response switches to a chunked
//! `application/x-ndjson` stream of progress events (this mode trades the
//! byte-identical body for liveness; the final `report` event carries the same
//! artifact in compact form).
//!
//! # Endpoints
//!
//! | Method | Path         | Meaning                                             |
//! |--------|--------------|-----------------------------------------------------|
//! | GET    | `/healthz`   | liveness probe, body `ok`                           |
//! | GET    | `/scenarios` | JSON array of builtin scenario names                |
//! | POST   | `/run`       | compile + execute the spec in the body              |
//!
//! `POST /run` query parameters: `seed=S` overrides the daemon's base seed for this
//! submission (default: the `--seed` the daemon was started with); `progress=1`
//! selects the ndjson progress stream.
//!
//! # Where this sits on the determinism map
//!
//! This module is deliberately **off the unit path** (see the audit crate's
//! classification): it may read wall clocks for request logging and talk to
//! sockets, because nothing here influences unit outputs — units are pure
//! functions of their keys, the pool replays them from content-addressed storage,
//! and the artifact bytes are produced by the same report renderer the CLI uses.

use crate::cache::UnitCache;
use crate::exec::UnitPool;
use crate::registry::Registry;
use crate::scenario::SeedPolicy;
use crate::spec::parse_spec;
use serde::{Serialize, Value};
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tiny_http::{ChunkedWriter, Request, Response};

/// Configuration for [`SweepServer::bind`].
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:8787` (`127.0.0.1:0` lets the OS pick).
    pub addr: String,
    /// On-disk unit cache directory; `None` serves from memory only.
    pub cache_dir: Option<PathBuf>,
    /// Compute-permit budget shared by all clients (`0` = one per core).
    pub jobs: usize,
    /// Base seed for submissions that do not pass `?seed=`.
    pub seed: u64,
    /// Log one stderr line per request (method, path, status, wall time).
    pub log: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: None,
            jobs: 0,
            seed: crate::DEFAULT_SEED,
            log: false,
        }
    }
}

/// Daemon state shared by every connection thread.
struct ServeState {
    pool: UnitPool,
    cache: Option<UnitCache>,
    base_seed: u64,
    log: bool,
}

/// The sweep service: a bound listener plus the persistent scheduler state.
pub struct SweepServer {
    listener: tiny_http::Server,
    state: Arc<ServeState>,
}

impl SweepServer {
    /// Bind the service and open its cache. The pool and cache outlive every
    /// request — this is the decoupling that makes warm serving and
    /// cross-request deduplication possible.
    pub fn bind(opts: &ServeOptions) -> Result<SweepServer, String> {
        let cache = match &opts.cache_dir {
            Some(dir) => Some(UnitCache::open(dir)?),
            None => None,
        };
        let listener =
            tiny_http::Server::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
        Ok(SweepServer {
            listener,
            state: Arc::new(ServeState {
                pool: UnitPool::new(opts.jobs),
                cache,
                base_seed: opts.seed,
                log: opts.log,
            }),
        })
    }

    /// The bound `host:port` — how callers learn the port after binding to `:0`.
    pub fn local_addr(&self) -> Result<String, String> {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .map_err(|e| format!("local_addr: {e}"))
    }

    /// Accept connections forever, one handler thread per connection. Only a
    /// listener error (socket torn down) returns.
    pub fn serve_forever(&self) -> Result<(), String> {
        loop {
            let stream = self.listener.accept().map_err(|e| format!("accept: {e}"))?;
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(&state, stream));
        }
    }
}

/// Read one request, route it, write one response; errors end the connection.
fn handle_connection(state: &ServeState, mut stream: TcpStream) {
    let started = Instant::now();
    let request = {
        let mut reader = BufReader::new(&mut stream);
        Request::read_from(&mut reader)
    };
    let (label, status) = match request {
        Err(e) => {
            let _ = text_response(400, &format!("malformed request: {e}\n")).write_to(&mut stream);
            ("<malformed>".to_string(), 400)
        }
        Ok(request) => {
            let label = format!("{} {}", request.method, request.target);
            let status = route(state, &request, &mut stream).unwrap_or(0);
            (label, status)
        }
    };
    if state.log {
        let ms = started.elapsed().as_secs_f64() * 1e3;
        eprintln!("serve: {label} -> {status} ({ms:.1} ms)");
    }
}

/// Dispatch one parsed request. Returns the response status for logging; an `Err`
/// means the client vanished mid-write (nothing to do but log).
fn route(state: &ServeState, request: &Request, stream: &mut TcpStream) -> std::io::Result<u16> {
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => {
            text_response(200, "ok\n").write_to(stream)?;
            Ok(200)
        }
        ("GET", "/scenarios") => {
            let names = Value::Seq(
                Registry::builtin()
                    .names()
                    .into_iter()
                    .map(|n| Value::Str(n.to_string()))
                    .collect(),
            );
            // audit:allow(unwrap-in-library): the vendored JSON writer is total for string sequences
            let mut body = serde_json::to_string(&names).expect("name list serializes");
            body.push('\n');
            Response::new(200)
                .with_body("application/json", body.into_bytes())
                .write_to(stream)?;
            Ok(200)
        }
        ("POST", "/run") => handle_run(state, request, stream),
        (_, "/healthz" | "/scenarios" | "/run") => {
            text_response(405, "method not allowed\n").write_to(stream)?;
            Ok(405)
        }
        (_, path) => {
            text_response(404, &format!("no such endpoint: {path}\n")).write_to(stream)?;
            Ok(404)
        }
    }
}

/// `POST /run`: compile the spec in the body, execute it on the shared pool, and
/// answer with the artifact (fixed body) or a progress stream (`?progress=1`).
fn handle_run(
    state: &ServeState,
    request: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<u16> {
    let submission = match parse_submission(state, request) {
        Ok(submission) => submission,
        Err(message) => {
            text_response(400, &format!("{message}\n")).write_to(stream)?;
            return Ok(400);
        }
    };
    let scenario = submission.spec.into_scenario();
    let plan = scenario.plan(&SeedPolicy::new(submission.seed));
    let units = plan.unit_count();

    if !submission.progress {
        let outcome = state
            .pool
            .run_plans_cached(vec![plan], state.cache.as_ref());
        return match outcome {
            Err(message) => {
                text_response(500, &format!("{message}\n")).write_to(stream)?;
                Ok(500)
            }
            Ok(mut outcomes) => {
                // audit:allow(unwrap-in-library): one plan in, one outcome out
                let outcome = outcomes.pop().expect("one plan produces one outcome");
                // The body is exactly what `run --spec FILE --seed S` prints:
                // accounting travels in headers so the artifact stays pristine.
                Response::new(200)
                    .with_header("X-Pim-Units", &units.to_string())
                    .with_header("X-Pim-Cache-Hits", &outcome.cache.hits.to_string())
                    .with_header("X-Pim-Cache-Misses", &outcome.cache.misses.to_string())
                    .with_header(
                        "X-Pim-Cache-Recomputed",
                        &outcome.cache.recomputed.to_string(),
                    )
                    .with_body("application/json", outcome.report.to_json().into_bytes())
                    .write_to(stream)?;
                Ok(200)
            }
        };
    }

    // Progress mode: a chunked ndjson stream. Events during execution, then the
    // accounting and the artifact (compact) as the final two events.
    let writer = Mutex::new(ChunkedWriter::begin(
        &mut *stream,
        200,
        &[("Content-Type", "application/x-ndjson")],
    )?);
    emit(
        &writer,
        &[
            ("event", Value::Str("start".into())),
            ("scenario", Value::Str(scenario.name().to_string())),
            ("units", Value::U64(units as u64)),
        ],
    );
    let on_unit = |done: usize, total: usize| {
        emit(
            &writer,
            &[
                ("event", Value::Str("unit".into())),
                ("done", Value::U64(done as u64)),
                ("units", Value::U64(total as u64)),
            ],
        );
    };
    let outcome =
        state
            .pool
            .run_plans_cached_with(vec![plan], state.cache.as_ref(), Some(&on_unit));
    match outcome {
        Err(message) => {
            emit(
                &writer,
                &[
                    ("event", Value::Str("error".into())),
                    ("message", Value::Str(message)),
                ],
            );
        }
        Ok(mut outcomes) => {
            // audit:allow(unwrap-in-library): one plan in, one outcome out
            let outcome = outcomes.pop().expect("one plan produces one outcome");
            emit(
                &writer,
                &[
                    ("event", Value::Str("done".into())),
                    ("hits", Value::U64(outcome.cache.hits)),
                    ("misses", Value::U64(outcome.cache.misses)),
                    ("recomputed", Value::U64(outcome.cache.recomputed)),
                ],
            );
            emit(
                &writer,
                &[
                    ("event", Value::Str("report".into())),
                    ("artifact", outcome.report.to_value()),
                ],
            );
        }
    }
    writer
        .into_inner()
        // audit:allow(unwrap-in-library): emit never panics while holding the writer lock
        .expect("no handler panicked")
        .finish()?;
    Ok(200)
}

/// A validated `POST /run` submission.
struct Submission {
    spec: crate::spec::ScenarioSpec,
    seed: u64,
    progress: bool,
}

fn parse_submission(state: &ServeState, request: &Request) -> Result<Submission, String> {
    let body =
        std::str::from_utf8(&request.body).map_err(|_| "request body is not UTF-8".to_string())?;
    let spec = parse_spec(body)?;
    let seed = match request.query_value("seed") {
        None => state.base_seed,
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("?seed= expects an integer, got '{raw}'"))?,
    };
    let progress = match request.query_value("progress").as_deref() {
        None | Some("0") => false,
        Some("1") => true,
        Some(other) => return Err(format!("?progress= expects 0 or 1, got '{other}'")),
    };
    Ok(Submission {
        spec,
        seed,
        progress,
    })
}

/// Write one compact-JSON event line to the shared chunked writer. Write errors
/// are swallowed: a vanished progress client must not poison the computation,
/// which other waiters may be deduplicating against.
fn emit(writer: &Mutex<ChunkedWriter<&mut TcpStream>>, fields: &[(&str, Value)]) {
    let event = Value::Map(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    );
    let Ok(mut line) = serde_json::to_string(&event) else {
        return;
    };
    line.push('\n');
    // audit:allow(unwrap-in-library): emit never panics while holding the writer lock
    let mut writer = writer.lock().expect("no handler panicked");
    let _ = writer.chunk(line.as_bytes());
}

fn text_response(status: u16, body: &str) -> Response {
    Response::new(status).with_body("text/plain; charset=utf-8", body.as_bytes().to_vec())
}

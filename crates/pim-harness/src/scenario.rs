//! The [`Scenario`] trait, the unit-of-work decomposition ([`ScenarioPlan`]) and the
//! deterministic per-scenario seed derivation.

use crate::cache::UnitKey;
use crate::report::ScenarioReport;
use crate::DEFAULT_SEED;
use serde::{Deserialize, Serialize, Value};
use std::any::Any;

/// Derives each scenario's RNG stream from a single base seed.
///
/// The stream depends only on the base seed and the scenario *name* — never on thread
/// scheduling, submission order, or which other scenarios run in the same batch — so
/// artifacts are byte-identical across `--jobs` settings and across runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedPolicy {
    /// The batch-wide base seed.
    pub base_seed: u64,
}

impl Default for SeedPolicy {
    fn default() -> Self {
        SeedPolicy {
            base_seed: DEFAULT_SEED,
        }
    }
}

impl SeedPolicy {
    /// Policy with an explicit base seed.
    pub fn new(base_seed: u64) -> SeedPolicy {
        SeedPolicy { base_seed }
    }

    /// The seed for one scenario: FNV-1a over the name, mixed with the base seed
    /// through the workspace's shared SplitMix64 mixer so nearby base seeds still
    /// decorrelate.
    pub fn scenario_seed(&self, name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        desim::random::mix_seed(h, self.base_seed)
    }
}

/// Type-erased output of one [`ScenarioPlan`] work unit.
pub type UnitOutput = Box<dyn Any + Send>;

type UnitFn<'s> = Box<dyn FnOnce() -> UnitOutput + Send + 's>;
type AssembleFn<'s> = Box<dyn FnOnce(Vec<UnitOutput>) -> ScenarioReport + Send + 's>;
type EncodeFn = Box<dyn Fn(&dyn Any) -> Value + Send>;
type DecodeFn = Box<dyn Fn(&Value) -> Option<UnitOutput> + Send>;

/// The serde bridge that lets the executor persist one unit's type-erased output and
/// resurrect it on a later run. Built generically by the `cached_*` plan
/// constructors; the unit output type stays invisible to the executor.
pub(crate) struct UnitCodec {
    /// Serialize a produced output (downcast internally) into a cache payload.
    pub(crate) encode: EncodeFn,
    /// Rebuild an output from a verified cache payload; `None` means the payload's
    /// shape does not match the unit's type (stale entry → recompute).
    pub(crate) decode: DecodeFn,
}

impl UnitCodec {
    fn for_type<U: Serialize + Deserialize + Send + 'static>() -> UnitCodec {
        UnitCodec {
            encode: Box::new(|any| {
                any.downcast_ref::<U>()
                    // audit:allow(unwrap-in-library): the plan pairs every unit with the codec of its own output type
                    .expect("unit output type matches the plan")
                    .to_value()
            }),
            decode: Box::new(|value| U::from_value(value).ok().map(|u| Box::new(u) as UnitOutput)),
        }
    }
}

/// One schedulable unit of work: the closure, plus — for cacheable units — the
/// content-address identity and serde codec the unit-result cache needs.
pub(crate) struct PlanUnit<'s> {
    pub(crate) run: UnitFn<'s>,
    pub(crate) cache: Option<(UnitKey, UnitCodec)>,
}

/// A scenario decomposed into independently runnable **units of work** plus an
/// assembly step.
///
/// The units are the scheduling granularity of the whole harness: the batch runner
/// flattens every requested scenario's units into one global list and lets workers
/// steal from it, so a scenario with one expensive grid no longer serializes the tail
/// of a batch behind a single thread. Units must be independent (no ordering between
/// them) and derive any randomness from values captured at plan time — typically the
/// unit's grid index mixed with the scenario seed — never from execution order.
///
/// `assemble` receives the unit outputs **in unit order**, whatever order they
/// executed in, which is what keeps artifacts byte-identical across thread counts.
///
/// Plans built with [`ScenarioPlan::cached_map_reduce`]/[`ScenarioPlan::cached_single`]
/// additionally tag every unit with a [`UnitKey`], making its output persistable in
/// the content-addressed unit cache (see [`crate::cache`]): on a warm batch the
/// executor serves such units from disk instead of running them.
pub struct ScenarioPlan<'s> {
    units: Vec<PlanUnit<'s>>,
    assemble: AssembleFn<'s>,
}

impl<'s> ScenarioPlan<'s> {
    /// A plan with one opaque unit: the whole scenario runs as a single task. The
    /// right choice for scenarios that finish in milliseconds (closed forms, tables).
    pub fn single(run: impl FnOnce() -> ScenarioReport + Send + 's) -> ScenarioPlan<'s> {
        ScenarioPlan::map_reduce(vec![run], |mut reports: Vec<ScenarioReport>| {
            // audit:allow(unwrap-in-library): a single-unit plan yields exactly one output
            reports.pop().expect("single-unit plan produced one output")
        })
    }

    /// [`ScenarioPlan::single`] with a cache identity: the whole-report unit becomes
    /// persistable in the unit-result cache under `key`.
    pub fn cached_single(
        key: UnitKey,
        run: impl FnOnce() -> ScenarioReport + Send + 's,
    ) -> ScenarioPlan<'s> {
        ScenarioPlan::cached_map_reduce(vec![(key, run)], |mut reports: Vec<ScenarioReport>| {
            // audit:allow(unwrap-in-library): a single-unit plan yields exactly one output
            reports.pop().expect("single-unit plan produced one output")
        })
    }

    /// A plan of homogeneous units whose outputs `assemble` folds into the report.
    ///
    /// Each unit is typically one grid point of a parameter sweep. The unit closures
    /// are type-erased internally; `assemble` gets the strongly-typed outputs back in
    /// unit order. Units built this way carry no cache identity and always execute;
    /// prefer [`ScenarioPlan::cached_map_reduce`] for deterministic units with
    /// serializable outputs.
    pub fn map_reduce<U, F, A>(units: Vec<F>, assemble: A) -> ScenarioPlan<'s>
    where
        U: Send + 'static,
        F: FnOnce() -> U + Send + 's,
        A: FnOnce(Vec<U>) -> ScenarioReport + Send + 's,
    {
        ScenarioPlan {
            units: units
                .into_iter()
                .map(|f| PlanUnit {
                    run: Box::new(move || Box::new(f()) as UnitOutput),
                    cache: None,
                })
                .collect(),
            assemble: Self::erase_assemble(assemble),
        }
    }

    /// [`ScenarioPlan::map_reduce`] where every unit carries a [`UnitKey`] and a
    /// serializable output, making it eligible for the unit-result cache. The key
    /// must identify everything the unit's output depends on — build it with
    /// [`crate::cache::UnitKeyer`] so the scenario config fingerprint, resolved seed
    /// and grid/replication indices are all folded in.
    pub fn cached_map_reduce<U, F, A>(units: Vec<(UnitKey, F)>, assemble: A) -> ScenarioPlan<'s>
    where
        U: Serialize + Deserialize + Send + 'static,
        F: FnOnce() -> U + Send + 's,
        A: FnOnce(Vec<U>) -> ScenarioReport + Send + 's,
    {
        ScenarioPlan {
            units: units
                .into_iter()
                .map(|(key, f)| PlanUnit {
                    run: Box::new(move || Box::new(f()) as UnitOutput),
                    cache: Some((key, UnitCodec::for_type::<U>())),
                })
                .collect(),
            assemble: Self::erase_assemble(assemble),
        }
    }

    fn erase_assemble<U, A>(assemble: A) -> AssembleFn<'s>
    where
        U: Send + 'static,
        A: FnOnce(Vec<U>) -> ScenarioReport + Send + 's,
    {
        Box::new(move |outputs| {
            let typed: Vec<U> = outputs
                .into_iter()
                .map(|o| {
                    *o.downcast::<U>()
                        // audit:allow(unwrap-in-library): the plan pairs every unit with the codec of its own output type
                        .expect("unit output type matches the plan")
                })
                .collect();
            assemble(typed)
        })
    }

    /// Number of units in the plan.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Number of units carrying a cache identity.
    pub fn cacheable_unit_count(&self) -> usize {
        self.units.iter().filter(|u| u.cache.is_some()).count()
    }

    /// Split the plan into its units and assembly step (executor use).
    pub(crate) fn into_parts(self) -> (Vec<PlanUnit<'s>>, AssembleFn<'s>) {
        (self.units, self.assemble)
    }
}

/// One registered experiment: a paper figure, table, validation study or ablation.
///
/// Implementations must be pure functions of `(self, seeds)`: two calls with the same
/// policy must produce identical reports (the determinism suite enforces this
/// byte-for-byte on the JSON rendering), whatever thread count executes the plan.
pub trait Scenario: Send + Sync {
    /// Stable, unique scenario name (used for registry lookup, artifact file names
    /// and seed derivation). Built-in scenarios return a literal; spec-compiled
    /// scenarios ([`crate::spec`]) return the user-chosen name from the spec file,
    /// which is why the lifetime is tied to `self` rather than `'static`.
    fn name(&self) -> &str;

    /// One-line description of what the scenario reproduces.
    fn description(&self) -> &str;

    /// The scenario's parameter grid / configuration as a free-form JSON tree,
    /// embedded in the report for provenance.
    fn params(&self) -> serde::Value {
        serde::Value::Map(vec![])
    }

    /// Decompose the experiment into a [`ScenarioPlan`] under the given seed policy.
    ///
    /// Sweep-style scenarios should return one unit per grid point so batch workers
    /// can interleave them with other scenarios' points; trivially cheap scenarios
    /// return a [`ScenarioPlan::single`].
    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s>;

    /// Run the experiment under the given seed policy, executing the plan's units
    /// across the available cores. The report is identical to executing the plan on
    /// any other worker count.
    fn run(&self, seeds: &SeedPolicy) -> ScenarioReport {
        crate::exec::run_plan(self.plan(seeds), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_uses_the_report_seed() {
        assert_eq!(SeedPolicy::default().base_seed, DEFAULT_SEED);
    }

    #[test]
    fn seeds_differ_across_scenarios_and_bases() {
        let p = SeedPolicy::default();
        assert_ne!(p.scenario_seed("figure5"), p.scenario_seed("figure6"));
        assert_ne!(
            p.scenario_seed("figure5"),
            SeedPolicy::new(DEFAULT_SEED + 1).scenario_seed("figure5")
        );
    }

    #[test]
    fn seed_derivation_is_stable() {
        // Pin the derivation: changing it would silently invalidate every golden file.
        let p = SeedPolicy::default();
        let s = p.scenario_seed("figure5");
        assert_eq!(s, p.scenario_seed("figure5"));
        assert_ne!(s, 0);
    }
}

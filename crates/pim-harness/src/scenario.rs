//! The [`Scenario`] trait and the deterministic per-scenario seed derivation.

use crate::report::ScenarioReport;
use crate::DEFAULT_SEED;
use serde::{Deserialize, Serialize};

/// Derives each scenario's RNG stream from a single base seed.
///
/// The stream depends only on the base seed and the scenario *name* — never on thread
/// scheduling, submission order, or which other scenarios run in the same batch — so
/// artifacts are byte-identical across `--jobs` settings and across runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedPolicy {
    /// The batch-wide base seed.
    pub base_seed: u64,
}

impl Default for SeedPolicy {
    fn default() -> Self {
        SeedPolicy {
            base_seed: DEFAULT_SEED,
        }
    }
}

impl SeedPolicy {
    /// Policy with an explicit base seed.
    pub fn new(base_seed: u64) -> SeedPolicy {
        SeedPolicy { base_seed }
    }

    /// The seed for one scenario: FNV-1a over the name, mixed with the base seed
    /// through a splitmix64 finalizer so nearby base seeds still decorrelate.
    pub fn scenario_seed(&self, name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        let mut z = h ^ self.base_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One registered experiment: a paper figure, table, validation study or ablation.
///
/// Implementations must be pure functions of `(self, seeds)`: two calls with the same
/// policy must produce identical reports (the determinism suite enforces this
/// byte-for-byte on the JSON rendering).
pub trait Scenario: Send + Sync {
    /// Stable, unique scenario name (used for registry lookup, artifact file names
    /// and seed derivation).
    fn name(&self) -> &'static str;

    /// One-line description of what the scenario reproduces.
    fn description(&self) -> &'static str;

    /// The scenario's parameter grid / configuration as a free-form JSON tree,
    /// embedded in the report for provenance.
    fn params(&self) -> serde::Value {
        serde::Value::Map(vec![])
    }

    /// Run the experiment under the given seed policy.
    fn run(&self, seeds: &SeedPolicy) -> ScenarioReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_uses_the_report_seed() {
        assert_eq!(SeedPolicy::default().base_seed, DEFAULT_SEED);
    }

    #[test]
    fn seeds_differ_across_scenarios_and_bases() {
        let p = SeedPolicy::default();
        assert_ne!(p.scenario_seed("figure5"), p.scenario_seed("figure6"));
        assert_ne!(
            p.scenario_seed("figure5"),
            SeedPolicy::new(DEFAULT_SEED + 1).scenario_seed("figure5")
        );
    }

    #[test]
    fn seed_derivation_is_stable() {
        // Pin the derivation: changing it would silently invalidate every golden file.
        let p = SeedPolicy::default();
        let s = p.scenario_seed("figure5");
        assert_eq!(s, p.scenario_seed("figure5"));
        assert_ne!(s, 0);
    }
}

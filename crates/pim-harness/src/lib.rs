//! # pim-harness — scenario registry and parallel batch harness
//!
//! Every paper artifact (Figures 5–7, 11, 12, Table 1, the validation study and the
//! ablations) used to live in its own `pim-bench` binary with hand-rolled stdout
//! formatting. This crate unifies them behind one interface:
//!
//! * [`scenario::Scenario`] — a named, seedable experiment producing a structured
//!   [`report::ScenarioReport`];
//! * [`registry::Registry`] — the catalog of every registered scenario;
//! * [`runner::run_batch`] — executes any subset across OS threads with deterministic
//!   per-scenario RNG streams and writes versioned JSON artifacts;
//! * [`shard`] — the `run --shard I/N` partition: split a sweep across processes by
//!   unit-key digest, merge the shard caches with `cache merge`, and a warm
//!   unsharded run reproduces the single-process artifacts byte-for-byte;
//! * [`spec`] — declarative scenario specs (schema v1 JSON): user-defined scenarios
//!   as data, compiled into the registry beside the builtins;
//! * [`serve`] — sweep-as-a-service: the spec-submission daemon behind
//!   `pim-tradeoffs serve`, one persistent [`exec::UnitPool`] (warm results,
//!   single-flight unit deduplication) shared by every client;
//! * [`measure`] — the pim-workload → pim-mem bridge behind the `measured` spec
//!   family (synthetic streams through the cache and DRAM-bank models);
//! * [`golden`] — tolerance-aware JSON diffing used by the golden-file regression
//!   tests (`tests/golden/*.json`).
//!
//! Determinism is the core contract: a scenario's seed is derived from the batch's
//! base seed and the scenario *name* (never from thread order or submission index), so
//! `--jobs 1` and `--jobs 8` produce byte-identical artifacts.
//!
//! ```
//! use pim_harness::prelude::*;
//!
//! let registry = Registry::builtin();
//! let report = registry.get("table1").unwrap().run(&SeedPolicy::default());
//! assert_eq!(report.scenario, "table1");
//! assert!(!report.tables.is_empty());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bin_support;
pub mod cache;
pub mod exec;
pub mod golden;
pub mod measure;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod scenarios;
pub mod serve;
pub mod shard;
pub mod spec;

/// Shared, documented base seed so every default run is reproducible. The value is
/// carried over from the legacy `pim_bench::REPORT_SEED`, but scenarios derive their
/// streams via [`scenario::SeedPolicy::scenario_seed`] (base seed mixed with the
/// scenario name), so the numeric outputs are *not* bit-identical to the historical
/// binaries' runs — the golden files pin the harness's own streams.
pub const DEFAULT_SEED: u64 = 0x5C_2004;

/// Convenient glob import for the harness API.
pub mod prelude {
    pub use crate::cache::{
        cache_clear, cache_gc, cache_merge, cache_stats, CacheCounts, MergeOutcome, UnitCache,
        UnitKey, UnitKeyer, CACHE_SCHEMA_VERSION,
    };
    pub use crate::exec::{
        resolve_jobs, run_plan, run_plans, run_plans_cached, run_plans_shard, PlanOutcome,
        ShardPlanOutcome, UnitPool,
    };
    pub use crate::golden::{diff_json, Tolerance};
    pub use crate::measure::{measure_stream, MeasureConfig, MeasuredStats};
    pub use crate::registry::Registry;
    pub use crate::report::{
        Metric, ScenarioReport, Table, ARTIFACT_SCHEMA_VERSION, MANIFEST_SCHEMA_VERSION,
    };
    pub use crate::runner::{run_batch, BatchOptions, BatchOutcome};
    pub use crate::scenario::{Scenario, ScenarioPlan, SeedPolicy};
    pub use crate::serve::{DrainHandle, DrainSummary, ServeOptions, SweepServer};
    pub use crate::shard::{ExecutedUnit, ShardScenario, ShardSpec, SHARD_ARTIFACT_SCHEMA_VERSION};
    pub use crate::spec::{
        load_spec_file, load_specs, parse_spec, register_spec_files, register_specs, spec_files,
        ScenarioSpec, SPEC_SCHEMA_VERSION,
    };
    pub use crate::DEFAULT_SEED;
}

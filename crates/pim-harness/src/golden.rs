//! Tolerance-aware JSON diffing and the verify-or-bless helper for the golden-file
//! regression suite.
//!
//! Golden files pin each scenario's artifact at the default seed. Because every
//! scenario is deterministic the comparison is normally exact, but numeric fields are
//! compared with a per-field *relative* tolerance so a legitimate cross-platform
//! difference in the last ulp (or a deliberately loosened golden) does not flake.
//!
//! The bless workflow: running the golden suite with [`BLESS_ENV`]
//! (`PIM_BLESS_GOLDENS=1 cargo test -p pim-harness --test golden`) regenerates the
//! files instead of verifying them — do this after an *intentional* model or grid
//! change, and commit the result. [`verify_or_bless_file`] is that mechanism:
//!
//! ```
//! use pim_harness::golden::{verify_or_bless_file, Tolerance};
//!
//! let dir = std::env::temp_dir().join(format!("pim-golden-doc-{}", std::process::id()));
//! let path = dir.join("demo.json");
//! let tol = Tolerance::default();
//!
//! // First run under PIM_BLESS_GOLDENS=1 (bless = true) writes the golden file…
//! verify_or_bless_file(&path, "{\"gain\": 10.24}\n", true, tol).unwrap();
//! // …later runs (bless = false) verify the artifact against it…
//! verify_or_bless_file(&path, "{\"gain\": 10.24}\n", false, tol).unwrap();
//! // …and a drifted value fails with a per-field diff.
//! let err = verify_or_bless_file(&path, "{\"gain\": 99.0}\n", false, tol).unwrap_err();
//! assert!(err[0].contains("$.gain"));
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

use serde::Value;
use std::path::Path;

/// Environment variable that switches the golden suite from *verify* to
/// *regenerate*: `PIM_BLESS_GOLDENS=1 cargo test -p pim-harness --test golden`.
pub const BLESS_ENV: &str = "PIM_BLESS_GOLDENS";

/// True when the current process was asked to regenerate golden files ([`BLESS_ENV`]
/// is set).
pub fn bless_requested() -> bool {
    std::env::var_os(BLESS_ENV).is_some()
}

/// Verify `actual_json` against the golden file at `path`, or (when `bless` is true)
/// overwrite the golden file with `actual_json` and succeed.
///
/// On verification failure the returned lines name each mismatching field; a missing
/// or unreadable golden file is reported as a single-line error suggesting the bless
/// command.
pub fn verify_or_bless_file(
    path: &Path,
    actual_json: &str,
    bless: bool,
    tol: Tolerance,
) -> Result<(), Vec<String>> {
    if bless {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| vec![format!("cannot create {}: {e}", parent.display())])?;
        }
        std::fs::write(path, actual_json)
            .map_err(|e| vec![format!("cannot write {}: {e}", path.display())])?;
        return Ok(());
    }
    let golden_json = std::fs::read_to_string(path).map_err(|e| {
        vec![format!(
            "cannot read golden file {} ({e}); run `{BLESS_ENV}=1 cargo test -p pim-harness \
             --test golden` to create it",
            path.display()
        )]
    })?;
    let expected = serde_json::value_from_str(&golden_json).map_err(|e| {
        vec![format!(
            "golden file {} is not valid JSON: {e}",
            path.display()
        )]
    })?;
    let actual = serde_json::value_from_str(actual_json)
        .map_err(|e| vec![format!("actual artifact is not valid JSON: {e}")])?;
    let diffs = diff_json(&expected, &actual, tol);
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(diffs)
    }
}

/// Numeric comparison tolerances.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative tolerance: values agree when `|a − b| ≤ atol + rtol·max(|a|, |b|)`.
    pub rtol: f64,
    /// Absolute floor for values near zero.
    pub atol: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rtol: 1e-9,
            atol: 1e-12,
        }
    }
}

impl Tolerance {
    /// True when two numbers agree under this tolerance (NaN agrees only with NaN).
    pub fn matches(&self, a: f64, b: f64) -> bool {
        if a.is_nan() && b.is_nan() {
            return true;
        }
        (a - b).abs() <= self.atol + self.rtol * a.abs().max(b.abs())
    }
}

/// Compare two JSON trees, returning one human-readable line per mismatch (empty when
/// the trees agree within `tol`). Maps compare by key (order-insensitive), sequences
/// by position, numbers under `tol`, everything else exactly.
pub fn diff_json(expected: &Value, actual: &Value, tol: Tolerance) -> Vec<String> {
    let mut out = Vec::new();
    diff_at("$", expected, actual, tol, &mut out);
    out
}

fn diff_at(path: &str, expected: &Value, actual: &Value, tol: Tolerance, out: &mut Vec<String>) {
    // Numbers of any representation compare numerically.
    if let (Some(e), Some(a)) = (expected.as_f64(), actual.as_f64()) {
        if !tol.matches(e, a) {
            out.push(format!("{path}: expected {e}, got {a}"));
        }
        return;
    }
    match (expected, actual) {
        (Value::Seq(e), Value::Seq(a)) => {
            if e.len() != a.len() {
                out.push(format!(
                    "{path}: expected {} elements, got {}",
                    e.len(),
                    a.len()
                ));
            }
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                diff_at(&format!("{path}[{i}]"), ev, av, tol, out);
            }
        }
        (Value::Map(e), Value::Map(a)) => {
            for (k, ev) in e {
                match actual.get(k) {
                    Some(av) => diff_at(&format!("{path}.{k}"), ev, av, tol, out),
                    None => out.push(format!("{path}.{k}: missing in actual")),
                }
            }
            for (k, _) in a {
                if expected.get(k).is_none() {
                    out.push(format!("{path}.{k}: unexpected key in actual"));
                }
            }
        }
        (e, a) => {
            if e != a {
                out.push(format!("{path}: expected {e:?}, got {a:?}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::value_from_str;

    fn v(s: &str) -> Value {
        value_from_str(s).unwrap()
    }

    #[test]
    fn identical_trees_have_no_diff() {
        let a = v(r#"{"x": [1, 2.5, "s"], "y": {"z": true}}"#);
        assert!(diff_json(&a, &a.clone(), Tolerance::default()).is_empty());
    }

    #[test]
    fn numbers_compare_with_relative_tolerance() {
        let tol = Tolerance {
            rtol: 1e-6,
            atol: 1e-12,
        };
        let a = v("[1000.0]");
        let close = v("[1000.0000001]");
        let far = v("[1000.01]");
        assert!(diff_json(&a, &close, tol).is_empty());
        assert_eq!(diff_json(&a, &far, tol).len(), 1);
    }

    #[test]
    fn integer_and_float_representations_agree() {
        let tol = Tolerance::default();
        assert!(diff_json(&v("[1]"), &v("[1.0]"), tol).is_empty());
        assert!(diff_json(&v("[-3]"), &v("[-3.0]"), tol).is_empty());
    }

    #[test]
    fn structural_mismatches_are_reported_with_paths() {
        let tol = Tolerance::default();
        let diffs = diff_json(
            &v(r#"{"a": [1, 2], "b": "x"}"#),
            &v(r#"{"a": [1], "c": "x"}"#),
            tol,
        );
        let joined = diffs.join("\n");
        assert!(joined.contains("$.a: expected 2 elements"), "{joined}");
        assert!(joined.contains("$.b: missing"), "{joined}");
        assert!(joined.contains("$.c: unexpected"), "{joined}");
    }

    #[test]
    fn type_mismatch_is_a_diff() {
        let diffs = diff_json(&v(r#"["s"]"#), &v("[1]"), Tolerance::default());
        assert_eq!(diffs.len(), 1);
    }
}

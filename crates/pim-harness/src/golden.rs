//! Tolerance-aware JSON diffing for the golden-file regression suite.
//!
//! Golden files pin each scenario's artifact at the default seed. Because every
//! scenario is deterministic the comparison is normally exact, but numeric fields are
//! compared with a per-field *relative* tolerance so a legitimate cross-platform
//! difference in the last ulp (or a deliberately loosened golden) does not flake.

use serde::Value;

/// Numeric comparison tolerances.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative tolerance: values agree when `|a − b| ≤ atol + rtol·max(|a|, |b|)`.
    pub rtol: f64,
    /// Absolute floor for values near zero.
    pub atol: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rtol: 1e-9,
            atol: 1e-12,
        }
    }
}

impl Tolerance {
    /// True when two numbers agree under this tolerance (NaN agrees only with NaN).
    pub fn matches(&self, a: f64, b: f64) -> bool {
        if a.is_nan() && b.is_nan() {
            return true;
        }
        (a - b).abs() <= self.atol + self.rtol * a.abs().max(b.abs())
    }
}

/// Compare two JSON trees, returning one human-readable line per mismatch (empty when
/// the trees agree within `tol`). Maps compare by key (order-insensitive), sequences
/// by position, numbers under `tol`, everything else exactly.
pub fn diff_json(expected: &Value, actual: &Value, tol: Tolerance) -> Vec<String> {
    let mut out = Vec::new();
    diff_at("$", expected, actual, tol, &mut out);
    out
}

fn diff_at(path: &str, expected: &Value, actual: &Value, tol: Tolerance, out: &mut Vec<String>) {
    match (expected, actual) {
        // Numbers of any representation compare numerically.
        (e, a) if e.as_f64().is_some() && a.as_f64().is_some() => {
            let (e, a) = (e.as_f64().unwrap(), a.as_f64().unwrap());
            if !tol.matches(e, a) {
                out.push(format!("{path}: expected {e}, got {a}"));
            }
        }
        (Value::Seq(e), Value::Seq(a)) => {
            if e.len() != a.len() {
                out.push(format!(
                    "{path}: expected {} elements, got {}",
                    e.len(),
                    a.len()
                ));
            }
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                diff_at(&format!("{path}[{i}]"), ev, av, tol, out);
            }
        }
        (Value::Map(e), Value::Map(a)) => {
            for (k, ev) in e {
                match actual.get(k) {
                    Some(av) => diff_at(&format!("{path}.{k}"), ev, av, tol, out),
                    None => out.push(format!("{path}.{k}: missing in actual")),
                }
            }
            for (k, _) in a {
                if expected.get(k).is_none() {
                    out.push(format!("{path}.{k}: unexpected key in actual"));
                }
            }
        }
        (e, a) => {
            if e != a {
                out.push(format!("{path}: expected {e:?}, got {a:?}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::value_from_str;

    fn v(s: &str) -> Value {
        value_from_str(s).unwrap()
    }

    #[test]
    fn identical_trees_have_no_diff() {
        let a = v(r#"{"x": [1, 2.5, "s"], "y": {"z": true}}"#);
        assert!(diff_json(&a, &a.clone(), Tolerance::default()).is_empty());
    }

    #[test]
    fn numbers_compare_with_relative_tolerance() {
        let tol = Tolerance {
            rtol: 1e-6,
            atol: 1e-12,
        };
        let a = v("[1000.0]");
        let close = v("[1000.0000001]");
        let far = v("[1000.01]");
        assert!(diff_json(&a, &close, tol).is_empty());
        assert_eq!(diff_json(&a, &far, tol).len(), 1);
    }

    #[test]
    fn integer_and_float_representations_agree() {
        let tol = Tolerance::default();
        assert!(diff_json(&v("[1]"), &v("[1.0]"), tol).is_empty());
        assert!(diff_json(&v("[-3]"), &v("[-3.0]"), tol).is_empty());
    }

    #[test]
    fn structural_mismatches_are_reported_with_paths() {
        let tol = Tolerance::default();
        let diffs = diff_json(
            &v(r#"{"a": [1, 2], "b": "x"}"#),
            &v(r#"{"a": [1], "c": "x"}"#),
            tol,
        );
        let joined = diffs.join("\n");
        assert!(joined.contains("$.a: expected 2 elements"), "{joined}");
        assert!(joined.contains("$.b: missing"), "{joined}");
        assert!(joined.contains("$.c: unexpected"), "{joined}");
    }

    #[test]
    fn type_mismatch_is_a_diff() {
        let diffs = diff_json(&v(r#"["s"]"#), &v("[1]"), Tolerance::default());
        assert_eq!(diffs.len(), 1);
    }
}

//! The work-stealing plan executor.
//!
//! [`run_plans`] flattens the units of every requested [`ScenarioPlan`] into one
//! global work list and lets up to `jobs` workers claim units from a shared atomic
//! index. Scheduling *units* (grid points) rather than whole scenarios is what keeps
//! every worker busy to the end of a batch: under the old scenario-granular runner
//! the slowest scenario (Figure 12's 56-point grid) serialized the batch tail on a
//! single worker while the rest sat idle.
//!
//! Determinism: unit outputs are written back by flattened index and handed to each
//! plan's assembly step in unit order, and every unit derives its randomness from
//! plan-time values (scenario seed + grid index) — so reports are byte-identical for
//! any `jobs` value, including `1`.

use crate::report::ScenarioReport;
use crate::scenario::{ScenarioPlan, UnitOutput};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a user-facing `jobs` knob: `0` means one worker per available core.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        desim::par::available_threads()
    } else {
        jobs
    }
}

/// Execute one plan across up to `jobs` workers (`0` = one per core).
pub fn run_plan(plan: ScenarioPlan<'_>, jobs: usize) -> ScenarioReport {
    run_plans(vec![plan], jobs)
        .pop()
        .expect("one plan produces one report")
}

/// Execute every plan's units on a shared work-stealing pool and assemble one report
/// per plan, in input order.
pub fn run_plans(plans: Vec<ScenarioPlan<'_>>, jobs: usize) -> Vec<ScenarioReport> {
    let mut assembles = Vec::with_capacity(plans.len());
    let mut tasks = Vec::new();
    let mut spans = Vec::with_capacity(plans.len());
    for plan in plans {
        let (units, assemble) = plan.into_parts();
        let start = tasks.len();
        tasks.extend(units);
        spans.push(start..tasks.len());
        assembles.push(assemble);
    }

    let outputs = execute_units(tasks, jobs);

    let mut outputs: Vec<Option<UnitOutput>> = outputs.into_iter().map(Some).collect();
    assembles
        .into_iter()
        .zip(spans)
        .map(|(assemble, span)| {
            let plan_outputs: Vec<UnitOutput> = outputs[span]
                .iter_mut()
                .map(|slot| slot.take().expect("each unit output consumed once"))
                .collect();
            assemble(plan_outputs)
        })
        .collect()
}

/// Run the flattened unit list, returning outputs by unit index.
#[allow(clippy::type_complexity)]
fn execute_units(
    tasks: Vec<Box<dyn FnOnce() -> UnitOutput + Send + '_>>,
    jobs: usize,
) -> Vec<UnitOutput> {
    let total = tasks.len();
    // Same jobs-resolution rules as every other work-stealing layer. The claim loop
    // below is not `work_steal_map` itself only because plan units are `FnOnce`
    // (consumed on execution), which that Fn-based API cannot express.
    let jobs = desim::par::resolve_threads(jobs, total);
    if jobs <= 1 || total <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }

    let next = AtomicUsize::new(0);
    let tasks: Mutex<Vec<Option<Box<dyn FnOnce() -> UnitOutput + Send + '_>>>> =
        Mutex::new(tasks.into_iter().map(Some).collect());
    let slots: Mutex<Vec<Option<UnitOutput>>> = Mutex::new((0..total).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let task = tasks.lock().expect("no worker panicked")[i]
                    .take()
                    .expect("each unit claimed once");
                let output = task();
                slots.lock().expect("no worker panicked")[i] = Some(output);
            });
        }
    });
    slots
        .into_inner()
        .expect("no worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every unit ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ScenarioReport;
    use serde::Value;

    fn plan_squaring<'s>(name: &'s str, n: usize) -> ScenarioPlan<'s> {
        let units: Vec<_> = (0..n).map(|i| move || i * i).collect();
        ScenarioPlan::map_reduce(units, move |squares: Vec<usize>| {
            let mut report = ScenarioReport::new(name, "squares", 0, Value::Map(vec![]));
            for (i, sq) in squares.iter().enumerate() {
                report = report.with_metric(&format!("sq{i}"), *sq as f64);
            }
            report
        })
    }

    #[test]
    fn outputs_arrive_in_unit_order_for_any_job_count() {
        for jobs in [1, 2, 8] {
            let report = run_plan(plan_squaring("sq", 40), jobs);
            for i in 0..40 {
                assert_eq!(
                    report.metric(&format!("sq{i}")),
                    Some((i * i) as f64),
                    "jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn plans_keep_their_outputs_separate() {
        let reports = run_plans(vec![plan_squaring("a", 7), plan_squaring("b", 13)], 4);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].scenario, "a");
        assert_eq!(reports[0].metrics.len(), 7);
        assert_eq!(reports[1].scenario, "b");
        assert_eq!(reports[1].metrics.len(), 13);
    }

    #[test]
    fn single_plan_runs_whole_scenario_as_one_unit() {
        let plan = ScenarioPlan::single(|| {
            ScenarioReport::new("one", "single unit", 7, Value::Map(vec![])).with_metric("x", 1.0)
        });
        assert_eq!(plan.unit_count(), 1);
        let report = run_plan(plan, 8);
        assert_eq!(report.scenario, "one");
        assert_eq!(report.metric("x"), Some(1.0));
    }

    #[test]
    fn resolve_jobs_maps_zero_to_available_parallelism() {
        assert_eq!(resolve_jobs(0), desim::par::available_threads());
        assert_eq!(resolve_jobs(3), 3);
    }
}

//! The work-stealing plan executor.
//!
//! [`run_plans`] flattens the units of every requested [`ScenarioPlan`] into one
//! global work list and lets up to `jobs` workers claim units from a shared atomic
//! index. Scheduling *units* (grid points) rather than whole scenarios is what keeps
//! every worker busy to the end of a batch: under the old scenario-granular runner
//! the slowest scenario (Figure 12's 56-point grid) serialized the batch tail on a
//! single worker while the rest sat idle.
//!
//! Determinism: unit outputs are written back by flattened index and handed to each
//! plan's assembly step in unit order, and every unit derives its randomness from
//! plan-time values (scenario seed + grid index) — so reports are byte-identical for
//! any `jobs` value, including `1`.
//!
//! Incremental execution: [`run_plans_cached`] additionally consults a persistent
//! [`UnitCache`] *before* a worker runs a claimed unit and writes the result back on
//! completion. Because a unit's cache key is derived entirely from plan-time values
//! and entry publication is an atomic rename, hit/miss behaviour is independent of
//! claim order and worker count — a warm batch produces byte-identical artifacts at
//! any `--jobs`, only faster.
//!
//! # The persistent pool
//!
//! All execution routes through a [`UnitPool`], whose lifetime is decoupled from any
//! single batch. A batch (`run_batch`, the free functions here) is *one client* of
//! an ephemeral pool; a long-lived service ([`crate::serve`]) keeps one pool across
//! requests and gains three things batches cannot express alone:
//!
//! * a **compute-permit gate** — at most `jobs` units execute at any instant across
//!   every concurrent client of the pool, however many request threads are active;
//! * a **warm in-memory result map** (digest → payload) — repeat queries are served
//!   without touching the disk cache;
//! * **single-flight deduplication** per [`UnitKey`](crate::cache::UnitKey) digest —
//!   when two clients need the same unit concurrently, exactly one computes it and
//!   the other blocks until the result is published, then decodes it as a hit.
//!
//! Unit results are pure functions of their key, so a deduplicated or memory-served
//! payload is byte-identical to a recomputed one; the pool changes *when* work
//! happens, never *what* is produced.

use crate::cache::{CacheCounts, CacheEvent, CacheLookup, UnitCache};
use crate::report::ScenarioReport;
use crate::scenario::{PlanUnit, ScenarioPlan, UnitOutput};
use crate::shard::{ExecutedUnit, ShardSpec};
use serde::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Resolve a user-facing `jobs` knob: `0` means one worker per available core.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        desim::par::available_threads()
    } else {
        jobs
    }
}

/// A progress observer for one executor call: invoked after every completed unit
/// with `(completed_so_far, total_units)`. Called from worker threads, so it must
/// be `Sync`; keep it cheap — it runs inside the claim loop.
pub type Progress<'p> = &'p (dyn Fn(usize, usize) + Sync);

/// A cancellation probe for one executor call: polled between units and while
/// queued on the compute gate or a foreign flight; returning `true` makes the
/// call abandon its remaining work and fail with [`CANCELLED_MSG`]. Called from
/// worker threads, so it must be `Sync`; keep it cheap — the pool polls it
/// every [`CANCEL_POLL`] while blocked and once per claimed unit.
///
/// Cancellation only abandons work *this* call uniquely owns: a flight it was
/// computing resolves as failed, waking any foreign waiters to re-contest
/// ownership, and results already published to the pool's caches stay valid.
pub type Cancel<'c> = &'c (dyn Fn() -> bool + Sync);

/// The error string a cancelled executor call fails with. Stable so callers
/// (the serve layer) can distinguish "client gave up" from real failures.
pub const CANCELLED_MSG: &str = "execution cancelled by caller";

/// How often blocked waits (gate queue, foreign flights) poll a cancellation
/// probe. Uncancellable waits (no probe) never wake early.
const CANCEL_POLL: Duration = Duration::from_millis(25);

/// Internal marker: the caller's cancellation probe fired.
struct Cancelled;

/// A plan's report plus its cache accounting (all-zero when uncached).
pub struct PlanOutcome {
    /// The assembled scenario report.
    pub report: ScenarioReport,
    /// How the plan's units interacted with the unit cache (memory-served and
    /// flight-deduplicated units count as hits).
    pub cache: CacheCounts,
}

/// Execute one plan across up to `jobs` workers (`0` = one per core).
pub fn run_plan(plan: ScenarioPlan<'_>, jobs: usize) -> ScenarioReport {
    run_plans(vec![plan], jobs)
        .pop()
        // audit:allow(unwrap-in-library): run_plans returns one report per input plan
        .expect("one plan produces one report")
}

/// Execute every plan's units on a shared work-stealing pool and assemble one report
/// per plan, in input order. No cache is consulted.
pub fn run_plans(plans: Vec<ScenarioPlan<'_>>, jobs: usize) -> Vec<ScenarioReport> {
    UnitPool::new(jobs)
        .run_plans_cached(plans, None)
        // audit:allow(unwrap-in-library): without a cache there is no store I/O, the only error source
        .expect("uncached execution performs no fallible cache I/O")
        .into_iter()
        .map(|outcome| outcome.report)
        .collect()
}

/// [`run_plans`] with an optional unit-result cache: workers consult `cache` before
/// running a claimed unit and store results back on completion. Returns one
/// [`PlanOutcome`] per plan, in input order.
///
/// Cache *reads* never fail the batch (a corrupt entry is evicted and recomputed);
/// cache *writes* do — an unwritable cache directory mid-run is an environment
/// error the user must see, not a silent performance cliff.
///
/// This is the one-shot form: it runs on an ephemeral [`UnitPool`] that dies with
/// the call. Persistent clients construct their own pool.
pub fn run_plans_cached(
    plans: Vec<ScenarioPlan<'_>>,
    jobs: usize,
    cache: Option<&UnitCache>,
) -> Result<Vec<PlanOutcome>, String> {
    UnitPool::new(jobs).run_plans_cached(plans, cache)
}

/// The per-plan result of a sharded execution pass ([`run_plans_shard`]): no
/// report — foreign units have no outputs, so nothing can assemble — just the
/// partition accounting the shard's manifest and partial artifacts record.
pub struct ShardPlanOutcome {
    /// Cache accounting over the plan's *owned* units only.
    pub cache: CacheCounts,
    /// Total units in the plan, across all shards.
    pub units_total: u64,
    /// The owned (executed) units, in plan order.
    pub executed: Vec<ExecutedUnit>,
}

/// Execute only the units of each plan that `shard` owns under the deterministic
/// [`UnitKey`](crate::cache::UnitKey)-digest partition, discarding their in-memory
/// outputs (a shard's product is its cache entries, not a report). Returns one
/// [`ShardPlanOutcome`] per plan, in input order.
///
/// Every unit must carry a cache key: a keyless unit has no digest to partition on
/// and no way to meet the other shards in a cache, so plans with uncacheable units
/// are rejected (the runner names the offending scenario before calling this).
/// Owned units still consult `cache` before running — a warm shard run is all-hits,
/// exactly like a warm unsharded one.
pub fn run_plans_shard(
    plans: Vec<ScenarioPlan<'_>>,
    jobs: usize,
    cache: Option<&UnitCache>,
    shard: &ShardSpec,
) -> Result<Vec<ShardPlanOutcome>, String> {
    let pool = UnitPool::new(jobs);
    let mut owned: Vec<PlanUnit<'_>> = Vec::new();
    let mut spans = Vec::with_capacity(plans.len());
    let mut outcomes: Vec<ShardPlanOutcome> = Vec::with_capacity(plans.len());
    for (plan_idx, plan) in plans.into_iter().enumerate() {
        let (units, _assemble) = plan.into_parts();
        let start = owned.len();
        let mut executed = Vec::new();
        let units_total = units.len() as u64;
        for unit in units {
            let Some((key, _)) = &unit.cache else {
                return Err(format!(
                    "plan #{plan_idx} contains units without cache keys; \
                     sharded execution requires every unit to be cacheable"
                ));
            };
            if shard.owns(key) {
                executed.push(ExecutedUnit {
                    grid_index: key.grid_index,
                    replication_index: key.replication_index,
                    digest: key.digest(),
                });
                owned.push(unit);
            }
        }
        spans.push(start..owned.len());
        outcomes.push(ShardPlanOutcome {
            cache: CacheCounts::default(),
            units_total,
            executed,
        });
    }

    let events = pool.execute_units(owned, cache, None)?;
    for (outcome, span) in outcomes.iter_mut().zip(spans) {
        for (_output, event) in &events[span] {
            outcome.cache.record(*event);
        }
    }
    Ok(outcomes)
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// The state of one in-flight unit computation, keyed by digest in
/// [`UnitPool::flights`]. Waiters block on `done` until the owner publishes the
/// encoded payload (or fails, sending them back to claim ownership themselves).
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    /// The owner is still computing.
    Pending,
    /// The owner published the encoded payload.
    Done(Value),
    /// The owner aborted (store error propagation or a panic unwound through
    /// its guard); a waiter should retry ownership.
    Failed,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        })
    }

    /// Block until the flight resolves; `Ok(Some(payload))` on success,
    /// `Ok(None)` when the owner failed and ownership should be re-contested,
    /// `Err(Cancelled)` when the caller's probe fired while waiting (the
    /// flight itself is untouched — its owner and other waiters are foreign).
    fn wait(&self, cancel: Option<Cancel<'_>>) -> Result<Option<Value>, Cancelled> {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        let mut state = self.state.lock().expect("no worker panicked");
        loop {
            match &*state {
                FlightState::Done(payload) => return Ok(Some(payload.clone())),
                FlightState::Failed => return Ok(None),
                FlightState::Pending => match cancel {
                    None => {
                        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                        state = self.done.wait(state).expect("no worker panicked");
                    }
                    Some(probe) => {
                        if probe() {
                            return Err(Cancelled);
                        }
                        let (next, _timed_out) = self
                            .done
                            .wait_timeout(state, CANCEL_POLL)
                            // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                            .expect("no worker panicked");
                        state = next;
                    }
                },
            }
        }
    }

    fn resolve(&self, state: FlightState) {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        *self.state.lock().expect("no worker panicked") = state;
        self.done.notify_all();
    }
}

/// Removes the flight from the table on drop, failing it first unless the owner
/// completed it — so a panicking unit closure can never strand waiters.
struct FlightGuard<'p> {
    pool: &'p UnitPool,
    digest: u128,
    flight: Arc<Flight>,
    completed: bool,
}

impl FlightGuard<'_> {
    /// Publish the payload to every waiter and deregister the flight.
    fn complete(mut self, payload: Value) {
        self.flight.resolve(FlightState::Done(payload));
        self.completed = true;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.flight.resolve(FlightState::Failed);
        }
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        let mut flights = self.pool.flights.lock().expect("no worker panicked");
        flights.remove(&self.digest);
    }
}

/// What [`UnitPool::claim_flight`] handed this worker for a digest.
enum FlightClaim {
    /// This worker owns the computation (and must resolve the flight).
    Owner,
    /// Another worker owns it; wait on this flight.
    Waiter(Arc<Flight>),
}

/// A counting semaphore over compute slots: at most `total` unit closures run
/// concurrently across every client of the pool. Cache and memory hits bypass the
/// gate — warm serving never queues behind cold computation.
struct Gate {
    permits: Mutex<usize>,
    freed: Condvar,
    /// The full permit budget, for occupancy reporting (`total - available`).
    total: usize,
}

impl Gate {
    /// Take one compute permit, blocking while none are free. With a probe,
    /// the queued wait polls it every [`CANCEL_POLL`] and gives up with
    /// `Err(Cancelled)` instead of computing for a caller that is gone.
    fn acquire(&self, cancel: Option<Cancel<'_>>) -> Result<GatePermit<'_>, Cancelled> {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        let mut permits = self.permits.lock().expect("no worker panicked");
        while *permits == 0 {
            match cancel {
                None => {
                    // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                    permits = self.freed.wait(permits).expect("no worker panicked");
                }
                Some(probe) => {
                    if probe() {
                        return Err(Cancelled);
                    }
                    let (next, _timed_out) = self
                        .freed
                        .wait_timeout(permits, CANCEL_POLL)
                        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                        .expect("no worker panicked");
                    permits = next;
                }
            }
        }
        *permits -= 1;
        Ok(GatePermit { gate: self })
    }

    /// Permits currently held by running unit closures.
    fn in_use(&self) -> usize {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        let available = *self.permits.lock().expect("no worker panicked");
        self.total.saturating_sub(available)
    }
}

/// RAII compute permit; releasing wakes one queued worker.
struct GatePermit<'g> {
    gate: &'g Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        *self.gate.permits.lock().expect("no worker panicked") += 1;
        self.gate.freed.notify_one();
    }
}

/// A persistent unit scheduler (see the module docs): compute-permit gate, warm
/// in-memory result map and single-flight deduplication, shared by every client
/// for the pool's lifetime. One-shot batches construct one per call; a daemon
/// keeps one for its whole life.
pub struct UnitPool {
    /// The raw `jobs` knob (0 = one per core), resolved per call against the
    /// actual unit count exactly like the one-shot executor always did.
    jobs: usize,
    gate: Gate,
    /// Digest → encoded payload for every completed cacheable unit whose payload
    /// survives a JSON round trip (the same admission rule as the disk cache, so
    /// memory and disk never disagree about which units are served warm).
    mem: Mutex<HashMap<u128, Value>>,
    /// Digest → in-flight computation, for single-flight deduplication.
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
}

impl UnitPool {
    /// A pool admitting at most [`resolve_jobs`]`(jobs)` concurrent unit
    /// computations across all its clients.
    pub fn new(jobs: usize) -> UnitPool {
        let total = resolve_jobs(jobs).max(1);
        UnitPool {
            jobs,
            gate: Gate {
                permits: Mutex::new(total),
                freed: Condvar::new(),
                total,
            },
            mem: Mutex::new(HashMap::new()),
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Number of payloads currently held by the warm in-memory result map.
    pub fn mem_entries(&self) -> usize {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        self.mem.lock().expect("no worker panicked").len()
    }

    /// The pool's full compute-permit budget (the resolved `jobs` knob).
    pub fn permits_total(&self) -> usize {
        self.gate.total
    }

    /// Compute permits currently held by running unit closures — the pool's
    /// instantaneous occupancy, `0..=permits_total()`.
    pub fn permits_in_use(&self) -> usize {
        self.gate.in_use()
    }

    /// Digests with a computation currently in flight (single-flight table
    /// occupancy): owners computing plus entries waiters are blocked on.
    pub fn flights_in_progress(&self) -> usize {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        self.flights.lock().expect("no worker panicked").len()
    }

    /// Execute every plan's units and assemble one report per plan, in input
    /// order — the pool-client form of [`run_plans_cached`] (same semantics,
    /// plus this pool's memory cache, gate and deduplication).
    pub fn run_plans_cached(
        &self,
        plans: Vec<ScenarioPlan<'_>>,
        cache: Option<&UnitCache>,
    ) -> Result<Vec<PlanOutcome>, String> {
        self.run_plans_cached_with(plans, cache, None)
    }

    /// [`UnitPool::run_plans_cached`] with an optional per-unit progress
    /// observer (used by the serve layer to stream progress events).
    pub fn run_plans_cached_with(
        &self,
        plans: Vec<ScenarioPlan<'_>>,
        cache: Option<&UnitCache>,
        progress: Option<Progress<'_>>,
    ) -> Result<Vec<PlanOutcome>, String> {
        self.run_plans_cancellable(plans, cache, progress, None)
    }

    /// [`UnitPool::run_plans_cached_with`] plus an optional cancellation
    /// probe. When the probe fires the call stops claiming units, abandons
    /// any gate/flight queue position it holds, and fails with
    /// [`CANCELLED_MSG`]; flights this call owned resolve as failed so
    /// foreign waiters re-contest ownership, and everything already published
    /// to the pool's caches stays valid for future callers.
    pub fn run_plans_cancellable(
        &self,
        plans: Vec<ScenarioPlan<'_>>,
        cache: Option<&UnitCache>,
        progress: Option<Progress<'_>>,
        cancel: Option<Cancel<'_>>,
    ) -> Result<Vec<PlanOutcome>, String> {
        let mut assembles = Vec::with_capacity(plans.len());
        let mut tasks = Vec::new();
        let mut spans = Vec::with_capacity(plans.len());
        for plan in plans {
            let (units, assemble) = plan.into_parts();
            let start = tasks.len();
            tasks.extend(units);
            spans.push(start..tasks.len());
            assembles.push(assemble);
        }

        let executed = self.execute_units_cancellable(tasks, cache, progress, cancel)?;

        let mut executed: Vec<Option<(UnitOutput, CacheEvent)>> =
            executed.into_iter().map(Some).collect();
        Ok(assembles
            .into_iter()
            .zip(spans)
            .map(|(assemble, span)| {
                let mut counts = CacheCounts::default();
                let plan_outputs: Vec<UnitOutput> = executed[span]
                    .iter_mut()
                    .map(|slot| {
                        // audit:allow(unwrap-in-library): each slot is filled by the pool and drained exactly once here
                        let (output, event) = slot.take().expect("each unit output consumed once");
                        counts.record(event);
                        output
                    })
                    .collect();
                PlanOutcome {
                    report: assemble(plan_outputs),
                    cache: counts,
                }
            })
            .collect())
    }

    /// A payload from the warm map, decoded; `None` on absence (or on a decode
    /// mismatch, which sends the caller down the normal compute path).
    fn load_mem(&self, digest: u128, codec: &crate::scenario::UnitCodec) -> Option<UnitOutput> {
        let payload = {
            // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
            let mem = self.mem.lock().expect("no worker panicked");
            mem.get(&digest).cloned()
        }?;
        (codec.decode)(&payload)
    }

    /// Admit a payload to the warm map under the disk cache's round-trip rule.
    fn store_mem(&self, digest: u128, payload: &Value) {
        if !crate::cache::json_round_trips(payload) {
            return;
        }
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        let mut mem = self.mem.lock().expect("no worker panicked");
        mem.insert(digest, payload.clone());
    }

    /// Register interest in a digest: either this worker becomes the owner (and
    /// must resolve the flight through a [`FlightGuard`]) or it gets the
    /// existing flight to wait on.
    fn claim_flight(&self, digest: u128) -> FlightClaim {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        let mut flights = self.flights.lock().expect("no worker panicked");
        match flights.get(&digest) {
            Some(flight) => FlightClaim::Waiter(Arc::clone(flight)),
            None => {
                flights.insert(digest, Flight::new());
                FlightClaim::Owner
            }
        }
    }

    fn flight_guard(&self, digest: u128) -> FlightGuard<'_> {
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        let flights = self.flights.lock().expect("no worker panicked");
        // audit:allow(unwrap-in-library): claim_flight inserted this digest for the owning worker
        let flight = Arc::clone(flights.get(&digest).expect("owner's flight is registered"));
        drop(flights);
        FlightGuard {
            pool: self,
            digest,
            flight,
            completed: false,
        }
    }

    /// Run one claimed unit through memory cache → single-flight → disk cache →
    /// gated computation. Returns the output, the cache event, and any store
    /// error — or `Err(Cancelled)` when the caller's probe fired while queued
    /// (a flight this worker owned resolves as failed via its guard, waking
    /// foreign waiters to re-contest).
    #[allow(clippy::type_complexity)]
    fn run_unit(
        &self,
        unit: PlanUnit<'_>,
        cache: Option<&UnitCache>,
        cancel: Option<Cancel<'_>>,
    ) -> Result<(UnitOutput, CacheEvent, Option<String>), Cancelled> {
        let Some((key, codec)) = &unit.cache else {
            let _permit = self.gate.acquire(cancel)?;
            return Ok(((unit.run)(), CacheEvent::Uncached, None));
        };
        let digest = key.digest_u128();
        if let Some(output) = self.load_mem(digest, codec) {
            return Ok((output, CacheEvent::Hit, None));
        }
        // Plain batches over a fresh pool keep the historical accounting: with no
        // disk cache configured, computed units are uncached, not misses.
        let base_event = if cache.is_some() {
            CacheEvent::Miss
        } else {
            CacheEvent::Uncached
        };
        loop {
            match self.claim_flight(digest) {
                FlightClaim::Waiter(flight) => match flight.wait(cancel)? {
                    Some(payload) => match (codec.decode)(&payload) {
                        // Deduplicated: another client computed this unit while
                        // we waited. Byte-identical by the purity contract.
                        Some(output) => return Ok((output, CacheEvent::Hit, None)),
                        // A payload this codec cannot read (digest collision
                        // across incompatible unit types — not constructible
                        // from well-formed scenarios). Compute it directly.
                        None => {
                            let _permit = self.gate.acquire(cancel)?;
                            return Ok(((unit.run)(), base_event, None));
                        }
                    },
                    // The owner failed; contest ownership again.
                    None => continue,
                },
                FlightClaim::Owner => {
                    let guard = self.flight_guard(digest);
                    let mut event = base_event;
                    if let Some(cache) = cache {
                        match cache.load(key) {
                            CacheLookup::Hit(payload) => match (codec.decode)(&payload) {
                                Some(output) => {
                                    self.store_mem(digest, &payload);
                                    guard.complete(payload);
                                    return Ok((output, CacheEvent::Hit, None));
                                }
                                None => {
                                    // Checksum-intact but shape-incompatible
                                    // payload (e.g. a unit output type changed
                                    // without a schema bump): evict, recompute.
                                    cache.evict(key);
                                    event = CacheEvent::Recomputed;
                                }
                            },
                            CacheLookup::Corrupt => event = CacheEvent::Recomputed,
                            CacheLookup::Miss => {}
                        }
                    }
                    let output = {
                        // A cancelled gate wait drops `guard` un-completed:
                        // the flight resolves Failed and waiters re-contest.
                        let _permit = self.gate.acquire(cancel)?;
                        (unit.run)()
                    };
                    let payload = (codec.encode)(&*output);
                    let store_err = cache.and_then(|c| c.store(key, &payload).err());
                    self.store_mem(digest, &payload);
                    guard.complete(payload);
                    return Ok((output, event, store_err));
                }
            }
        }
    }

    /// Run the flattened unit list, returning (output, cache event) by unit
    /// index. Spawns up to `jobs` claim-loop workers for this call; the pool's
    /// gate additionally bounds *computation* across every concurrent call.
    fn execute_units(
        &self,
        tasks: Vec<PlanUnit<'_>>,
        cache: Option<&UnitCache>,
        progress: Option<Progress<'_>>,
    ) -> Result<Vec<(UnitOutput, CacheEvent)>, String> {
        self.execute_units_cancellable(tasks, cache, progress, None)
    }

    /// [`UnitPool::execute_units`] with an optional cancellation probe (see
    /// [`UnitPool::run_plans_cancellable`] for the abort semantics).
    fn execute_units_cancellable(
        &self,
        tasks: Vec<PlanUnit<'_>>,
        cache: Option<&UnitCache>,
        progress: Option<Progress<'_>>,
        cancel: Option<Cancel<'_>>,
    ) -> Result<Vec<(UnitOutput, CacheEvent)>, String> {
        let total = tasks.len();
        let completed = AtomicUsize::new(0);
        let report_progress = |n: usize| {
            if let Some(progress) = progress {
                progress(n, total);
            }
        };
        let probe_cancel = || cancel.is_some_and(|probe| probe());
        // Same jobs-resolution rules as every other work-stealing layer. The claim
        // loop below is not `work_steal_map` itself only because plan units are
        // `FnOnce` (consumed on execution), which that Fn-based API cannot express.
        let jobs = desim::par::resolve_threads(self.jobs, total);
        if jobs <= 1 || total <= 1 {
            let mut out = Vec::with_capacity(total);
            for unit in tasks {
                if probe_cancel() {
                    return Err(CANCELLED_MSG.to_string());
                }
                let Ok((output, event, store_err)) = self.run_unit(unit, cache, cancel) else {
                    return Err(CANCELLED_MSG.to_string());
                };
                if let Some(err) = store_err {
                    return Err(err);
                }
                out.push((output, event));
                report_progress(completed.fetch_add(1, Ordering::Relaxed) + 1);
            }
            return Ok(out);
        }

        let next = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let tasks: Mutex<Vec<Option<PlanUnit<'_>>>> =
            Mutex::new(tasks.into_iter().map(Some).collect());
        let slots: Mutex<Vec<Option<(UnitOutput, CacheEvent)>>> =
            Mutex::new((0..total).map(|_| None).collect());
        let store_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    if probe_cancel() {
                        cancelled.store(true, Ordering::Relaxed);
                        next.store(total, Ordering::Relaxed);
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                    let unit = tasks.lock().expect("no worker panicked")[i]
                        .take()
                        // audit:allow(unwrap-in-library): the claim counter hands each index to exactly one worker
                        .expect("each unit claimed once");
                    let Ok((output, event, store_err)) = self.run_unit(unit, cache, cancel) else {
                        // The batch is abandoned: stop every worker and let the
                        // cancelled flag (checked before slots) carry the error.
                        cancelled.store(true, Ordering::Relaxed);
                        next.store(total, Ordering::Relaxed);
                        break;
                    };
                    if let Some(err) = store_err {
                        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                        store_errors.lock().expect("no worker panicked").push(err);
                        // The batch is already doomed (its outputs will be discarded):
                        // exhaust the claim counter so no worker pays for more units.
                        next.store(total, Ordering::Relaxed);
                    }
                    // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                    slots.lock().expect("no worker panicked")[i] = Some((output, event));
                    report_progress(completed.fetch_add(1, Ordering::Relaxed) + 1);
                });
            }
        });
        if cancelled.load(Ordering::Relaxed) {
            return Err(CANCELLED_MSG.to_string());
        }
        if let Some(err) = store_errors
            .into_inner()
            // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
            .expect("no worker panicked")
            .into_iter()
            .next()
        {
            return Err(err);
        }
        Ok(slots
            .into_inner()
            // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
            .expect("no worker panicked")
            .into_iter()
            // audit:allow(unwrap-in-library): the loop above claimed and filled every slot
            .map(|slot| slot.expect("every unit ran"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::UnitKeyer;
    use crate::report::ScenarioReport;
    use serde::Value;
    use std::sync::atomic::AtomicUsize;

    fn plan_squaring<'s>(name: &'s str, n: usize) -> ScenarioPlan<'s> {
        let units: Vec<_> = (0..n).map(|i| move || i * i).collect();
        ScenarioPlan::map_reduce(units, move |squares: Vec<usize>| {
            let mut report = ScenarioReport::new(name, "squares", 0, Value::Map(vec![]));
            for (i, sq) in squares.iter().enumerate() {
                report = report.with_metric(&format!("sq{i}"), *sq as f64);
            }
            report
        })
    }

    /// Like `plan_squaring` but cacheable: every unit carries a key, and executions
    /// are counted so tests can prove which units actually ran.
    fn plan_squaring_cached<'s>(
        name: &'s str,
        n: usize,
        runs: &'s AtomicUsize,
    ) -> ScenarioPlan<'s> {
        let keyer = UnitKeyer::new(name, &Value::Map(vec![]), 1);
        let units: Vec<_> = (0..n)
            .map(|i| {
                (keyer.key(i, 0), move || {
                    runs.fetch_add(1, Ordering::Relaxed);
                    i * i
                })
            })
            .collect();
        ScenarioPlan::cached_map_reduce(units, move |squares: Vec<usize>| {
            let mut report = ScenarioReport::new(name, "squares", 0, Value::Map(vec![]));
            for (i, sq) in squares.iter().enumerate() {
                report = report.with_metric(&format!("sq{i}"), *sq as f64);
            }
            report
        })
    }

    #[test]
    fn outputs_arrive_in_unit_order_for_any_job_count() {
        for jobs in [1, 2, 8] {
            let report = run_plan(plan_squaring("sq", 40), jobs);
            for i in 0..40 {
                assert_eq!(
                    report.metric(&format!("sq{i}")),
                    Some((i * i) as f64),
                    "jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn plans_keep_their_outputs_separate() {
        let reports = run_plans(vec![plan_squaring("a", 7), plan_squaring("b", 13)], 4);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].scenario, "a");
        assert_eq!(reports[0].metrics.len(), 7);
        assert_eq!(reports[1].scenario, "b");
        assert_eq!(reports[1].metrics.len(), 13);
    }

    #[test]
    fn single_plan_runs_whole_scenario_as_one_unit() {
        let plan = ScenarioPlan::single(|| {
            ScenarioReport::new("one", "single unit", 7, Value::Map(vec![])).with_metric("x", 1.0)
        });
        assert_eq!(plan.unit_count(), 1);
        assert_eq!(plan.cacheable_unit_count(), 0);
        let report = run_plan(plan, 8);
        assert_eq!(report.scenario, "one");
        assert_eq!(report.metric("x"), Some(1.0));
    }

    #[test]
    fn resolve_jobs_maps_zero_to_available_parallelism() {
        assert_eq!(resolve_jobs(0), desim::par::available_threads());
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn warm_plan_is_served_from_cache_without_running_units() {
        let root = std::env::temp_dir().join(format!("pim-exec-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = UnitCache::open(&root).unwrap();
        let runs = AtomicUsize::new(0);

        let cold = run_plans_cached(vec![plan_squaring_cached("sq", 20, &runs)], 4, Some(&cache))
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 20);
        assert_eq!(
            cold.cache,
            CacheCounts {
                hits: 0,
                misses: 20,
                recomputed: 0
            }
        );

        // Warm: every unit hits, no closure runs, report is identical — at a
        // different job count, so hit behaviour is claim-order independent.
        for jobs in [1, 8] {
            let warm = run_plans_cached(
                vec![plan_squaring_cached("sq", 20, &runs)],
                jobs,
                Some(&cache),
            )
            .unwrap()
            .pop()
            .unwrap();
            assert_eq!(
                runs.load(Ordering::Relaxed),
                20,
                "jobs={jobs}: units re-ran"
            );
            assert_eq!(
                warm.cache,
                CacheCounts {
                    hits: 20,
                    misses: 0,
                    recomputed: 0
                }
            );
            assert_eq!(warm.report.to_json(), cold.report.to_json(), "jobs={jobs}");
        }

        // Without the cache handle the same plan runs everything again.
        let uncached = run_plans_cached(vec![plan_squaring_cached("sq", 20, &runs)], 2, None)
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 40);
        assert_eq!(uncached.cache, CacheCounts::default());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn changed_key_fields_miss_instead_of_hitting() {
        let root = std::env::temp_dir().join(format!("pim-exec-keys-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = UnitCache::open(&root).unwrap();
        let runs = AtomicUsize::new(0);
        fn plan_with_seed(seed: u64, runs: &AtomicUsize) -> ScenarioPlan<'_> {
            let keyer = UnitKeyer::new("sq", &Value::Map(vec![]), seed);
            let units: Vec<_> = (0..4usize)
                .map(|i| {
                    (keyer.key(i, 0), move || {
                        runs.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                })
                .collect();
            ScenarioPlan::cached_map_reduce(units, |_: Vec<usize>| {
                ScenarioReport::new("sq", "d", 0, Value::Map(vec![]))
            })
        }
        run_plans_cached(vec![plan_with_seed(1, &runs)], 2, Some(&cache)).unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 4);
        // A different seed addresses different entries: all units run again.
        let other = run_plans_cached(vec![plan_with_seed(2, &runs)], 2, Some(&cache))
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 8);
        assert_eq!(other.cache.misses, 4);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn persistent_pool_serves_repeat_batches_from_memory() {
        // No disk cache anywhere: the pool's own result map must carry the
        // warmth across batches, which an ephemeral pool cannot do.
        let pool = UnitPool::new(4);
        let runs = AtomicUsize::new(0);
        let cold = pool
            .run_plans_cached(vec![plan_squaring_cached("sq", 12, &runs)], None)
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 12);
        assert_eq!(pool.mem_entries(), 12);
        let warm = pool
            .run_plans_cached(vec![plan_squaring_cached("sq", 12, &runs)], None)
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(
            runs.load(Ordering::Relaxed),
            12,
            "memory-warm batch re-ran units"
        );
        assert_eq!(warm.cache.hits, 12);
        assert_eq!(warm.report.to_json(), cold.report.to_json());
    }

    /// Spin until `cond` holds (the pool exposes occupancy, not wakeups).
    fn wait_for(what: &str, cond: impl Fn() -> bool) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("condition never became true: {what}");
    }

    #[test]
    fn occupancy_counters_expose_gate_and_flight_tables() {
        let pool = UnitPool::new(2);
        assert_eq!(pool.permits_total(), 2);
        assert_eq!(pool.permits_in_use(), 0);
        assert_eq!(pool.flights_in_progress(), 0);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let keyer = UnitKeyer::new("occ", &Value::Map(vec![]), 9);
                let units = vec![(keyer.key(0, 0), move || {
                    rx.recv().unwrap();
                    7usize
                })];
                let plan = ScenarioPlan::cached_map_reduce(units, |_: Vec<usize>| {
                    ScenarioReport::new("occ", "d", 0, Value::Map(vec![]))
                });
                pool.run_plans_cached(vec![plan], None).unwrap();
            });
            wait_for("one permit held and one flight registered", || {
                pool.permits_in_use() == 1 && pool.flights_in_progress() == 1
            });
            tx.send(()).unwrap();
            handle.join().unwrap();
        });
        assert_eq!(pool.permits_in_use(), 0);
        assert_eq!(pool.flights_in_progress(), 0);
        assert_eq!(pool.mem_entries(), 1);
    }

    #[test]
    fn a_cancelled_call_fails_without_running_units_and_the_pool_survives() {
        let pool = UnitPool::new(2);
        let runs = AtomicUsize::new(0);
        let probe = || true;
        let Err(err) = pool.run_plans_cancellable(
            vec![plan_squaring_cached("sq", 8, &runs)],
            None,
            None,
            Some(&probe),
        ) else {
            panic!("cancelled call succeeded");
        };
        assert_eq!(err, CANCELLED_MSG);
        assert_eq!(runs.load(Ordering::Relaxed), 0, "cancelled call ran units");
        assert_eq!(pool.flights_in_progress(), 0);
        assert_eq!(pool.permits_in_use(), 0);
        // The pool is fully reusable afterwards.
        let outcome = pool
            .run_plans_cached(vec![plan_squaring_cached("sq", 8, &runs)], None)
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 8);
        assert_eq!(outcome.report.metrics.len(), 8);
    }

    #[test]
    fn a_cancelled_flight_owner_fails_over_to_foreign_waiters() {
        // Client A owns unit U's flight but is queued on the (fully occupied)
        // gate when its client vanishes. Cancelling A must fail its flight so
        // client B — a foreign waiter on the same digest — re-contests
        // ownership and computes U itself once a permit frees up.
        let pool = UnitPool::new(1);
        assert_eq!(pool.permits_total(), 1);
        let runs = AtomicUsize::new(0);
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        let cancel_a = AtomicBool::new(false);
        std::thread::scope(|scope| {
            // X holds the pool's only compute permit until told to finish.
            let x = scope.spawn(|| {
                let plan = ScenarioPlan::single(move || {
                    block_rx.recv().unwrap();
                    ScenarioReport::new("block", "d", 0, Value::Map(vec![]))
                });
                pool.run_plans_cached(vec![plan], None).unwrap();
            });
            wait_for("X holds the only permit", || pool.permits_in_use() == 1);

            // A claims U's flight, then blocks on the gate behind X.
            let a = scope.spawn(|| {
                let probe = || cancel_a.load(Ordering::Relaxed);
                pool.run_plans_cancellable(
                    vec![plan_squaring_cached("u", 1, &runs)],
                    None,
                    None,
                    Some(&probe),
                )
            });
            wait_for("A registered U's flight", || {
                pool.flights_in_progress() == 1
            });

            // B waits on A's flight (same digest, no cancellation).
            let b = scope
                .spawn(|| pool.run_plans_cached(vec![plan_squaring_cached("u", 1, &runs)], None));
            std::thread::sleep(Duration::from_millis(100));

            cancel_a.store(true, Ordering::Relaxed);
            let Err(err) = a.join().unwrap() else {
                panic!("cancelled owner succeeded");
            };
            assert_eq!(err, CANCELLED_MSG);
            assert_eq!(
                runs.load(Ordering::Relaxed),
                0,
                "cancelled owner computed U"
            );

            // B survives A's cancellation: it re-contests, computes U once the
            // permit frees, and produces the correct report.
            block_tx.send(()).unwrap();
            x.join().unwrap();
            let outcome = b.join().unwrap().unwrap().pop().unwrap();
            assert_eq!(runs.load(Ordering::Relaxed), 1);
            assert_eq!(outcome.report.metric("sq0"), Some(0.0));
        });
        assert_eq!(pool.flights_in_progress(), 0);
        assert_eq!(pool.permits_in_use(), 0);
    }

    #[test]
    fn concurrent_identical_batches_compute_each_unit_exactly_once() {
        // N clients of one pool submit the same 16-unit plan at once. Single
        // flight means the closure bodies run exactly 16 times in total, and the
        // summed accounting shows one non-hit per unit — the rest are hits.
        const CLIENTS: usize = 6;
        const UNITS: usize = 16;
        let pool = UnitPool::new(4);
        let runs = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(CLIENTS);
        let outcomes: Vec<PlanOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        pool.run_plans_cached(vec![plan_squaring_cached("sq", UNITS, &runs)], None)
                            .unwrap()
                            .pop()
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            runs.load(Ordering::Relaxed),
            UNITS,
            "units recomputed despite single-flight deduplication"
        );
        let mut computed = 0;
        let mut hits = 0;
        for outcome in &outcomes {
            computed += outcome.cache.misses + outcome.cache.recomputed;
            hits += outcome.cache.hits;
            assert_eq!(
                outcome.report.to_json(),
                outcomes[0].report.to_json(),
                "concurrent clients saw different reports"
            );
        }
        // Accounting proof: with no disk cache, first-computation events are
        // "uncached" (invisible), so every counted event is a dedup/memory hit.
        assert_eq!(computed, 0);
        assert_eq!(hits as usize, CLIENTS * UNITS - UNITS);
    }

    #[test]
    fn pool_dedup_counts_one_miss_per_unit_with_a_disk_cache() {
        let root = std::env::temp_dir().join(format!("pim-exec-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = UnitCache::open(&root).unwrap();
        const CLIENTS: usize = 4;
        const UNITS: usize = 10;
        let pool = UnitPool::new(2);
        let runs = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(CLIENTS);
        let outcomes: Vec<PlanOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        pool.run_plans_cached(
                            vec![plan_squaring_cached("sq", UNITS, &runs)],
                            Some(&cache),
                        )
                        .unwrap()
                        .pop()
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(runs.load(Ordering::Relaxed), UNITS);
        let (mut misses, mut hits, mut recomputed) = (0, 0, 0);
        for outcome in &outcomes {
            misses += outcome.cache.misses;
            hits += outcome.cache.hits;
            recomputed += outcome.cache.recomputed;
        }
        assert_eq!(misses as usize, UNITS, "exactly one miss per unit key");
        assert_eq!(recomputed, 0);
        assert_eq!(hits as usize, CLIENTS * UNITS - UNITS);
        let _ = std::fs::remove_dir_all(&root);
    }
}

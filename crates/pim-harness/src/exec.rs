//! The work-stealing plan executor.
//!
//! [`run_plans`] flattens the units of every requested [`ScenarioPlan`] into one
//! global work list and lets up to `jobs` workers claim units from a shared atomic
//! index. Scheduling *units* (grid points) rather than whole scenarios is what keeps
//! every worker busy to the end of a batch: under the old scenario-granular runner
//! the slowest scenario (Figure 12's 56-point grid) serialized the batch tail on a
//! single worker while the rest sat idle.
//!
//! Determinism: unit outputs are written back by flattened index and handed to each
//! plan's assembly step in unit order, and every unit derives its randomness from
//! plan-time values (scenario seed + grid index) — so reports are byte-identical for
//! any `jobs` value, including `1`.
//!
//! Incremental execution: [`run_plans_cached`] additionally consults a persistent
//! [`UnitCache`] *before* a worker runs a claimed unit and writes the result back on
//! completion. Because a unit's cache key is derived entirely from plan-time values
//! and entry publication is an atomic rename, hit/miss behaviour is independent of
//! claim order and worker count — a warm batch produces byte-identical artifacts at
//! any `--jobs`, only faster.

use crate::cache::{CacheCounts, CacheEvent, CacheLookup, UnitCache};
use crate::report::ScenarioReport;
use crate::scenario::{PlanUnit, ScenarioPlan, UnitOutput};
use crate::shard::{ExecutedUnit, ShardSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a user-facing `jobs` knob: `0` means one worker per available core.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        desim::par::available_threads()
    } else {
        jobs
    }
}

/// A plan's report plus its cache accounting (all-zero when uncached).
pub struct PlanOutcome {
    /// The assembled scenario report.
    pub report: ScenarioReport,
    /// How the plan's units interacted with the unit cache.
    pub cache: CacheCounts,
}

/// Execute one plan across up to `jobs` workers (`0` = one per core).
pub fn run_plan(plan: ScenarioPlan<'_>, jobs: usize) -> ScenarioReport {
    run_plans(vec![plan], jobs)
        .pop()
        // audit:allow(unwrap-in-library): run_plans returns one report per input plan
        .expect("one plan produces one report")
}

/// Execute every plan's units on a shared work-stealing pool and assemble one report
/// per plan, in input order. No cache is consulted.
pub fn run_plans(plans: Vec<ScenarioPlan<'_>>, jobs: usize) -> Vec<ScenarioReport> {
    run_plans_cached(plans, jobs, None)
        // audit:allow(unwrap-in-library): without a cache there is no store I/O, the only error source
        .expect("uncached execution performs no fallible cache I/O")
        .into_iter()
        .map(|outcome| outcome.report)
        .collect()
}

/// [`run_plans`] with an optional unit-result cache: workers consult `cache` before
/// running a claimed unit and store results back on completion. Returns one
/// [`PlanOutcome`] per plan, in input order.
///
/// Cache *reads* never fail the batch (a corrupt entry is evicted and recomputed);
/// cache *writes* do — an unwritable cache directory mid-run is an environment
/// error the user must see, not a silent performance cliff.
pub fn run_plans_cached(
    plans: Vec<ScenarioPlan<'_>>,
    jobs: usize,
    cache: Option<&UnitCache>,
) -> Result<Vec<PlanOutcome>, String> {
    let mut assembles = Vec::with_capacity(plans.len());
    let mut tasks = Vec::new();
    let mut spans = Vec::with_capacity(plans.len());
    for plan in plans {
        let (units, assemble) = plan.into_parts();
        let start = tasks.len();
        tasks.extend(units);
        spans.push(start..tasks.len());
        assembles.push(assemble);
    }

    let executed = execute_units(tasks, jobs, cache)?;

    let mut executed: Vec<Option<(UnitOutput, CacheEvent)>> =
        executed.into_iter().map(Some).collect();
    Ok(assembles
        .into_iter()
        .zip(spans)
        .map(|(assemble, span)| {
            let mut counts = CacheCounts::default();
            let plan_outputs: Vec<UnitOutput> = executed[span]
                .iter_mut()
                .map(|slot| {
                    // audit:allow(unwrap-in-library): each slot is filled by the pool and drained exactly once here
                    let (output, event) = slot.take().expect("each unit output consumed once");
                    counts.record(event);
                    output
                })
                .collect();
            PlanOutcome {
                report: assemble(plan_outputs),
                cache: counts,
            }
        })
        .collect())
}

/// The per-plan result of a sharded execution pass ([`run_plans_shard`]): no
/// report — foreign units have no outputs, so nothing can assemble — just the
/// partition accounting the shard's manifest and partial artifacts record.
pub struct ShardPlanOutcome {
    /// Cache accounting over the plan's *owned* units only.
    pub cache: CacheCounts,
    /// Total units in the plan, across all shards.
    pub units_total: u64,
    /// The owned (executed) units, in plan order.
    pub executed: Vec<ExecutedUnit>,
}

/// Execute only the units of each plan that `shard` owns under the deterministic
/// [`UnitKey`](crate::cache::UnitKey)-digest partition, discarding their in-memory
/// outputs (a shard's product is its cache entries, not a report). Returns one
/// [`ShardPlanOutcome`] per plan, in input order.
///
/// Every unit must carry a cache key: a keyless unit has no digest to partition on
/// and no way to meet the other shards in a cache, so plans with uncacheable units
/// are rejected (the runner names the offending scenario before calling this).
/// Owned units still consult `cache` before running — a warm shard run is all-hits,
/// exactly like a warm unsharded one.
pub fn run_plans_shard(
    plans: Vec<ScenarioPlan<'_>>,
    jobs: usize,
    cache: Option<&UnitCache>,
    shard: &ShardSpec,
) -> Result<Vec<ShardPlanOutcome>, String> {
    let mut owned: Vec<PlanUnit<'_>> = Vec::new();
    let mut spans = Vec::with_capacity(plans.len());
    let mut outcomes: Vec<ShardPlanOutcome> = Vec::with_capacity(plans.len());
    for (plan_idx, plan) in plans.into_iter().enumerate() {
        let (units, _assemble) = plan.into_parts();
        let start = owned.len();
        let mut executed = Vec::new();
        let units_total = units.len() as u64;
        for unit in units {
            let Some((key, _)) = &unit.cache else {
                return Err(format!(
                    "plan #{plan_idx} contains units without cache keys; \
                     sharded execution requires every unit to be cacheable"
                ));
            };
            if shard.owns(key) {
                executed.push(ExecutedUnit {
                    grid_index: key.grid_index,
                    replication_index: key.replication_index,
                    digest: key.digest(),
                });
                owned.push(unit);
            }
        }
        spans.push(start..owned.len());
        outcomes.push(ShardPlanOutcome {
            cache: CacheCounts::default(),
            units_total,
            executed,
        });
    }

    let events = execute_units(owned, jobs, cache)?;
    for (outcome, span) in outcomes.iter_mut().zip(spans) {
        for (_output, event) in &events[span] {
            outcome.cache.record(*event);
        }
    }
    Ok(outcomes)
}

/// Run one claimed unit, consulting the cache when both a cache and a unit key are
/// present. Returns the output, the cache event, and any store error.
fn run_unit(
    unit: PlanUnit<'_>,
    cache: Option<&UnitCache>,
) -> (UnitOutput, CacheEvent, Option<String>) {
    let (Some(cache), Some((key, codec))) = (cache, unit.cache) else {
        return ((unit.run)(), CacheEvent::Uncached, None);
    };
    let mut event = CacheEvent::Miss;
    match cache.load(&key) {
        CacheLookup::Hit(payload) => match (codec.decode)(&payload) {
            Some(output) => return (output, CacheEvent::Hit, None),
            None => {
                // Checksum-intact but shape-incompatible payload (e.g. a unit output
                // type changed without a schema bump): evict and recompute.
                cache.evict(&key);
                event = CacheEvent::Recomputed;
            }
        },
        CacheLookup::Corrupt => event = CacheEvent::Recomputed,
        CacheLookup::Miss => {}
    }
    let output = (unit.run)();
    let store_err = cache.store(&key, &(codec.encode)(&*output)).err();
    (output, event, store_err)
}

/// Run the flattened unit list, returning (output, cache event) by unit index.
fn execute_units(
    tasks: Vec<PlanUnit<'_>>,
    jobs: usize,
    cache: Option<&UnitCache>,
) -> Result<Vec<(UnitOutput, CacheEvent)>, String> {
    let total = tasks.len();
    // Same jobs-resolution rules as every other work-stealing layer. The claim loop
    // below is not `work_steal_map` itself only because plan units are `FnOnce`
    // (consumed on execution), which that Fn-based API cannot express.
    let jobs = desim::par::resolve_threads(jobs, total);
    if jobs <= 1 || total <= 1 {
        let mut out = Vec::with_capacity(total);
        for unit in tasks {
            let (output, event, store_err) = run_unit(unit, cache);
            if let Some(err) = store_err {
                return Err(err);
            }
            out.push((output, event));
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let tasks: Mutex<Vec<Option<PlanUnit<'_>>>> = Mutex::new(tasks.into_iter().map(Some).collect());
    let slots: Mutex<Vec<Option<(UnitOutput, CacheEvent)>>> =
        Mutex::new((0..total).map(|_| None).collect());
    let store_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                let unit = tasks.lock().expect("no worker panicked")[i]
                    .take()
                    // audit:allow(unwrap-in-library): the claim counter hands each index to exactly one worker
                    .expect("each unit claimed once");
                let (output, event, store_err) = run_unit(unit, cache);
                if let Some(err) = store_err {
                    // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                    store_errors.lock().expect("no worker panicked").push(err);
                    // The batch is already doomed (its outputs will be discarded):
                    // exhaust the claim counter so no worker pays for more units.
                    next.store(total, Ordering::Relaxed);
                }
                // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
                slots.lock().expect("no worker panicked")[i] = Some((output, event));
            });
        }
    });
    if let Some(err) = store_errors
        .into_inner()
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        .expect("no worker panicked")
        .into_iter()
        .next()
    {
        return Err(err);
    }
    Ok(slots
        .into_inner()
        // audit:allow(unwrap-in-library): a poisoned lock means a worker already panicked; propagate that panic
        .expect("no worker panicked")
        .into_iter()
        // audit:allow(unwrap-in-library): the loop above claimed and filled every slot
        .map(|slot| slot.expect("every unit ran"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::UnitKeyer;
    use crate::report::ScenarioReport;
    use serde::Value;
    use std::sync::atomic::AtomicUsize;

    fn plan_squaring<'s>(name: &'s str, n: usize) -> ScenarioPlan<'s> {
        let units: Vec<_> = (0..n).map(|i| move || i * i).collect();
        ScenarioPlan::map_reduce(units, move |squares: Vec<usize>| {
            let mut report = ScenarioReport::new(name, "squares", 0, Value::Map(vec![]));
            for (i, sq) in squares.iter().enumerate() {
                report = report.with_metric(&format!("sq{i}"), *sq as f64);
            }
            report
        })
    }

    /// Like `plan_squaring` but cacheable: every unit carries a key, and executions
    /// are counted so tests can prove which units actually ran.
    fn plan_squaring_cached<'s>(
        name: &'s str,
        n: usize,
        runs: &'s AtomicUsize,
    ) -> ScenarioPlan<'s> {
        let keyer = UnitKeyer::new(name, &Value::Map(vec![]), 1);
        let units: Vec<_> = (0..n)
            .map(|i| {
                (keyer.key(i, 0), move || {
                    runs.fetch_add(1, Ordering::Relaxed);
                    i * i
                })
            })
            .collect();
        ScenarioPlan::cached_map_reduce(units, move |squares: Vec<usize>| {
            let mut report = ScenarioReport::new(name, "squares", 0, Value::Map(vec![]));
            for (i, sq) in squares.iter().enumerate() {
                report = report.with_metric(&format!("sq{i}"), *sq as f64);
            }
            report
        })
    }

    #[test]
    fn outputs_arrive_in_unit_order_for_any_job_count() {
        for jobs in [1, 2, 8] {
            let report = run_plan(plan_squaring("sq", 40), jobs);
            for i in 0..40 {
                assert_eq!(
                    report.metric(&format!("sq{i}")),
                    Some((i * i) as f64),
                    "jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn plans_keep_their_outputs_separate() {
        let reports = run_plans(vec![plan_squaring("a", 7), plan_squaring("b", 13)], 4);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].scenario, "a");
        assert_eq!(reports[0].metrics.len(), 7);
        assert_eq!(reports[1].scenario, "b");
        assert_eq!(reports[1].metrics.len(), 13);
    }

    #[test]
    fn single_plan_runs_whole_scenario_as_one_unit() {
        let plan = ScenarioPlan::single(|| {
            ScenarioReport::new("one", "single unit", 7, Value::Map(vec![])).with_metric("x", 1.0)
        });
        assert_eq!(plan.unit_count(), 1);
        assert_eq!(plan.cacheable_unit_count(), 0);
        let report = run_plan(plan, 8);
        assert_eq!(report.scenario, "one");
        assert_eq!(report.metric("x"), Some(1.0));
    }

    #[test]
    fn resolve_jobs_maps_zero_to_available_parallelism() {
        assert_eq!(resolve_jobs(0), desim::par::available_threads());
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn warm_plan_is_served_from_cache_without_running_units() {
        let root = std::env::temp_dir().join(format!("pim-exec-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = UnitCache::open(&root).unwrap();
        let runs = AtomicUsize::new(0);

        let cold = run_plans_cached(vec![plan_squaring_cached("sq", 20, &runs)], 4, Some(&cache))
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 20);
        assert_eq!(
            cold.cache,
            CacheCounts {
                hits: 0,
                misses: 20,
                recomputed: 0
            }
        );

        // Warm: every unit hits, no closure runs, report is identical — at a
        // different job count, so hit behaviour is claim-order independent.
        for jobs in [1, 8] {
            let warm = run_plans_cached(
                vec![plan_squaring_cached("sq", 20, &runs)],
                jobs,
                Some(&cache),
            )
            .unwrap()
            .pop()
            .unwrap();
            assert_eq!(
                runs.load(Ordering::Relaxed),
                20,
                "jobs={jobs}: units re-ran"
            );
            assert_eq!(
                warm.cache,
                CacheCounts {
                    hits: 20,
                    misses: 0,
                    recomputed: 0
                }
            );
            assert_eq!(warm.report.to_json(), cold.report.to_json(), "jobs={jobs}");
        }

        // Without the cache handle the same plan runs everything again.
        let uncached = run_plans_cached(vec![plan_squaring_cached("sq", 20, &runs)], 2, None)
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 40);
        assert_eq!(uncached.cache, CacheCounts::default());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn changed_key_fields_miss_instead_of_hitting() {
        let root = std::env::temp_dir().join(format!("pim-exec-keys-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = UnitCache::open(&root).unwrap();
        let runs = AtomicUsize::new(0);
        fn plan_with_seed(seed: u64, runs: &AtomicUsize) -> ScenarioPlan<'_> {
            let keyer = UnitKeyer::new("sq", &Value::Map(vec![]), seed);
            let units: Vec<_> = (0..4usize)
                .map(|i| {
                    (keyer.key(i, 0), move || {
                        runs.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                })
                .collect();
            ScenarioPlan::cached_map_reduce(units, |_: Vec<usize>| {
                ScenarioReport::new("sq", "d", 0, Value::Map(vec![]))
            })
        }
        run_plans_cached(vec![plan_with_seed(1, &runs)], 2, Some(&cache)).unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 4);
        // A different seed addresses different entries: all units run again.
        let other = run_plans_cached(vec![plan_with_seed(2, &runs)], 2, Some(&cache))
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(runs.load(Ordering::Relaxed), 8);
        assert_eq!(other.cache.misses, 4);
        let _ = std::fs::remove_dir_all(&root);
    }
}

//! Support for the thin `pim-bench` report binaries.
//!
//! Each legacy binary (`figure5`, `table1`, …) is now a three-line wrapper calling
//! [`scenario_main`], which runs the named scenario at the default seed and renders
//! its report in the legacy stdout-CSV style. Two environment variables mirror the
//! historical behaviour and add the JSON path:
//!
//! * `PIM_RESULTS_DIR` — also write each table as `<dir>/<table>.csv`;
//! * `PIM_ARTIFACTS_DIR` — also write the full report as `<dir>/<scenario>.json`.

use crate::registry::Registry;
use crate::scenario::SeedPolicy;
use std::path::PathBuf;
use std::process::ExitCode;

/// Entry point for a report binary: rejects stray command-line arguments (scenario
/// parameters are fixed by the registry — the legacy `--expected` flag is gone), then
/// runs the named scenario via [`run_scenario_bin`].
pub fn scenario_main(name: &str) -> ExitCode {
    let extra: Vec<String> = std::env::args().skip(1).collect();
    if !extra.is_empty() {
        eprintln!(
            "error: this binary takes no arguments (got {extra:?}); scenario parameters \
             are fixed by the registry — use `pim-tradeoffs run {name} [--seed S]` for \
             seeded runs, or `pim-tradeoffs list` for the catalog"
        );
        return ExitCode::FAILURE;
    }
    run_scenario_bin(name)
}

/// Run one registered scenario as a report binary: CSV tables to stdout, headline
/// metrics to stderr, optional CSV/JSON side outputs via the environment.
pub fn run_scenario_bin(name: &str) -> ExitCode {
    let registry = Registry::builtin();
    let Some(scenario) = registry.get(name) else {
        eprintln!(
            "error: scenario '{name}' is not registered; available: {}",
            registry.names().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let report = scenario.run(&SeedPolicy::default());

    for table in &report.tables {
        println!("# {}: {}", table.name, report.description);
        print!("{}", table.to_csv());
        if let Ok(dir) = std::env::var("PIM_RESULTS_DIR") {
            let path = PathBuf::from(dir).join(format!("{}.csv", table.name));
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(&path, table.to_csv()) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }
    for metric in &report.metrics {
        eprintln!("{} = {}", metric.name, metric.value);
    }
    if let Ok(dir) = std::env::var("PIM_ARTIFACTS_DIR") {
        let path = PathBuf::from(dir).join(format!("{}.json", report.scenario));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_fails_cleanly() {
        // run_scenario_bin (not scenario_main) so the test harness's own argv does
        // not trip the no-arguments check.
        assert_eq!(run_scenario_bin("no_such_scenario"), ExitCode::FAILURE);
    }

    #[test]
    fn fast_scenario_succeeds() {
        // table1 is instantaneous; exercises the full stdout path.
        assert_eq!(run_scenario_bin("table1"), ExitCode::SUCCESS);
    }
}

//! The pim-workload → pim-mem "measured" bridge.
//!
//! The paper characterizes workloads statistically ("assumed or measured"), and the
//! structural models in `pim-mem` exist so the statistical parameters can be
//! *measured* from concrete address streams instead of assumed. This module is that
//! measurement path: it drives a synthetic [`OperationStream`] (instruction mix ×
//! address pattern, from `pim-workload`) through a host-side set-associative cache
//! and a DRAM bank with a row buffer (from `pim-mem`), and reports the statistics the
//! tradeoff models consume — cache miss rate, row-buffer hit rate, mean memory
//! latency and achieved bandwidth.
//!
//! Determinism contract: [`measure_stream`] is a pure function of
//! `(MeasureConfig, seed)`. Two calls with the same inputs produce identical
//! [`MeasuredStats`], bit for bit, which is what lets spec-defined "measured"
//! scenarios ([`crate::spec`]) ride the work-stealing batch runner and still emit
//! byte-identical artifacts at any `--jobs` setting.

use desim::random::RandomStream;
use pim_mem::{Bank, CacheModel, DramTiming, SetAssociativeCache};
use pim_workload::{AddressPattern, InstructionMix, OperationStream};
use serde::{Deserialize, Serialize};

/// Configuration of one measured run: the synthetic stream plus the memory-system
/// geometry it is driven through.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureConfig {
    /// Number of operations to draw from the stream.
    pub ops: u64,
    /// Instruction mix of the stream (memory fraction decides how many operations
    /// reference memory at all).
    pub mix: InstructionMix,
    /// Address pattern of the stream's memory references.
    pub pattern: AddressPattern,
    /// Host cache capacity in bytes.
    pub cache_bytes: u64,
    /// Host cache line size in bytes (must be a power of two).
    pub cache_line_bytes: u64,
    /// Host cache associativity.
    pub cache_ways: usize,
    /// Rows in the DRAM bank behind the cache.
    pub bank_rows: u64,
}

impl MeasureConfig {
    /// A 64 KiB / 64 B-line / 4-way host cache over a 1024-row bank — the same
    /// geometry the `bandwidth_claims` builtin calibrates against.
    pub fn with_pattern(ops: u64, mix: InstructionMix, pattern: AddressPattern) -> Self {
        MeasureConfig {
            ops,
            mix,
            pattern,
            cache_bytes: 64 * 1024,
            cache_line_bytes: 64,
            cache_ways: 4,
            bank_rows: 1024,
        }
    }

    /// Validate the geometry; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.ops == 0 {
            return Err("measured runs need at least one operation".into());
        }
        if self.cache_line_bytes == 0 || !self.cache_line_bytes.is_power_of_two() {
            return Err(format!(
                "cache_line_bytes must be a power of two, got {}",
                self.cache_line_bytes
            ));
        }
        if self.cache_bytes < self.cache_line_bytes {
            return Err("cache must hold at least one line".into());
        }
        if self.cache_ways == 0 {
            return Err("cache associativity must be at least 1".into());
        }
        if self.bank_rows == 0 {
            return Err("the bank needs at least one row".into());
        }
        validate_pattern(&self.pattern)
    }
}

/// Range-check an [`AddressPattern`] (the workload crate itself accepts anything).
pub fn validate_pattern(pattern: &AddressPattern) -> Result<(), String> {
    match pattern {
        AddressPattern::Sequential { stride } => {
            if *stride == 0 {
                return Err("sequential stride must be positive".into());
            }
        }
        AddressPattern::UniformRandom { footprint, line } => {
            if *line == 0 {
                return Err("uniform line size must be positive".into());
            }
            if footprint < line {
                return Err(format!(
                    "uniform footprint ({footprint}) must be at least one line ({line})"
                ));
            }
        }
        AddressPattern::Zipf {
            footprint,
            line,
            exponent,
        } => {
            if *line == 0 {
                return Err("zipf line size must be positive".into());
            }
            if footprint < line {
                return Err(format!(
                    "zipf footprint ({footprint}) must be at least one line ({line})"
                ));
            }
            if !exponent.is_finite() || *exponent < 0.0 {
                return Err(format!(
                    "zipf exponent must be finite and non-negative, got {exponent}"
                ));
            }
        }
    }
    Ok(())
}

/// A compact, stable label for an address pattern (used as a table cell).
pub fn pattern_label(pattern: &AddressPattern) -> String {
    match pattern {
        AddressPattern::Sequential { stride } => format!("seq_s{stride}"),
        AddressPattern::UniformRandom { footprint, line } => {
            format!("uniform_f{footprint}_l{line}")
        }
        AddressPattern::Zipf {
            footprint,
            line,
            exponent,
        } => format!("zipf_f{footprint}_l{line}_e{exponent}"),
    }
}

/// Statistics measured from one stream run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredStats {
    /// Operations drawn from the stream.
    pub ops: u64,
    /// Operations that referenced memory (loads + stores).
    pub memory_accesses: u64,
    /// Host cache miss fraction over the memory accesses (the measured `Pmiss`).
    pub host_miss_rate: f64,
    /// Row-buffer hit fraction over the accesses that reached the bank.
    pub row_hit_rate: f64,
    /// Mean DRAM latency in ns over the accesses that reached the bank
    /// (0 when everything hit in the host cache).
    pub mean_dram_latency_ns: f64,
    /// Bandwidth the bank achieved over its busy time, in Gbit/s.
    pub achieved_gbit_per_s: f64,
}

/// Drive `config.ops` synthetic operations through the host cache and DRAM bank.
///
/// Memory references first probe the host cache; misses go to the bank (whose
/// row-buffer behaviour sets the latency and bandwidth). Pure function of
/// `(config, seed)` — see the module docs for why that matters.
pub fn measure_stream(config: &MeasureConfig, seed: u64) -> MeasuredStats {
    let mut stream = OperationStream::new(
        config.mix,
        config.pattern.clone(),
        RandomStream::new(seed, 1),
    );
    let mut cache = SetAssociativeCache::new(
        config.cache_bytes,
        config.cache_line_bytes,
        config.cache_ways,
    );
    let mut bank = Bank::new(DramTiming::default(), config.bank_rows);
    let mut memory_accesses = 0u64;
    for _ in 0..config.ops {
        let op = stream.next_op();
        if op.kind == pim_workload::OpKind::Compute {
            continue;
        }
        memory_accesses += 1;
        if cache.access(op.address) == pim_mem::CacheOutcome::Miss {
            bank.access(op.address);
        }
    }
    MeasuredStats {
        ops: config.ops,
        memory_accesses,
        host_miss_rate: cache.miss_rate(),
        row_hit_rate: bank.row_hit_rate(),
        mean_dram_latency_ns: bank.mean_latency_ns(),
        achieved_gbit_per_s: bank.achieved_bandwidth_gbit_per_s(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(footprint: u64) -> MeasureConfig {
        MeasureConfig::with_pattern(
            50_000,
            InstructionMix::table1(),
            AddressPattern::UniformRandom {
                footprint,
                line: 64,
            },
        )
    }

    #[test]
    fn default_geometry_is_valid() {
        assert!(uniform(1 << 20).validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        for f in [
            |c: &mut MeasureConfig| c.ops = 0,
            |c: &mut MeasureConfig| c.cache_line_bytes = 48,
            |c: &mut MeasureConfig| c.cache_line_bytes = 0,
            |c: &mut MeasureConfig| c.cache_ways = 0,
            |c: &mut MeasureConfig| c.bank_rows = 0,
            |c: &mut MeasureConfig| c.cache_bytes = 32,
            |c: &mut MeasureConfig| c.pattern = AddressPattern::Sequential { stride: 0 },
            |c: &mut MeasureConfig| {
                c.pattern = AddressPattern::UniformRandom {
                    footprint: 32,
                    line: 64,
                }
            },
            |c: &mut MeasureConfig| {
                c.pattern = AddressPattern::Zipf {
                    footprint: 1 << 20,
                    line: 64,
                    exponent: f64::NAN,
                }
            },
        ] {
            let mut c = uniform(1 << 20);
            f(&mut c);
            assert!(c.validate().is_err(), "degenerate config accepted: {c:?}");
        }
    }

    #[test]
    fn same_seed_reproduces_bit_identical_stats() {
        let c = uniform(1 << 20);
        assert_eq!(measure_stream(&c, 7), measure_stream(&c, 7));
        assert_ne!(
            measure_stream(&c, 7).host_miss_rate,
            measure_stream(&c, 8).host_miss_rate
        );
    }

    #[test]
    fn sequential_stream_mostly_hits_cache_and_row_buffer() {
        let c = MeasureConfig::with_pattern(
            50_000,
            InstructionMix::table1(),
            AddressPattern::Sequential { stride: 8 },
        );
        let s = measure_stream(&c, 1);
        // 8 consecutive byte-strided references share each 64 B line.
        assert!(s.host_miss_rate < 0.2, "miss rate {}", s.host_miss_rate);
        // The cache filters the stream down to one bank access per 64 B line, and a
        // 256 B DRAM row holds four lines: 3 of 4 bank accesses hit the open row.
        assert!(s.row_hit_rate > 0.7, "row hit rate {}", s.row_hit_rate);
    }

    #[test]
    fn pattern_labels_are_stable() {
        assert_eq!(
            pattern_label(&AddressPattern::Sequential { stride: 64 }),
            "seq_s64"
        );
        assert_eq!(
            pattern_label(&AddressPattern::UniformRandom {
                footprint: 1024,
                line: 64
            }),
            "uniform_f1024_l64"
        );
        assert_eq!(
            pattern_label(&AddressPattern::Zipf {
                footprint: 1024,
                line: 64,
                exponent: 1.2
            }),
            "zipf_f1024_l64_e1.2"
        );
    }
}

//! The structured result of running a scenario, and its JSON/CSV renderings.
//!
//! A [`ScenarioReport`] is the machine-readable artifact the batch runner writes under
//! `artifacts/<scenario>.json`. The schema is versioned ([`ARTIFACT_SCHEMA_VERSION`])
//! so downstream tooling — and the golden-file regression suite — can detect
//! incompatible changes instead of silently mis-parsing them.

use serde::{Deserialize, Serialize, Value};

/// Version of the artifact JSON schema. Bump when the shape of [`ScenarioReport`]
/// changes incompatibly, and re-bless the golden files.
pub const ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// Version of the batch `manifest.json` schema. v2 added the `cache` block
/// (enabled flag plus per-scenario hit/miss/recomputed counts from the unit-result
/// cache); v3 added the always-present `shard` block (`null` for unsharded runs,
/// else the `run --shard I/N` partition plus per-scenario total/executed unit
/// counts). Per-scenario artifacts remain at [`ARTIFACT_SCHEMA_VERSION`], and unit
/// cache entries at [`crate::cache::CACHE_SCHEMA_VERSION`] — v3 changed neither.
pub const MANIFEST_SCHEMA_VERSION: u32 = 3;

/// A named headline number (e.g. `max_gain`), surfaced in batch summaries and pinned
/// by the golden files alongside the full tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name, unique within a report.
    pub name: String,
    /// Metric value.
    pub value: f64,
}

/// One rectangular table of results (a figure's data grid, a parameter listing, …).
///
/// Cells are [`Value`]s so a table can mix numbers and strings (Table 1 does); numeric
/// cells keep full `f64` precision in the JSON artifact rather than the rounded
/// decimals the legacy CSV output used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name, unique within a report (most scenarios have exactly one table).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; every row has `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Build a table by parsing a CSV string (header line + data rows) as produced by
    /// the legacy renderers in `pim-core`/`pim-parcels`. Cells parse as unsigned,
    /// signed, then floating-point numbers, falling back to strings.
    pub fn from_csv(name: &str, csv: &str) -> Table {
        let mut lines = csv.lines();
        let columns: Vec<String> = lines
            .next()
            .unwrap_or_default()
            .split(',')
            .map(str::to_string)
            .collect();
        let rows = lines
            .filter(|l| !l.is_empty())
            .map(|l| l.split(',').map(parse_cell).collect())
            .collect();
        Table {
            name: name.to_string(),
            columns,
            rows,
        }
    }

    /// Render the table back to CSV (header line + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(render_cell).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// Parse one CSV cell into the narrowest matching [`Value`].
fn parse_cell(cell: &str) -> Value {
    if let Ok(n) = cell.parse::<u64>() {
        return Value::U64(n);
    }
    if let Ok(n) = cell.parse::<i64>() {
        return Value::I64(n);
    }
    if let Ok(x) = cell.parse::<f64>() {
        return Value::F64(x);
    }
    Value::Str(cell.to_string())
}

/// Render one cell for CSV output. Floats use Rust's shortest round-trip formatting,
/// matching the JSON artifact exactly.
fn render_cell(v: &Value) -> String {
    match v {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => format!("{x:?}"),
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::Null => String::new(),
        other => format!("{other:?}"),
    }
}

/// The complete, machine-readable result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Artifact schema version ([`ARTIFACT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Name of the scenario that produced this report.
    pub scenario: String,
    /// One-line description of what the scenario reproduces.
    pub description: String,
    /// The per-scenario seed the run used (derived from the batch base seed and the
    /// scenario name).
    pub seed: u64,
    /// The scenario's parameter grid / configuration, as a free-form JSON tree.
    pub params: Value,
    /// Headline scalar metrics.
    pub metrics: Vec<Metric>,
    /// Result tables.
    pub tables: Vec<Table>,
}

impl ScenarioReport {
    /// Start a report with empty metrics and tables.
    pub fn new(scenario: &str, description: &str, seed: u64, params: Value) -> ScenarioReport {
        ScenarioReport {
            schema_version: ARTIFACT_SCHEMA_VERSION,
            scenario: scenario.to_string(),
            description: description.to_string(),
            seed,
            params,
            metrics: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Append a headline metric (builder style).
    pub fn with_metric(mut self, name: &str, value: f64) -> ScenarioReport {
        self.metrics.push(Metric {
            name: name.to_string(),
            value,
        });
        self
    }

    /// Append a result table (builder style).
    pub fn with_table(mut self, table: Table) -> ScenarioReport {
        self.tables.push(table);
        self
    }

    /// Serialize to the canonical artifact form: pretty JSON with a trailing newline.
    pub fn to_json(&self) -> String {
        // audit:allow(unwrap-in-library): the vendored JSON writer is total — to_string_pretty returns Ok unconditionally
        let mut s = serde_json::to_string_pretty(self).expect("report serialization is infallible");
        s.push('\n');
        s
    }

    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_through_table() {
        let csv = "nodes,gain,label\n32,10.24,extreme\n1,0.5,base\n";
        let t = Table::from_csv("t", csv);
        assert_eq!(t.columns, vec!["nodes", "gain", "label"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], Value::U64(32));
        assert_eq!(t.rows[0][1], Value::F64(10.24));
        assert_eq!(t.rows[1][2], Value::Str("base".into()));
        assert_eq!(t.to_csv(), csv);
    }

    #[test]
    fn negative_integers_parse_as_signed() {
        let t = Table::from_csv("t", "a\n-7\n");
        assert_eq!(t.rows[0][0], Value::I64(-7));
    }

    #[test]
    fn report_json_round_trips() {
        let r = ScenarioReport::new("demo", "a demo", 42, Value::Map(vec![]))
            .with_metric("max_gain", 10.24)
            .with_table(Table::from_csv("t", "x,y\n1,2.5\n"));
        let json = r.to_json();
        let back: ScenarioReport = serde_json::from_str(json.trim_end()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.metric("max_gain"), Some(10.24));
        assert_eq!(back.schema_version, ARTIFACT_SCHEMA_VERSION);
    }
}

//! The parallel batch runner: execute any subset of the registry across OS threads
//! and write versioned JSON artifacts.
//!
//! The runner schedules at **unit-of-work granularity**: every requested scenario is
//! decomposed via [`crate::scenario::Scenario::plan`] and the flattened unit list
//! (grid points, replications, cells) is executed by the work-stealing pool in
//! [`crate::exec`]. A batch therefore finishes when the global point list drains,
//! not when the slowest whole scenario happens to complete on one worker.
//!
//! Every scenario's seed comes from [`SeedPolicy::scenario_seed`] (a pure function of
//! base seed + name), each unit's stream is derived from that seed plus the unit's
//! grid index, and outputs are assembled by input position — so the artifacts are
//! byte-identical whatever the job count or completion order.
//!
//! With [`BatchOptions::cache_dir`] set, the batch runs **incrementally**: workers
//! consult the content-addressed unit-result cache ([`crate::cache`]) before running
//! each unit and store results back on completion. A warm batch therefore collapses
//! to assembly plus I/O while producing byte-identical artifacts; the manifest
//! (schema v3) records per-scenario hit/miss/recomputed counts.
//!
//! With [`BatchOptions::shard`] set, the batch runs **sharded**: only the units the
//! shard owns under the [`crate::shard`] partition execute, no reports assemble, and
//! the manifest's `shard` block plus per-scenario `<scenario>.shard.json` partial
//! artifacts record exactly which units this process computed. After `cache merge`
//! reunites the shard caches, an unsharded run over the merged cache is all-hits and
//! emits the complete artifacts, byte-identical to a single-process run.

use crate::cache::{ensure_writable_dir, io_err, CacheCounts, UnitCache};
use crate::registry::Registry;
use crate::report::ScenarioReport;
use crate::scenario::SeedPolicy;
use crate::shard::{ShardScenario, ShardSpec};
use serde::Value;
use std::path::{Path, PathBuf};

/// Options for one batch run. The default runs with one worker per core at the
/// [`SeedPolicy::default`] base seed, writes nothing, uses no cache, and is
/// unsharded.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Seed policy shared by every scenario in the batch.
    pub seeds: SeedPolicy,
    /// When set, each report is written to `<out_dir>/<scenario>.json` plus a
    /// `manifest.json` naming the batch (sharded runs write
    /// `<scenario>.shard.json` partial artifacts instead of reports).
    pub out_dir: Option<PathBuf>,
    /// When set, unit results are served from and stored to the content-addressed
    /// cache at this directory (created on first use).
    pub cache_dir: Option<PathBuf>,
    /// When set, execute only the units this shard owns under the deterministic
    /// [`crate::cache::UnitKey`]-digest partition (see [`crate::shard`]): no
    /// reports are assembled, and results meet the other shards in the cache.
    /// Requires `cache_dir` or `out_dir` — a sharded run with neither would
    /// discard everything it computes.
    pub shard: Option<ShardSpec>,
}

/// The result of a batch run.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One report per requested scenario, in request order. Empty for sharded
    /// runs, which never assemble reports (see [`BatchOptions::shard`]).
    pub reports: Vec<ScenarioReport>,
    /// Per-scenario cache accounting, in request order (all zero when no cache
    /// directory was configured; owned units only for sharded runs).
    pub cache_counts: Vec<CacheCounts>,
    /// Whether a unit cache was consulted.
    pub cache_enabled: bool,
    /// Paths written (artifacts then manifest), empty when no `out_dir` was given.
    pub written: Vec<PathBuf>,
    /// The shard this batch executed as, `None` for ordinary (unsharded) runs.
    pub shard: Option<ShardSpec>,
    /// Per-scenario partition accounting, in request order. Empty for unsharded
    /// runs.
    pub shard_scenarios: Vec<ShardScenario>,
}

/// Resolve requested scenario names against the registry, preserving request order
/// and rejecting unknowns and duplicates with a helpful message.
pub fn resolve_names<'r, S: AsRef<str>>(
    registry: &'r Registry,
    requested: &[S],
) -> Result<Vec<&'r str>, String> {
    let mut out: Vec<&str> = Vec::with_capacity(requested.len());
    for name in requested {
        let name = name.as_ref();
        let Some(s) = registry.get(name) else {
            return Err(format!(
                "unknown scenario '{}'; available: {}",
                name,
                registry.names().join(", ")
            ));
        };
        if out.contains(&s.name()) {
            return Err(format!("scenario '{name}' requested twice"));
        }
        out.push(s.name());
    }
    if out.is_empty() {
        return Err("no scenarios requested".into());
    }
    Ok(out)
}

/// Run `names` (already validated, e.g. via [`resolve_names`]) under `opts`.
///
/// Every scenario is decomposed into its plan's units, and the flattened unit list
/// executes across up to `opts.jobs` work-stealing workers; reports come back in the
/// order of `names` and, when `opts.out_dir` is set, are written as JSON artifacts.
///
/// Output and cache directories are probed for writability **before** any unit
/// runs, so a bad `--out`/`--cache` fails fast instead of erroring mid-batch.
pub fn run_batch<S: AsRef<str>>(
    registry: &Registry,
    names: &[S],
    opts: &BatchOptions,
) -> Result<BatchOutcome, String> {
    let names = resolve_names(registry, names)?;
    if let Some(dir) = &opts.out_dir {
        ensure_writable_dir(dir)?;
    }
    let cache = match &opts.cache_dir {
        Some(dir) => Some(UnitCache::open(dir)?),
        None => None,
    };
    if let Some(shard) = &opts.shard {
        if opts.cache_dir.is_none() && opts.out_dir.is_none() {
            return Err(format!(
                "--shard {shard} without --cache or --out would discard every unit \
                 result it computes; give the shard a cache directory (or at least \
                 an output directory for its partial artifacts)"
            ));
        }
    }
    let plans: Vec<_> = names
        .iter()
        .map(|name| {
            registry
                .get(name)
                // audit:allow(unwrap-in-library): resolve_names returned only names this registry contains
                .expect("names were resolved against this registry")
                .plan(&opts.seeds)
        })
        .collect();

    if let Some(shard) = opts.shard {
        // Partitioning needs a digest per unit, so every unit must carry a cache
        // key. Check before executing anything, naming the offending scenario
        // (the executor's own guard only knows plan positions).
        for (name, plan) in names.iter().zip(&plans) {
            if plan.cacheable_unit_count() != plan.unit_count() {
                return Err(format!(
                    "scenario '{name}' has units without cache keys and cannot be \
                     sharded; run it unsharded instead"
                ));
            }
        }
        let outcomes = crate::exec::run_plans_shard(plans, opts.jobs, cache.as_ref(), &shard)?;
        let mut cache_counts = Vec::with_capacity(outcomes.len());
        let mut shard_scenarios = Vec::with_capacity(outcomes.len());
        for (name, outcome) in names.iter().zip(outcomes) {
            cache_counts.push(outcome.cache);
            shard_scenarios.push(ShardScenario {
                scenario: (*name).to_string(),
                units_total: outcome.units_total,
                executed: outcome.executed,
            });
        }
        let written = match &opts.out_dir {
            Some(dir) => write_shard_artifacts(
                dir,
                &opts.seeds,
                &shard,
                &shard_scenarios,
                cache.is_some(),
                &cache_counts,
            )?,
            None => Vec::new(),
        };
        return Ok(BatchOutcome {
            reports: Vec::new(),
            cache_counts,
            cache_enabled: cache.is_some(),
            written,
            shard: Some(shard),
            shard_scenarios,
        });
    }

    // A batch is one client of the unit scheduler: it constructs a pool, runs its
    // plans, and lets the pool die with the call. The `serve` daemon is the other
    // client — same scheduler, but kept alive across requests.
    let pool = crate::exec::UnitPool::new(opts.jobs);
    let outcomes = pool.run_plans_cached(plans, cache.as_ref())?;
    let mut reports = Vec::with_capacity(outcomes.len());
    let mut cache_counts = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        reports.push(outcome.report);
        cache_counts.push(outcome.cache);
    }

    let written = match &opts.out_dir {
        Some(dir) => write_artifacts(dir, &opts.seeds, &reports, cache.is_some(), &cache_counts)?,
        None => Vec::new(),
    };
    Ok(BatchOutcome {
        reports,
        cache_counts,
        cache_enabled: cache.is_some(),
        written,
        shard: None,
        shard_scenarios: Vec::new(),
    })
}

/// Render the manifest (schema v3) for an unsharded batch: batch identity, a
/// `shard` block (always present, `null` here), and the cache accounting block.
/// `Err` only on a serialization failure, which the writer never produces for
/// this tree; callers propagate it anyway so a future fallible writer cannot
/// silently panic a batch.
pub fn manifest_json(
    seeds: &SeedPolicy,
    reports: &[ScenarioReport],
    cache_enabled: bool,
    cache_counts: &[CacheCounts],
) -> Result<String, String> {
    assert_eq!(
        reports.len(),
        cache_counts.len(),
        "one cache-count record per report"
    );
    let names: Vec<String> = reports.iter().map(|r| r.scenario.clone()).collect();
    render_manifest(seeds, &names, Value::Null, cache_enabled, cache_counts)
}

/// Render the manifest (schema v3) for a sharded batch: like [`manifest_json`]
/// but the `shard` block carries the partition (`index`, `count`) and each
/// scenario's total vs executed unit counts — the accounting the cross-shard
/// conformance suite sums to prove every unit ran exactly once.
pub fn shard_manifest_json(
    seeds: &SeedPolicy,
    shard: &ShardSpec,
    scenarios: &[ShardScenario],
    cache_enabled: bool,
    cache_counts: &[CacheCounts],
) -> Result<String, String> {
    assert_eq!(
        scenarios.len(),
        cache_counts.len(),
        "one cache-count record per scenario"
    );
    let per_scenario = scenarios
        .iter()
        .map(|s| {
            Value::Map(vec![
                ("scenario".into(), Value::Str(s.scenario.clone())),
                ("units_total".into(), Value::U64(s.units_total)),
                ("units_executed".into(), Value::U64(s.executed.len() as u64)),
            ])
        })
        .collect();
    let block = Value::Map(vec![
        ("index".into(), Value::U64(u64::from(shard.index()))),
        ("count".into(), Value::U64(u64::from(shard.count()))),
        ("per_scenario".into(), Value::Seq(per_scenario)),
    ]);
    let names: Vec<String> = scenarios.iter().map(|s| s.scenario.clone()).collect();
    render_manifest(seeds, &names, block, cache_enabled, cache_counts)
}

/// The shared manifest skeleton: schema version, batch identity, the `shard`
/// block (`Value::Null` for unsharded batches), and per-scenario cache counts.
fn render_manifest(
    seeds: &SeedPolicy,
    scenario_names: &[String],
    shard: Value,
    cache_enabled: bool,
    cache_counts: &[CacheCounts],
) -> Result<String, String> {
    let per_scenario = scenario_names
        .iter()
        .zip(cache_counts)
        .map(|(name, c)| {
            Value::Map(vec![
                ("scenario".into(), Value::Str(name.clone())),
                ("hits".into(), Value::U64(c.hits)),
                ("misses".into(), Value::U64(c.misses)),
                ("recomputed".into(), Value::U64(c.recomputed)),
            ])
        })
        .collect();
    let manifest = Value::Map(vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(crate::report::MANIFEST_SCHEMA_VERSION)),
        ),
        ("base_seed".into(), Value::U64(seeds.base_seed)),
        (
            "scenarios".into(),
            Value::Seq(
                scenario_names
                    .iter()
                    .map(|name| Value::Str(name.clone()))
                    .collect(),
            ),
        ),
        ("shard".into(), shard),
        (
            "cache".into(),
            Value::Map(vec![
                ("enabled".into(), Value::Bool(cache_enabled)),
                ("per_scenario".into(), Value::Seq(per_scenario)),
            ]),
        ),
    ]);
    let mut json =
        serde_json::to_string_pretty(&manifest).map_err(|e| format!("serialize manifest: {e}"))?;
    json.push('\n');
    Ok(json)
}

/// Write each report to `<dir>/<scenario>.json` plus a `manifest.json`. The artifact
/// files are a pure function of the reports, so repeated batches produce
/// byte-identical files; the manifest additionally records the batch's cache
/// accounting (all-miss on a cold cache, all-hit on a warm one).
pub fn write_artifacts(
    dir: &Path,
    seeds: &SeedPolicy,
    reports: &[ScenarioReport],
    cache_enabled: bool,
    cache_counts: &[CacheCounts],
) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("create directory", dir, &e))?;
    let mut written = Vec::with_capacity(reports.len() + 1);
    for report in reports {
        let path = dir.join(format!("{}.json", report.scenario));
        std::fs::write(&path, report.to_json()).map_err(|e| io_err("write artifact", &path, &e))?;
        written.push(path);
    }
    let path = dir.join("manifest.json");
    let manifest = manifest_json(seeds, reports, cache_enabled, cache_counts)?;
    std::fs::write(&path, manifest).map_err(|e| io_err("write manifest", &path, &e))?;
    written.push(path);
    Ok(written)
}

/// Write a sharded batch's partial artifacts: one `<scenario>.shard.json` per
/// scenario (executed units' indices and digests — see
/// [`ShardScenario::artifact_json`]) plus a `manifest.json` whose `shard` block
/// records the partition. The `.shard` infix keeps partial artifacts from ever
/// colliding with (or being mistaken for) the complete `<scenario>.json` reports
/// an unsharded run writes.
pub fn write_shard_artifacts(
    dir: &Path,
    seeds: &SeedPolicy,
    shard: &ShardSpec,
    scenarios: &[ShardScenario],
    cache_enabled: bool,
    cache_counts: &[CacheCounts],
) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("create directory", dir, &e))?;
    let mut written = Vec::with_capacity(scenarios.len() + 1);
    for scenario in scenarios {
        let path = dir.join(format!("{}.shard.json", scenario.scenario));
        std::fs::write(&path, scenario.artifact_json(shard)?)
            .map_err(|e| io_err("write shard artifact", &path, &e))?;
        written.push(path);
    }
    let path = dir.join("manifest.json");
    let manifest = shard_manifest_json(seeds, shard, scenarios, cache_enabled, cache_counts)?;
    std::fs::write(&path, manifest).map_err(|e| io_err("write manifest", &path, &e))?;
    written.push(path);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_rejects_unknown_and_duplicate_names() {
        let r = Registry::builtin();
        assert!(resolve_names(&r, &["figure99"])
            .unwrap_err()
            .contains("unknown scenario"));
        assert!(resolve_names(&r, &["table1", "table1"])
            .unwrap_err()
            .contains("twice"));
        assert!(resolve_names::<&str>(&r, &[]).is_err());
        assert_eq!(resolve_names(&r, &["table1", "figure7"]).unwrap().len(), 2);
    }

    #[test]
    fn batch_preserves_request_order() {
        let r = Registry::builtin();
        let out = run_batch(
            &r,
            &["figure7", "table1", "ablation_nb"],
            &BatchOptions {
                jobs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let order: Vec<&str> = out.reports.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(order, vec!["figure7", "table1", "ablation_nb"]);
        assert!(out.written.is_empty());
        assert!(!out.cache_enabled);
        assert_eq!(out.cache_counts, vec![CacheCounts::default(); 3]);
    }

    #[test]
    fn artifacts_are_written_and_byte_stable() {
        let r = Registry::builtin();
        let dir =
            std::env::temp_dir().join(format!("pim-harness-runner-test-{}", std::process::id()));
        let names = ["table1", "figure7"];
        let run = |jobs: usize, sub: &str| {
            let out = dir.join(sub);
            run_batch(
                &r,
                &names,
                &BatchOptions {
                    jobs,
                    out_dir: Some(out.clone()),
                    ..Default::default()
                },
            )
            .unwrap();
            out
        };
        let a = run(1, "a");
        let b = run(2, "b");
        for file in ["table1.json", "figure7.json", "manifest.json"] {
            let fa = std::fs::read_to_string(a.join(file)).unwrap();
            let fb = std::fs::read_to_string(b.join(file)).unwrap();
            assert_eq!(fa, fb, "{file} differs between jobs=1 and jobs=2");
            assert!(!fa.is_empty());
        }
        let manifest = std::fs::read_to_string(a.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"scenarios\""));
        assert!(manifest.contains("\"cache\""));
        assert!(manifest.contains("\"schema_version\": 3"));
        // Unsharded batches still render the shard block, as null.
        assert!(manifest.contains("\"shard\": null"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_run_requires_a_cache_or_out_dir() {
        let r = Registry::builtin();
        let err = run_batch(
            &r,
            &["table1"],
            &BatchOptions {
                shard: Some(ShardSpec::new(1, 2).unwrap()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            err.contains("--shard 1/2 without --cache or --out"),
            "{err}"
        );
    }

    #[test]
    fn sharded_run_executes_only_owned_units_and_writes_partial_artifacts() {
        let r = Registry::builtin();
        let base = std::env::temp_dir().join(format!("pim-runner-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let names = ["figure7", "figure12"];
        let shards: Vec<BatchOutcome> = (1..=2u32)
            .map(|i| {
                run_batch(
                    &r,
                    &names,
                    &BatchOptions {
                        jobs: 2,
                        cache_dir: Some(base.join("cache")),
                        out_dir: Some(base.join(format!("out-{i}"))),
                        shard: Some(ShardSpec::new(i, 2).unwrap()),
                        ..Default::default()
                    },
                )
                .unwrap()
            })
            .collect();
        for (i, out) in shards.iter().enumerate() {
            assert!(out.reports.is_empty(), "sharded runs assemble no reports");
            assert_eq!(out.shard_scenarios.len(), 2);
            assert_eq!(out.shard.unwrap().index() as usize, i + 1);
            // Partial artifacts + manifest, never full reports.
            let dir = base.join(format!("out-{}", i + 1));
            assert!(dir.join("figure7.shard.json").exists());
            assert!(dir.join("figure12.shard.json").exists());
            assert!(!dir.join("figure7.json").exists());
            let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
            assert!(manifest.contains("\"shard\": {"), "{manifest}");
            assert!(manifest.contains("\"count\": 2"));
            assert!(manifest.contains("\"units_executed\""));
        }
        // The two shards partition every scenario exactly: counts sum to the
        // total, and both shards agree on each scenario's total.
        for (a, b) in shards[0]
            .shard_scenarios
            .iter()
            .zip(&shards[1].shard_scenarios)
        {
            assert_eq!(a.units_total, b.units_total);
            assert_eq!(
                a.executed.len() as u64 + b.executed.len() as u64,
                a.units_total,
                "scenario '{}' not partitioned exactly",
                a.scenario
            );
        }
        // Both shards fed one cache: a warm unsharded run over it is all-hits
        // and produces complete artifacts.
        let merged = run_batch(
            &r,
            &names,
            &BatchOptions {
                jobs: 2,
                cache_dir: Some(base.join("cache")),
                out_dir: Some(base.join("out-merged")),
                ..Default::default()
            },
        )
        .unwrap();
        for counts in &merged.cache_counts {
            assert_eq!(counts.misses, 0, "warm run after sharding recomputed units");
            assert_eq!(counts.recomputed, 0);
        }
        assert!(base.join("out-merged").join("figure7.json").exists());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn unwritable_out_dir_fails_before_any_unit_runs() {
        let r = Registry::builtin();
        let dir = std::env::temp_dir().join(format!("pim-runner-badout-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("file");
        std::fs::write(&blocker, "x").unwrap();
        // `--out` under a regular file can never be created — even for root, so the
        // test holds in privileged CI containers.
        let err = run_batch(
            &r,
            &["table1"],
            &BatchOptions {
                out_dir: Some(blocker.join("sub")),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("cannot create directory"), "{err}");
        assert!(err.contains("file"), "{err}");
        // Same contract for the cache directory.
        let err = run_batch(
            &r,
            &["table1"],
            &BatchOptions {
                cache_dir: Some(blocker.join("cache")),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("cannot create directory"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

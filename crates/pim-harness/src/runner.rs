//! The parallel batch runner: execute any subset of the registry across OS threads
//! and write versioned JSON artifacts.
//!
//! The runner schedules at **unit-of-work granularity**: every requested scenario is
//! decomposed via [`crate::scenario::Scenario::plan`] and the flattened unit list
//! (grid points, replications, cells) is executed by the work-stealing pool in
//! [`crate::exec`]. A batch therefore finishes when the global point list drains,
//! not when the slowest whole scenario happens to complete on one worker.
//!
//! Every scenario's seed comes from [`SeedPolicy::scenario_seed`] (a pure function of
//! base seed + name), each unit's stream is derived from that seed plus the unit's
//! grid index, and outputs are assembled by input position — so the artifacts are
//! byte-identical whatever the job count or completion order.
//!
//! With [`BatchOptions::cache_dir`] set, the batch runs **incrementally**: workers
//! consult the content-addressed unit-result cache ([`crate::cache`]) before running
//! each unit and store results back on completion. A warm batch therefore collapses
//! to assembly plus I/O while producing byte-identical artifacts; the manifest
//! (schema v2) records per-scenario hit/miss/recomputed counts.

use crate::cache::{ensure_writable_dir, io_err, CacheCounts, UnitCache};
use crate::registry::Registry;
use crate::report::ScenarioReport;
use crate::scenario::SeedPolicy;
use serde::Value;
use std::path::{Path, PathBuf};

/// Options for one batch run. The default runs with one worker per core at the
/// [`SeedPolicy::default`] base seed, writes nothing, and uses no cache.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Seed policy shared by every scenario in the batch.
    pub seeds: SeedPolicy,
    /// When set, each report is written to `<out_dir>/<scenario>.json` plus a
    /// `manifest.json` naming the batch.
    pub out_dir: Option<PathBuf>,
    /// When set, unit results are served from and stored to the content-addressed
    /// cache at this directory (created on first use).
    pub cache_dir: Option<PathBuf>,
}

/// The result of a batch run.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One report per requested scenario, in request order.
    pub reports: Vec<ScenarioReport>,
    /// Per-scenario cache accounting, aligned with `reports` (all zero when no cache
    /// directory was configured).
    pub cache_counts: Vec<CacheCounts>,
    /// Whether a unit cache was consulted.
    pub cache_enabled: bool,
    /// Paths written (artifacts then manifest), empty when no `out_dir` was given.
    pub written: Vec<PathBuf>,
}

/// Resolve requested scenario names against the registry, preserving request order
/// and rejecting unknowns and duplicates with a helpful message.
pub fn resolve_names<'r, S: AsRef<str>>(
    registry: &'r Registry,
    requested: &[S],
) -> Result<Vec<&'r str>, String> {
    let mut out: Vec<&str> = Vec::with_capacity(requested.len());
    for name in requested {
        let name = name.as_ref();
        let Some(s) = registry.get(name) else {
            return Err(format!(
                "unknown scenario '{}'; available: {}",
                name,
                registry.names().join(", ")
            ));
        };
        if out.contains(&s.name()) {
            return Err(format!("scenario '{name}' requested twice"));
        }
        out.push(s.name());
    }
    if out.is_empty() {
        return Err("no scenarios requested".into());
    }
    Ok(out)
}

/// Run `names` (already validated, e.g. via [`resolve_names`]) under `opts`.
///
/// Every scenario is decomposed into its plan's units, and the flattened unit list
/// executes across up to `opts.jobs` work-stealing workers; reports come back in the
/// order of `names` and, when `opts.out_dir` is set, are written as JSON artifacts.
///
/// Output and cache directories are probed for writability **before** any unit
/// runs, so a bad `--out`/`--cache` fails fast instead of erroring mid-batch.
pub fn run_batch<S: AsRef<str>>(
    registry: &Registry,
    names: &[S],
    opts: &BatchOptions,
) -> Result<BatchOutcome, String> {
    let names = resolve_names(registry, names)?;
    if let Some(dir) = &opts.out_dir {
        ensure_writable_dir(dir)?;
    }
    let cache = match &opts.cache_dir {
        Some(dir) => Some(UnitCache::open(dir)?),
        None => None,
    };
    let plans = names
        .iter()
        .map(|name| {
            registry
                .get(name)
                // audit:allow(unwrap-in-library): resolve_names returned only names this registry contains
                .expect("names were resolved against this registry")
                .plan(&opts.seeds)
        })
        .collect();
    let outcomes = crate::exec::run_plans_cached(plans, opts.jobs, cache.as_ref())?;
    let mut reports = Vec::with_capacity(outcomes.len());
    let mut cache_counts = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        reports.push(outcome.report);
        cache_counts.push(outcome.cache);
    }

    let written = match &opts.out_dir {
        Some(dir) => write_artifacts(dir, &opts.seeds, &reports, cache.is_some(), &cache_counts)?,
        None => Vec::new(),
    };
    Ok(BatchOutcome {
        reports,
        cache_counts,
        cache_enabled: cache.is_some(),
        written,
    })
}

/// Render the manifest (schema v2) for a batch: batch identity plus the cache
/// accounting block. `Err` only on a serialization failure, which the writer
/// never produces for this tree; callers propagate it anyway so a future
/// fallible writer cannot silently panic a batch.
pub fn manifest_json(
    seeds: &SeedPolicy,
    reports: &[ScenarioReport],
    cache_enabled: bool,
    cache_counts: &[CacheCounts],
) -> Result<String, String> {
    assert_eq!(
        reports.len(),
        cache_counts.len(),
        "one cache-count record per report"
    );
    let per_scenario = reports
        .iter()
        .zip(cache_counts)
        .map(|(r, c)| {
            Value::Map(vec![
                ("scenario".into(), Value::Str(r.scenario.clone())),
                ("hits".into(), Value::U64(c.hits)),
                ("misses".into(), Value::U64(c.misses)),
                ("recomputed".into(), Value::U64(c.recomputed)),
            ])
        })
        .collect();
    let manifest = Value::Map(vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(crate::report::MANIFEST_SCHEMA_VERSION)),
        ),
        ("base_seed".into(), Value::U64(seeds.base_seed)),
        (
            "scenarios".into(),
            Value::Seq(
                reports
                    .iter()
                    .map(|r| Value::Str(r.scenario.clone()))
                    .collect(),
            ),
        ),
        (
            "cache".into(),
            Value::Map(vec![
                ("enabled".into(), Value::Bool(cache_enabled)),
                ("per_scenario".into(), Value::Seq(per_scenario)),
            ]),
        ),
    ]);
    let mut json =
        serde_json::to_string_pretty(&manifest).map_err(|e| format!("serialize manifest: {e}"))?;
    json.push('\n');
    Ok(json)
}

/// Write each report to `<dir>/<scenario>.json` plus a `manifest.json`. The artifact
/// files are a pure function of the reports, so repeated batches produce
/// byte-identical files; the manifest additionally records the batch's cache
/// accounting (all-miss on a cold cache, all-hit on a warm one).
pub fn write_artifacts(
    dir: &Path,
    seeds: &SeedPolicy,
    reports: &[ScenarioReport],
    cache_enabled: bool,
    cache_counts: &[CacheCounts],
) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("create directory", dir, &e))?;
    let mut written = Vec::with_capacity(reports.len() + 1);
    for report in reports {
        let path = dir.join(format!("{}.json", report.scenario));
        std::fs::write(&path, report.to_json()).map_err(|e| io_err("write artifact", &path, &e))?;
        written.push(path);
    }
    let path = dir.join("manifest.json");
    let manifest = manifest_json(seeds, reports, cache_enabled, cache_counts)?;
    std::fs::write(&path, manifest).map_err(|e| io_err("write manifest", &path, &e))?;
    written.push(path);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_rejects_unknown_and_duplicate_names() {
        let r = Registry::builtin();
        assert!(resolve_names(&r, &["figure99"])
            .unwrap_err()
            .contains("unknown scenario"));
        assert!(resolve_names(&r, &["table1", "table1"])
            .unwrap_err()
            .contains("twice"));
        assert!(resolve_names::<&str>(&r, &[]).is_err());
        assert_eq!(resolve_names(&r, &["table1", "figure7"]).unwrap().len(), 2);
    }

    #[test]
    fn batch_preserves_request_order() {
        let r = Registry::builtin();
        let out = run_batch(
            &r,
            &["figure7", "table1", "ablation_nb"],
            &BatchOptions {
                jobs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let order: Vec<&str> = out.reports.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(order, vec!["figure7", "table1", "ablation_nb"]);
        assert!(out.written.is_empty());
        assert!(!out.cache_enabled);
        assert_eq!(out.cache_counts, vec![CacheCounts::default(); 3]);
    }

    #[test]
    fn artifacts_are_written_and_byte_stable() {
        let r = Registry::builtin();
        let dir =
            std::env::temp_dir().join(format!("pim-harness-runner-test-{}", std::process::id()));
        let names = ["table1", "figure7"];
        let run = |jobs: usize, sub: &str| {
            let out = dir.join(sub);
            run_batch(
                &r,
                &names,
                &BatchOptions {
                    jobs,
                    out_dir: Some(out.clone()),
                    ..Default::default()
                },
            )
            .unwrap();
            out
        };
        let a = run(1, "a");
        let b = run(2, "b");
        for file in ["table1.json", "figure7.json", "manifest.json"] {
            let fa = std::fs::read_to_string(a.join(file)).unwrap();
            let fb = std::fs::read_to_string(b.join(file)).unwrap();
            assert_eq!(fa, fb, "{file} differs between jobs=1 and jobs=2");
            assert!(!fa.is_empty());
        }
        let manifest = std::fs::read_to_string(a.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"scenarios\""));
        assert!(manifest.contains("\"cache\""));
        assert!(manifest.contains("\"schema_version\": 2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_out_dir_fails_before_any_unit_runs() {
        let r = Registry::builtin();
        let dir = std::env::temp_dir().join(format!("pim-runner-badout-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("file");
        std::fs::write(&blocker, "x").unwrap();
        // `--out` under a regular file can never be created — even for root, so the
        // test holds in privileged CI containers.
        let err = run_batch(
            &r,
            &["table1"],
            &BatchOptions {
                out_dir: Some(blocker.join("sub")),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("cannot create directory"), "{err}");
        assert!(err.contains("file"), "{err}");
        // Same contract for the cache directory.
        let err = run_batch(
            &r,
            &["table1"],
            &BatchOptions {
                cache_dir: Some(blocker.join("cache")),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("cannot create directory"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Sharded (multi-process) sweep execution: the `run --shard I/N` partition.
//!
//! The work-stealing pool in [`crate::exec`] scales a batch across threads, but one
//! process is still one machine (and on the 1-core reference container, effectively
//! one core). Sharding scales a sweep across *processes*: N independent `run --shard
//! I/N` invocations — same scenarios, same base seed — each execute a deterministic
//! subset of the flattened unit list and persist their results into (typically
//! per-shard) unit caches. `cache merge` then assembles the shard caches into one
//! directory, and a final unsharded run over the merged cache is all-hits: it
//! recomputes nothing and emits the complete artifacts, byte-identical to a
//! single-process run (the cross-shard conformance suite enforces this).
//!
//! ## The partition function
//!
//! A unit belongs to shard `I` (1-based) of `N` iff
//! `desim::stablehash::shard_index(key.digest_u128(), N) == I - 1`, where `key` is
//! the unit's [`UnitKey`]. Because the digest is a pure function of the unit's
//! identity — scenario name, config fingerprint, resolved seed, grid/replication
//! indices — and of nothing else, the assignment is:
//!
//! * **disjoint and covering**: every unit has exactly one owner shard;
//! * **stable under reordering**: scenario request order, plan flattening order and
//!   claim order never reach the digest;
//! * **approximately uniform**: the digest is a 128-bit hash, so `mod N` splits any
//!   real unit population within noise of evenly (the property suite bounds the
//!   skew at 2× the mean).
//!
//! Only units that carry a cache key can be partitioned — a unit without a key has
//! no digest *and* no way to meet the other shards in a cache — so sharded runs
//! reject plans with uncacheable units. Every registry scenario (builtin and
//! spec-compiled) keys all of its units.
//!
//! ## What a shard run produces
//!
//! A sharded batch never assembles reports (its foreign units have no outputs).
//! Its products are: the cache entries of its owned units, a manifest (schema v3)
//! whose `shard` block records the partition and per-scenario executed counts, and
//! — when `--out` is set — one partial artifact per scenario
//! (`<scenario>.shard.json`) listing the executed units and their digests, which is
//! what the conformance suite uses to prove each unit was computed exactly once
//! across shards.

use crate::cache::UnitKey;
use desim::stablehash::shard_index;
use serde::{Deserialize, Serialize, Value};

/// Version of the per-scenario `<scenario>.shard.json` partial-artifact schema.
pub const SHARD_ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// One shard of an N-way sweep partition: `index` is 1-based (as written on the
/// command line: `--shard 2/3`), `count` is the total number of shards.
///
/// Invariant (enforced by every constructor): `1 <= index <= count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    index: u32,
    count: u32,
}

impl ShardSpec {
    /// A shard `index/count`, validating `1 <= index <= count`.
    pub fn new(index: u32, count: u32) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index == 0 {
            return Err(format!(
                "shard index is 1-based: expected 1..={count}, got 0"
            ));
        }
        if index > count {
            return Err(format!(
                "shard index {index} is out of range for {count} shard(s) (expected 1..={count})"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parse the command-line form `I/N` (e.g. `--shard 2/3`).
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let bad = || format!("--shard expects I/N (e.g. 1/2), got '{s}'");
        let (index, count) = s.split_once('/').ok_or_else(bad)?;
        let index: u32 = index.trim().parse().map_err(|_| bad())?;
        let count: u32 = count.trim().parse().map_err(|_| bad())?;
        ShardSpec::new(index, count)
    }

    /// The 1-based shard index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The total shard count.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether this shard owns `key` under the deterministic partition.
    pub fn owns(&self, key: &UnitKey) -> bool {
        shard_index(key.digest_u128(), self.count) == self.index - 1
    }

    /// The manifest rendering of the partition: `{"index": I, "count": N}`.
    pub fn to_manifest_value(&self) -> Value {
        Value::Map(vec![
            ("index".into(), Value::U64(u64::from(self.index))),
            ("count".into(), Value::U64(u64::from(self.count))),
        ])
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One executed (owned) unit of a shard run: enough identity for the conformance
/// suite to prove cross-shard disjointness and coverage without reading payloads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutedUnit {
    /// Flattened grid-point index within the scenario's plan.
    pub grid_index: u64,
    /// Replication index within the grid point.
    pub replication_index: u64,
    /// The unit's [`UnitKey`] digest (32 hex chars) — its cache entry file stem.
    pub digest: String,
}

/// Per-scenario outcome of a shard run: how many units the scenario's plan has in
/// total, and which of them this shard owned and executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardScenario {
    /// Scenario name (registry identity).
    pub scenario: String,
    /// Total units in the scenario's plan (across all shards).
    pub units_total: u64,
    /// The units this shard owned, in plan order.
    pub executed: Vec<ExecutedUnit>,
}

impl ShardScenario {
    /// Render this scenario's partial artifact (`<scenario>.shard.json`): the
    /// shard identity plus the executed units' indices and digests. `Err` only on
    /// a serialization failure, which the vendored writer never produces; callers
    /// propagate it like every other artifact writer.
    pub fn artifact_json(&self, shard: &ShardSpec) -> Result<String, String> {
        let executed = self
            .executed
            .iter()
            .map(|u| {
                Value::Map(vec![
                    ("grid_index".into(), Value::U64(u.grid_index)),
                    ("replication_index".into(), Value::U64(u.replication_index)),
                    ("digest".into(), Value::Str(u.digest.clone())),
                ])
            })
            .collect();
        let doc = Value::Map(vec![
            (
                "schema_version".into(),
                Value::U64(u64::from(SHARD_ARTIFACT_SCHEMA_VERSION)),
            ),
            ("scenario".into(), Value::Str(self.scenario.clone())),
            ("shard".into(), shard.to_manifest_value()),
            ("units_total".into(), Value::U64(self.units_total)),
            (
                "units_executed".into(),
                Value::U64(self.executed.len() as u64),
            ),
            ("executed".into(), Value::Seq(executed)),
        ]);
        let mut json = serde_json::to_string_pretty(&doc)
            .map_err(|e| format!("serialize shard artifact for '{}': {e}", self.scenario))?;
        json.push('\n');
        Ok(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::UnitKeyer;

    #[test]
    fn parse_accepts_valid_forms_and_whitespace() {
        assert_eq!(
            ShardSpec::parse("1/1").unwrap(),
            ShardSpec::new(1, 1).unwrap()
        );
        assert_eq!(
            ShardSpec::parse("2/3").unwrap(),
            ShardSpec::new(2, 3).unwrap()
        );
        let s = ShardSpec::parse(" 3 / 8 ").unwrap();
        assert_eq!((s.index(), s.count()), (3, 8));
        assert_eq!(s.to_string(), "3/8");
    }

    #[test]
    fn parse_rejects_malformed_and_out_of_range_shards() {
        for bad in ["", "1", "/", "1/", "/2", "a/b", "1/2/3", "-1/2", "1/-2"] {
            let err = ShardSpec::parse(bad).unwrap_err();
            assert!(err.contains("I/N"), "'{bad}': {err}");
        }
        // 0-based indices, overflowing indices and zero-way splits are rejected
        // with messages naming the valid range.
        assert!(ShardSpec::parse("0/4").unwrap_err().contains("1-based"));
        assert!(ShardSpec::parse("5/4")
            .unwrap_err()
            .contains("out of range"));
        assert!(ShardSpec::parse("1/0").unwrap_err().contains("at least 1"));
        assert!(ShardSpec::parse("0/0").unwrap_err().contains("at least 1"));
    }

    #[test]
    fn every_key_is_owned_by_exactly_one_shard() {
        let keyer = UnitKeyer::new("demo", &Value::Map(vec![]), 7);
        for count in 1..=6u32 {
            let shards: Vec<ShardSpec> = (1..=count)
                .map(|i| ShardSpec::new(i, count).unwrap())
                .collect();
            for grid in 0..64usize {
                let key = keyer.key(grid, 0);
                let owners = shards.iter().filter(|s| s.owns(&key)).count();
                assert_eq!(owners, 1, "unit {grid} owned by {owners} of {count} shards");
            }
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let shard = ShardSpec::new(1, 1).unwrap();
        let keyer = UnitKeyer::new("demo", &Value::Map(vec![]), 7);
        for grid in 0..32usize {
            assert!(shard.owns(&keyer.key(grid, 0)));
        }
    }

    #[test]
    fn shard_artifact_renders_identity_and_units() {
        let shard = ShardSpec::new(2, 3).unwrap();
        let scenario = ShardScenario {
            scenario: "figure7".into(),
            units_total: 11,
            executed: vec![ExecutedUnit {
                grid_index: 4,
                replication_index: 0,
                digest: "ab".repeat(16),
            }],
        };
        let json = scenario.artifact_json(&shard).unwrap();
        let doc = serde_json::value_from_str(&json).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_f64()),
            Some(f64::from(SHARD_ARTIFACT_SCHEMA_VERSION))
        );
        assert_eq!(doc.get("scenario"), Some(&Value::Str("figure7".into())));
        assert_eq!(
            doc.get("shard").and_then(|s| s.get("index")),
            Some(&Value::U64(2))
        );
        assert_eq!(doc.get("units_total"), Some(&Value::U64(11)));
        assert_eq!(doc.get("units_executed"), Some(&Value::U64(1)));
        let Some(Value::Seq(units)) = doc.get("executed") else {
            panic!("executed list missing");
        };
        assert_eq!(units[0].get("grid_index"), Some(&Value::U64(4)));
    }
}

//! Closed-form scenarios: Figure 7 and the `NB` sensitivity ablation.

use crate::cache::UnitKeyer;
use crate::report::{ScenarioReport, Table};
use crate::scenario::{Scenario, ScenarioPlan, SeedPolicy};
use pim_analytic::{nb_sensitivity, AnalyticModel, SweepParameter};
use serde::Value;

/// Figure 7: the analytical model's normalized runtime versus node count, one curve
/// per %WL, exposing the coincidence point at `N = NB`.
pub struct Figure7;

/// Node counts along Figure 7's x-axis.
const F7_NODES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

impl Scenario for Figure7 {
    fn name(&self) -> &str {
        "figure7"
    }

    fn description(&self) -> &str {
        "analytical normalized runtime vs node count, one column per %WL"
    }

    fn params(&self) -> Value {
        Value::Map(vec![(
            "node_counts".into(),
            Value::Seq(F7_NODES.iter().map(|&n| Value::U64(n as u64)).collect()),
        )])
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let keyer = UnitKeyer::for_scenario(self, seeds);
        ScenarioPlan::cached_single(keyer.key(0, 0), move || self.compute(seed))
    }
}

impl Figure7 {
    /// The closed-form evaluation (milliseconds of work — a single plan unit).
    fn compute(&self, seed: u64) -> ScenarioReport {
        let model = AnalyticModel::table1();
        let wl_values: Vec<f64> = (0..=10).map(|i| f64::from(i) / 10.0).collect();
        let mut columns = vec!["nodes".to_string()];
        for wl in &wl_values {
            columns.push(format!("rel_time_wl{:.0}", wl * 100.0));
        }
        let rows = F7_NODES
            .iter()
            .map(|&n| {
                let mut row = vec![Value::U64(n as u64)];
                for &wl in &wl_values {
                    row.push(Value::F64(model.time_relative(n as f64, wl)));
                }
                row
            })
            .collect();
        let table = Table {
            name: self.name().to_string(),
            columns,
            rows,
        };
        ScenarioReport::new(self.name(), self.description(), seed, self.params())
            .with_metric("nb", model.nb())
            .with_table(table)
    }
}

/// E-X1: sensitivity of the break-even parameter `NB` to each machine constant, one
/// table per swept parameter.
pub struct AblationNb;

/// The sweeps: parameter, table name, values (the legacy binary's grids).
fn nb_sweeps() -> [(SweepParameter, &'static str, Vec<f64>); 5] {
    [
        (
            SweepParameter::CacheMissRate,
            "ablation_nb_pmiss",
            vec![0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5],
        ),
        (
            SweepParameter::LwpCycleTime,
            "ablation_nb_lwp_clock",
            vec![1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 20.0],
        ),
        (
            SweepParameter::LwpMemoryCycles,
            "ablation_nb_tml",
            vec![10.0, 20.0, 30.0, 45.0, 60.0, 90.0],
        ),
        (
            SweepParameter::HwpMemoryCycles,
            "ablation_nb_tmh",
            vec![30.0, 60.0, 90.0, 150.0, 300.0, 500.0],
        ),
        (
            SweepParameter::MemoryMix,
            "ablation_nb_mix",
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0],
        ),
    ]
}

fn parameter_column(parameter: SweepParameter) -> &'static str {
    match parameter {
        SweepParameter::CacheMissRate => "p_miss",
        SweepParameter::LwpCycleTime => "lwp_cycle_ns",
        SweepParameter::LwpMemoryCycles => "lwp_memory_cycles",
        SweepParameter::HwpMemoryCycles => "hwp_memory_cycles",
        SweepParameter::MemoryMix => "memory_mix",
    }
}

impl Scenario for AblationNb {
    fn name(&self) -> &str {
        "ablation_nb"
    }

    fn description(&self) -> &str {
        "break-even node count NB vs each swept machine constant"
    }

    fn params(&self) -> Value {
        Value::Map(
            nb_sweeps()
                .into_iter()
                .map(|(p, _, values)| {
                    (
                        parameter_column(p).to_string(),
                        Value::Seq(values.into_iter().map(Value::F64).collect()),
                    )
                })
                .collect(),
        )
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let keyer = UnitKeyer::for_scenario(self, seeds);
        ScenarioPlan::cached_single(keyer.key(0, 0), move || self.compute(seed))
    }
}

impl AblationNb {
    /// The closed-form sweep (milliseconds of work — a single plan unit).
    fn compute(&self, seed: u64) -> ScenarioReport {
        let mut report = ScenarioReport::new(self.name(), self.description(), seed, self.params());
        for (parameter, table_name, values) in nb_sweeps() {
            let rows = nb_sensitivity(parameter, &values)
                .into_iter()
                .map(|r| {
                    vec![
                        Value::F64(r.value),
                        Value::F64(r.nb),
                        Value::F64(r.gain_32_full),
                    ]
                })
                .collect();
            report = report.with_table(Table {
                name: table_name.to_string(),
                columns: vec![
                    parameter_column(parameter).to_string(),
                    "nb".into(),
                    "gain_n32_wl100".into(),
                ],
                rows,
            });
        }
        report
    }
}

//! Study-2 scenarios: parcel latency hiding (Figures 11 and 12) and the network and
//! parcel-overhead ablations.
//!
//! The two figure scenarios decompose into one work unit per grid point, seeded
//! exactly as `pim_parcels::run_latency_hiding`/`run_idle_time` seed their internal
//! sweeps (via [`pim_parcels::experiment::point_seed`]); the ablations decompose per
//! grid cell.

use crate::cache::UnitKeyer;
use crate::report::{ScenarioReport, Table};
use crate::scenario::{Scenario, ScenarioPlan, SeedPolicy};
use pim_parcels::prelude::*;
use serde::{Serialize, Value};

/// Figure 11: latency hiding with parcels — the test/control work ratio as the
/// system-wide latency sweeps, per (parallelism, remote%) curve.
pub struct Figure11;

fn figure11_spec(seed: u64) -> LatencyHidingSpec {
    LatencyHidingSpec {
        seed,
        ..LatencyHidingSpec::figure11()
    }
}

impl Scenario for Figure11 {
    fn name(&self) -> &str {
        "figure11"
    }

    fn description(&self) -> &str {
        "test/control work ratio vs latency, per (parallelism, remote%) curve"
    }

    fn params(&self) -> Value {
        // The spec's seed field is overridden per run; report the grid with seed 0 so
        // `params` stays independent of the seed policy.
        figure11_spec(0).to_value()
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let (name, description, params) = (self.name(), self.description(), self.params());
        let keyer = UnitKeyer::for_scenario(self, seeds);
        let spec = figure11_spec(seed);
        let units: Vec<_> = spec
            .configs()
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                (keyer.key(i, 0), move || {
                    evaluate_point(c, point_seed(seed, i))
                })
            })
            .collect();
        ScenarioPlan::cached_map_reduce(units, move |points: Vec<LatencyHidingPoint>| {
            let best = points.iter().map(|p| p.ops_ratio).fold(0.0, f64::max);
            let worst = points
                .iter()
                .map(|p| p.ops_ratio)
                .fold(f64::INFINITY, f64::min);
            let rows = points
                .iter()
                .map(|p| {
                    vec![
                        Value::U64(p.parallelism as u64),
                        Value::F64(p.remote_fraction * 100.0),
                        Value::F64(p.latency_cycles),
                        Value::F64(p.ops_ratio),
                        Value::F64(p.test_idle_fraction),
                        Value::F64(p.control_idle_fraction),
                    ]
                })
                .collect();
            let table = Table {
                name: name.to_string(),
                columns: vec![
                    "parallelism".into(),
                    "remote_pct".into(),
                    "latency_cycles".into(),
                    "ops_ratio".into(),
                    "test_idle_frac".into(),
                    "control_idle_frac".into(),
                ],
                rows,
            };
            ScenarioReport::new(name, description, seed, params)
                .with_metric("max_ops_ratio", best)
                .with_metric("min_ops_ratio", worst)
                .with_table(table)
        })
    }
}

/// Figure 12: idle time of the test and control systems versus the degree of
/// parallelism, for system sizes 1–256 (the paper's 16-node set was never completed).
pub struct Figure12;

fn figure12_spec(seed: u64) -> IdleTimeSpec {
    IdleTimeSpec {
        seed,
        ..IdleTimeSpec::figure12()
    }
}

impl Scenario for Figure12 {
    fn name(&self) -> &str {
        "figure12"
    }

    fn description(&self) -> &str {
        "idle time of test and control systems vs parallelism, per node count"
    }

    fn params(&self) -> Value {
        figure12_spec(0).to_value()
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let (name, description, params) = (self.name(), self.description(), self.params());
        let keyer = UnitKeyer::for_scenario(self, seeds);
        let spec = figure12_spec(seed);
        let units: Vec<_> = spec
            .configs()
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                (keyer.key(i, 0), move || {
                    evaluate_idle_point(c, point_seed(seed, i))
                })
            })
            .collect();
        ScenarioPlan::cached_map_reduce(units, move |points: Vec<IdleTimePoint>| {
            let max_test_idle_saturated = points
                .iter()
                .filter(|p| p.parallelism >= 64)
                .map(|p| p.test_idle_fraction)
                .fold(0.0, f64::max);
            let min_control_idle = points
                .iter()
                .map(|p| p.control_idle_fraction)
                .fold(f64::INFINITY, f64::min);
            let rows = points
                .iter()
                .map(|p| {
                    vec![
                        Value::U64(p.nodes as u64),
                        Value::U64(p.parallelism as u64),
                        Value::F64(p.test_idle_cycles),
                        Value::F64(p.control_idle_cycles),
                        Value::F64(p.test_idle_fraction),
                        Value::F64(p.control_idle_fraction),
                    ]
                })
                .collect();
            let table = Table {
                name: name.to_string(),
                columns: vec![
                    "nodes".into(),
                    "parallelism".into(),
                    "test_idle_cycles".into(),
                    "control_idle_cycles".into(),
                    "test_idle_frac".into(),
                    "control_idle_frac".into(),
                ],
                rows,
            };
            ScenarioReport::new(name, description, seed, params)
                .with_metric("max_test_idle_frac_saturated", max_test_idle_saturated)
                .with_metric("min_control_idle_frac", min_control_idle)
                .with_table(table)
        })
    }
}

/// E-X2: repeats a slice of the Figure 11 sweep under mesh/torus hop-count networks
/// (mean latency matched to the flat value) and message-driven remote servicing.
pub struct AblationNetwork;

impl Scenario for AblationNetwork {
    fn name(&self) -> &str {
        "ablation_network"
    }

    fn description(&self) -> &str {
        "parcel latency hiding under flat vs mesh vs torus networks and message-driven servicing"
    }

    fn params(&self) -> Value {
        Value::Map(vec![
            ("nodes".into(), Value::U64(16)),
            (
                "parallelism".into(),
                Value::Seq(vec![Value::U64(2), Value::U64(8), Value::U64(32)]),
            ),
            (
                "latencies".into(),
                Value::Seq(vec![Value::F64(100.0), Value::F64(1000.0)]),
            ),
            ("remote_fraction".into(), Value::F64(0.4)),
        ])
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let (name, description, params) = (self.name(), self.description(), self.params());
        // One unit per (parallelism, latency) cell; each produces the cell's four
        // rows (flat, mesh, torus, flat+msg-driven) in the table's row order.
        let keyer = UnitKeyer::for_scenario(self, seeds);
        let mut units = Vec::with_capacity(6);
        for &parallelism in &[2usize, 8, 32] {
            for &latency in &[100.0, 1000.0] {
                let key = keyer.key(units.len(), 0);
                units.push((key, move || network_cell_rows(parallelism, latency, seed)));
            }
        }
        ScenarioPlan::cached_map_reduce(units, move |cells: Vec<Vec<Vec<Value>>>| {
            let table = Table {
                name: name.to_string(),
                columns: vec![
                    "network".into(),
                    "parallelism".into(),
                    "remote_pct".into(),
                    "mean_latency_cycles".into(),
                    "ops_ratio".into(),
                    "test_idle_frac".into(),
                ],
                rows: cells.into_iter().flatten().collect(),
            };
            ScenarioReport::new(name, description, seed, params).with_table(table)
        })
    }
}

/// The four `ablation_network` rows of one (parallelism, latency) cell: flat, mesh
/// and torus networks with matched mean latency, plus message-driven servicing.
fn network_cell_rows(parallelism: usize, latency: f64, seed: u64) -> Vec<Vec<Value>> {
    let nodes = 16;
    let config = ParcelConfig {
        nodes,
        parallelism,
        latency_cycles: latency,
        remote_fraction: 0.4,
        horizon_cycles: 500_000.0,
        ..Default::default()
    };
    let mut rows = Vec::with_capacity(4);
    let mut run_with =
        |kind: &str, network: Box<dyn NetworkModel + Send>, service: RemoteService| {
            let test = run_test_with_options(config, network, service, seed);
            let control = run_control(config, seed.wrapping_add(1));
            rows.push(vec![
                Value::Str(kind.to_string()),
                Value::U64(config.parallelism as u64),
                Value::F64(config.remote_fraction * 100.0),
                Value::F64(config.latency_cycles),
                Value::F64(test.total_work_ops as f64 / control.total_work_ops as f64),
                Value::F64(test.idle_fraction()),
            ]);
        };
    // Choose per-hop costs so mesh/torus mean latency equals the flat value.
    let mesh_hops = MeshNetwork::for_nodes(nodes, 0.0, 1.0).mean_latency_cycles(nodes);
    let torus_hops = TorusNetwork::for_nodes(nodes, 0.0, 1.0).mean_latency_cycles(nodes);
    run_with(
        "flat",
        Box::new(FlatLatency::new(latency)),
        RemoteService::MemorySide,
    );
    run_with(
        "mesh",
        Box::new(MeshNetwork::for_nodes(nodes, 0.0, latency / mesh_hops)),
        RemoteService::MemorySide,
    );
    run_with(
        "torus",
        Box::new(TorusNetwork::for_nodes(nodes, 0.0, latency / torus_hops)),
        RemoteService::MemorySide,
    );
    run_with(
        "flat+msg-driven",
        Box::new(FlatLatency::new(latency)),
        RemoteService::OnCpu,
    );
    rows
}

/// E-X5: sweeps the per-parcel handling overhead, showing where the split-transaction
/// advantage erodes and reverses ("efficient parcel handling mechanisms are required").
pub struct AblationOverhead;

impl Scenario for AblationOverhead {
    fn name(&self) -> &str {
        "ablation_overhead"
    }

    fn description(&self) -> &str {
        "work ratio vs per-parcel handling overhead (efficient parcel handling is required)"
    }

    fn params(&self) -> Value {
        Value::Map(vec![
            (
                "parallelism".into(),
                Value::Seq(vec![Value::U64(1), Value::U64(4), Value::U64(16)]),
            ),
            (
                "latencies".into(),
                Value::Seq(vec![
                    Value::F64(50.0),
                    Value::F64(500.0),
                    Value::F64(5000.0),
                ]),
            ),
            (
                "overheads".into(),
                Value::Seq(vec![
                    Value::F64(0.0),
                    Value::F64(2.0),
                    Value::F64(8.0),
                    Value::F64(32.0),
                    Value::F64(128.0),
                ]),
            ),
        ])
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let (name, description, params) = (self.name(), self.description(), self.params());
        // One unit per (parallelism, latency, overhead) point.
        let keyer = UnitKeyer::for_scenario(self, seeds);
        let mut units = Vec::with_capacity(3 * 3 * 5);
        for &parallelism in &[1usize, 4, 16] {
            for &latency in &[50.0, 500.0, 5_000.0] {
                for &overhead in &[0.0, 2.0, 8.0, 32.0, 128.0] {
                    let key = keyer.key(units.len(), 0);
                    units.push((key, move || {
                        let config = ParcelConfig {
                            nodes: 4,
                            parallelism,
                            latency_cycles: latency,
                            remote_fraction: 0.4,
                            parcel_overhead_cycles: overhead,
                            horizon_cycles: 600_000.0,
                            ..Default::default()
                        };
                        let point = evaluate_point(config, seed);
                        vec![
                            Value::U64(parallelism as u64),
                            Value::F64(latency),
                            Value::F64(overhead),
                            Value::F64(point.ops_ratio),
                        ]
                    }));
                }
            }
        }
        ScenarioPlan::cached_map_reduce(units, move |rows: Vec<Vec<Value>>| {
            let table = Table {
                name: name.to_string(),
                columns: vec![
                    "parallelism".into(),
                    "latency_cycles".into(),
                    "overhead_cycles".into(),
                    "ops_ratio".into(),
                ],
                rows,
            };
            ScenarioReport::new(name, description, seed, params).with_table(table)
        })
    }
}

//! The built-in scenarios: every figure, table, validation study and ablation of the
//! paper, one registered [`crate::scenario::Scenario`] per legacy `pim-bench` binary.
//!
//! Grouped by the model family they exercise:
//!
//! * [`partition`] — study 1 (HWP/LWP partitioning): Figures 5 and 6, Table 1, the
//!   analytic-versus-simulation validation, replication CIs and the imbalance ablation;
//! * [`analytic`] — closed forms only: Figure 7 and the `NB` sensitivity ablation;
//! * [`parcels`] — study 2 (parcel latency hiding): Figures 11 and 12, the network
//!   and parcel-overhead ablations;
//! * [`memory`] — the Section 2.1 DRAM bandwidth claims.

pub mod analytic;
pub mod memory;
pub mod parcels;
pub mod partition;

//! Memory-technology scenario: the Section 2.1 DRAM bandwidth claims that motivate
//! PIM, plus trace-calibrated host cache miss rates.

use crate::cache::UnitKeyer;
use crate::report::{ScenarioReport, Table};
use crate::scenario::{Scenario, ScenarioPlan, SeedPolicy};
use desim::random::RandomStream;
use pim_mem::{CacheModel, DramTiming, PimChip, SetAssociativeCache};
use pim_workload::ReuseProfile;
use serde::Value;

/// E-X3: "a single on-chip DRAM macro could sustain a bandwidth of over 50 Gbit/s …
/// an on-chip peak memory bandwidth of greater than 1 Tbit/s is possible per chip."
pub struct BandwidthClaims;

/// Node counts for the per-chip aggregate bandwidth rows.
const CHIP_NODES: [usize; 5] = [8, 16, 32, 64, 128];

impl Scenario for BandwidthClaims {
    fn name(&self) -> &str {
        "bandwidth_claims"
    }

    fn description(&self) -> &str {
        "Section 2.1 DRAM bandwidth claims and trace-calibrated cache miss rates"
    }

    fn params(&self) -> Value {
        Value::Map(vec![
            (
                "chip_nodes".into(),
                Value::Seq(CHIP_NODES.iter().map(|&n| Value::U64(n as u64)).collect()),
            ),
            ("trace_addresses".into(), Value::U64(200_000)),
            ("cache_bytes".into(), Value::U64(64 * 1024)),
        ])
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let keyer = UnitKeyer::for_scenario(self, seeds);
        ScenarioPlan::cached_single(keyer.key(0, 0), move || self.compute(seed))
    }
}

impl BandwidthClaims {
    /// The bandwidth table and trace-calibrated miss rates (a single plan unit —
    /// the trace run takes ~30 ms).
    fn compute(&self, seed: u64) -> ScenarioReport {
        let timing = DramTiming::default();
        let mut table = Table {
            name: self.name().to_string(),
            columns: vec!["quantity".into(), "value".into(), "unit".into()],
            rows: Vec::new(),
        };
        let mut push = |quantity: &str, value: f64, unit: &str| {
            table.rows.push(vec![
                Value::Str(quantity.to_string()),
                Value::F64(value),
                Value::Str(unit.to_string()),
            ]);
        };
        push(
            "macro_peak_bandwidth",
            timing.peak_bandwidth_gbit_per_s(),
            "Gbit/s",
        );
        push(
            "macro_worst_case_bandwidth",
            timing.worst_case_bandwidth_gbit_per_s(),
            "Gbit/s",
        );
        for nodes in CHIP_NODES {
            let chip = PimChip::with_nodes(nodes);
            push(
                &format!("chip_peak_bandwidth_n{nodes}"),
                chip.peak_bandwidth_tbit_per_s(),
                "Tbit/s",
            );
        }

        // Calibrate the Table 1 cache miss rate from synthetic address streams: a
        // high-reuse stream against a 64 KiB host cache lands near the paper's
        // Pmiss = 0.1, while a no-reuse stream misses nearly always.
        for (i, (label, reuse)) in [("high_locality", 0.93), ("no_locality", 0.0)]
            .into_iter()
            .enumerate()
        {
            let mut profile =
                ReuseProfile::new(reuse, 128, 64, RandomStream::new(seed, i as u64 + 1));
            let mut cache = SetAssociativeCache::new(64 * 1024, 64, 4);
            for addr in profile.addresses(200_000) {
                cache.access(addr);
            }
            push(
                &format!("measured_pmiss_{label}"),
                cache.miss_rate(),
                "fraction",
            );
        }
        ScenarioReport::new(self.name(), self.description(), seed, self.params()).with_table(table)
    }
}

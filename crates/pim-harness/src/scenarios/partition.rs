//! Study-1 scenarios: the HWP/LWP partitioning figures, Table 1, validation,
//! replication confidence intervals and the load-imbalance ablation.
//!
//! The simulation-heavy scenarios decompose into one work unit per grid point (or per
//! replication), reproducing exactly the seed streams the in-crate sweeps
//! (`pim_core::run_sweep`, `desim::replication::replicate`) would use — the golden
//! files pin this equivalence.

use crate::cache::UnitKeyer;
use crate::report::{ScenarioReport, Table};
use crate::scenario::{Scenario, ScenarioPlan, SeedPolicy};
use desim::replication::{replication_seed, ReplicationSummary};
use desim::stats::ConfidenceLevel;
use pim_analytic::validation_from_sweep;
use pim_core::prelude::*;
use serde::{Serialize, Value};

/// Operations actually simulated per design point (rescaled to the Table 1 total).
const SIM_OPS: u64 = 400_000;
/// Operations batched per simulation event.
const OPS_PER_EVENT: u64 = 64;

fn simulated_mode(seed: u64) -> EvalMode {
    EvalMode::Simulated {
        sim_ops: Some(SIM_OPS),
        ops_per_event: OPS_PER_EVENT,
        seed,
    }
}

/// Build a per-point plan for a simulated `(N, %WL)` sweep: one unit per grid point
/// (seeded exactly as `run_sweep` would via [`point_eval_mode`]), with `finish`
/// turning the reassembled [`SweepResult`] into the scenario's report. Units are
/// keyed by grid index under `keyer`, so batches with a `--cache` serve unchanged
/// points from the unit-result cache.
fn sweep_plan<'s, F>(keyer: UnitKeyer, seed: u64, spec: SweepSpec, finish: F) -> ScenarioPlan<'s>
where
    F: FnOnce(SweepResult) -> ScenarioReport + Send + 's,
{
    let mode = simulated_mode(seed);
    let units: Vec<_> = spec
        .points()
        .into_iter()
        .enumerate()
        .map(|(i, (n, wl))| {
            (keyer.key(i, 0), move || {
                PartitionStudy::new(SystemConfig::table1()).evaluate(
                    n,
                    wl,
                    point_eval_mode(mode, i),
                )
            })
        })
        .collect();
    ScenarioPlan::cached_map_reduce(units, move |points: Vec<TradeoffPoint>| {
        finish(SweepResult { spec, points })
    })
}

fn sweep_params(spec: &SweepSpec) -> Value {
    Value::Map(vec![
        ("spec".into(), spec.to_value()),
        ("sim_ops".into(), Value::U64(SIM_OPS)),
        ("ops_per_event".into(), Value::U64(OPS_PER_EVENT)),
    ])
}

/// Point lookup that keeps full `f64` precision (the legacy CSV renderers round to a
/// few decimals, which would quantize the artifact and blunt the golden tolerance).
fn point_value(sweep: &SweepResult, n: usize, wl: f64, f: impl Fn(&TradeoffPoint) -> f64) -> f64 {
    sweep.point(n, wl).map(f).unwrap_or(f64::NAN)
}

/// Figure 5's wide layout — one `%WL` row, one `gain_nN` column per node count — built
/// directly from the sweep points.
fn figure5_table(name: &str, sweep: &SweepResult) -> Table {
    let spec = &sweep.spec;
    let mut columns = vec!["pct_lwp_work".to_string()];
    columns.extend(spec.node_counts.iter().map(|n| format!("gain_n{n}")));
    let rows = spec
        .lwp_fractions
        .iter()
        .map(|&wl| {
            let mut row = vec![Value::F64(wl * 100.0)];
            for &n in &spec.node_counts {
                row.push(Value::F64(point_value(sweep, n, wl, |p| p.gain)));
            }
            row
        })
        .collect();
    Table {
        name: name.to_string(),
        columns,
        rows,
    }
}

/// Figure 6's wide layout — one `nodes` row, one `rt_ns_wlP` column per `%WL` — built
/// directly from the sweep points.
fn figure6_table(name: &str, sweep: &SweepResult) -> Table {
    let spec = &sweep.spec;
    let mut columns = vec!["nodes".to_string()];
    columns.extend(
        spec.lwp_fractions
            .iter()
            .map(|wl| format!("rt_ns_wl{:.0}", wl * 100.0)),
    );
    let rows = spec
        .node_counts
        .iter()
        .map(|&n| {
            let mut row = vec![Value::U64(n as u64)];
            for &wl in &spec.lwp_fractions {
                row.push(Value::F64(point_value(sweep, n, wl, |p| p.test_ns)));
            }
            row
        })
        .collect();
    Table {
        name: name.to_string(),
        columns,
        rows,
    }
}

/// Figure 5: performance gain of the PIM-augmented test system over the host-only
/// control system versus the lightweight-work fraction, for 1–256 nodes.
pub struct Figure5;

impl Scenario for Figure5 {
    fn name(&self) -> &str {
        "figure5"
    }

    fn description(&self) -> &str {
        "performance gain vs %LWP work, one column per PIM node count (simulation)"
    }

    fn params(&self) -> Value {
        sweep_params(&SweepSpec::extended())
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let keyer = UnitKeyer::for_scenario(self, seeds);
        let (name, description, params) = (self.name(), self.description(), self.params());
        sweep_plan(keyer, seed, SweepSpec::extended(), move |sweep| {
            ScenarioReport::new(name, description, seed, params)
                .with_metric("max_gain", sweep.max_gain())
                .with_table(figure5_table(name, &sweep))
        })
    }
}

/// Figure 6: unnormalized single-thread/node response time versus the number of smart
/// memory nodes, one curve per lightweight-work percentage.
pub struct Figure6;

impl Scenario for Figure6 {
    fn name(&self) -> &str {
        "figure6"
    }

    fn description(&self) -> &str {
        "response time (ns) vs number of smart memory nodes, one column per %LWT (simulation)"
    }

    fn params(&self) -> Value {
        sweep_params(&SweepSpec::figure5_6())
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let keyer = UnitKeyer::for_scenario(self, seeds);
        let (name, description, params) = (self.name(), self.description(), self.params());
        sweep_plan(keyer, seed, SweepSpec::figure5_6(), move |sweep| {
            let worst = sweep.point(1, 1.0).map(|p| p.test_ns).unwrap_or(f64::NAN);
            ScenarioReport::new(name, description, seed, params)
                .with_metric("response_ns_n1_wl100", worst)
                .with_table(figure6_table(name, &sweep))
        })
    }
}

/// Table 1: the parametric assumptions, plus the derived per-operation expectations
/// and the break-even parameter `NB` as metrics.
pub struct Table1;

impl Scenario for Table1 {
    fn name(&self) -> &str {
        "table1"
    }

    fn description(&self) -> &str {
        "Table 1 parametric assumptions (plus derived constants)"
    }

    fn params(&self) -> Value {
        SystemConfig::table1().to_value()
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let keyer = UnitKeyer::for_scenario(self, seeds);
        ScenarioPlan::cached_single(keyer.key(0, 0), move || {
            let config = SystemConfig::table1();
            let rows = config
                .table1_rows()
                .into_iter()
                .map(|(p, d, v)| vec![Value::Str(p), Value::Str(d), Value::Str(v)])
                .collect();
            let table = Table {
                name: self.name().to_string(),
                columns: vec!["parameter".into(), "description".into(), "value".into()],
                rows,
            };
            ScenarioReport::new(self.name(), self.description(), seed, self.params())
                .with_metric("t_op_hwp_ns", config.hwp_op_time_ns())
                .with_metric("t_op_lwp_ns", config.lwp_op_time_ns())
                .with_metric("nb", config.nb())
                .with_table(table)
        })
    }
}

/// Section 3.1.2 validation: the analytical model against the queuing simulation over
/// the Figure 5/6 grid (the paper saw 5%–18% between its two models).
pub struct Validation;

impl Scenario for Validation {
    fn name(&self) -> &str {
        "validation"
    }

    fn description(&self) -> &str {
        "analytical vs simulated test-system time per (N, %WL) point"
    }

    fn params(&self) -> Value {
        sweep_params(&SweepSpec::figure5_6())
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let keyer = UnitKeyer::for_scenario(self, seeds);
        let (name, description, params) = (self.name(), self.description(), self.params());
        sweep_plan(keyer, seed, SweepSpec::figure5_6(), move |sweep| {
            let report = validation_from_sweep(SystemConfig::table1(), &sweep);
            let rows = report
                .rows
                .iter()
                .map(|r| {
                    vec![
                        Value::U64(r.nodes as u64),
                        Value::F64(r.lwp_fraction * 100.0),
                        Value::F64(r.simulated_ns),
                        Value::F64(r.analytic_ns),
                        Value::F64(r.relative_error * 100.0),
                    ]
                })
                .collect();
            let table = Table {
                name: name.to_string(),
                columns: vec![
                    "nodes".into(),
                    "pct_lwp".into(),
                    "simulated_ns".into(),
                    "analytic_ns".into(),
                    "rel_error_pct".into(),
                ],
                rows,
            };
            ScenarioReport::new(name, description, seed, params)
                .with_metric("mean_relative_error", report.mean_relative_error)
                .with_metric("max_relative_error", report.max_relative_error)
                .with_table(table)
        })
    }
}

/// E-X6: confidence intervals on the headline simulated gains via independent
/// replications (output-analysis methodology the paper's figures omit).
pub struct ReplicationCi;

/// The `(nodes, %WL)` corners whose gains get replicated confidence intervals.
const CI_CORNERS: [(usize, f64); 5] = [(4, 0.5), (8, 0.8), (32, 0.9), (32, 1.0), (64, 1.0)];

impl Scenario for ReplicationCi {
    fn name(&self) -> &str {
        "replication_ci"
    }

    fn description(&self) -> &str {
        "replicated simulated gains with 95% confidence intervals vs the closed form"
    }

    fn params(&self) -> Value {
        Value::Map(vec![
            ("replications".into(), Value::U64(24)),
            ("sim_ops".into(), Value::U64(200_000)),
            (
                "corners".into(),
                Value::Seq(
                    CI_CORNERS
                        .iter()
                        .map(|&(n, wl)| Value::Seq(vec![Value::U64(n as u64), Value::F64(wl)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        const REPLICATIONS: u64 = 24;
        const SIM_OPS_CI: u64 = 200_000;
        let seed = seeds.scenario_seed(self.name());
        let (name, description, params) = (self.name(), self.description(), self.params());
        let config = SystemConfig {
            total_ops: 1_000_000,
            ..SystemConfig::table1()
        };
        // One unit per (corner, replication), seeded exactly as `replicated_gain`
        // (i.e. `desim::replication::replicate`) seeds its sequential replications.
        let keyer = UnitKeyer::for_scenario(self, seeds);
        let mut units = Vec::with_capacity(CI_CORNERS.len() * REPLICATIONS as usize);
        for (c, &(nodes, wl)) in CI_CORNERS.iter().enumerate() {
            for r in 0..REPLICATIONS {
                units.push((keyer.key(c, r as usize), move || {
                    PartitionStudy::new(config)
                        .evaluate(
                            nodes,
                            wl,
                            EvalMode::Simulated {
                                sim_ops: Some(SIM_OPS_CI),
                                ops_per_event: 64,
                                seed: replication_seed(seed, r),
                            },
                        )
                        .gain
                }));
            }
        }
        ScenarioPlan::cached_map_reduce(units, move |gains: Vec<f64>| {
            let mut table = Table {
                name: name.to_string(),
                columns: vec![
                    "nodes".into(),
                    "pct_lwp".into(),
                    "replications".into(),
                    "mean_gain".into(),
                    "ci95_half_width".into(),
                    "analytic_gain".into(),
                ],
                rows: Vec::new(),
            };
            for (c, &(nodes, wl)) in CI_CORNERS.iter().enumerate() {
                let chunk = &gains[c * REPLICATIONS as usize..(c + 1) * REPLICATIONS as usize];
                let summary = ReplicationSummary::from_samples(chunk, ConfidenceLevel::P95);
                let analytic = 1.0 / (1.0 - wl * (1.0 - config.nb() / nodes as f64));
                table.rows.push(vec![
                    Value::U64(nodes as u64),
                    Value::F64(wl * 100.0),
                    Value::U64(summary.replications),
                    Value::F64(summary.mean),
                    Value::F64(summary.half_width),
                    Value::F64(analytic),
                ]);
            }
            ScenarioReport::new(name, description, seed, params).with_table(table)
        })
    }
}

/// E-X4: sensitivity of the study-1 gains to load imbalance across the LWP threads
/// (the paper assumes perfectly uniform thread lengths).
pub struct AblationImbalance;

/// Skew factors applied to the per-node thread lengths.
const SKEWS: [f64; 9] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 0.95];
/// The `(nodes, %WL)` corners the skew sweep is repeated at.
const IMBALANCE_CORNERS: [(usize, f64); 3] = [(8, 0.8), (32, 0.9), (64, 1.0)];

impl Scenario for AblationImbalance {
    fn name(&self) -> &str {
        "ablation_imbalance"
    }

    fn description(&self) -> &str {
        "gain vs per-thread load skew (the paper assumes perfectly uniform threads)"
    }

    fn params(&self) -> Value {
        Value::Map(vec![
            (
                "skews".into(),
                Value::Seq(SKEWS.iter().map(|&s| Value::F64(s)).collect()),
            ),
            (
                "corners".into(),
                Value::Seq(
                    IMBALANCE_CORNERS
                        .iter()
                        .map(|&(n, wl)| Value::Seq(vec![Value::U64(n as u64), Value::F64(wl)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn plan<'s>(&'s self, seeds: &SeedPolicy) -> ScenarioPlan<'s> {
        let seed = seeds.scenario_seed(self.name());
        let (name, description, params) = (self.name(), self.description(), self.params());
        let config = SystemConfig {
            total_ops: 2_000_000,
            ..SystemConfig::table1()
        };
        // One unit per (corner, skew). Each row of `imbalance_sensitivity` is an
        // independent run at the same seed, so a single-skew slice reproduces the
        // full-sweep row exactly.
        let keyer = UnitKeyer::for_scenario(self, seeds);
        let mut units = Vec::with_capacity(IMBALANCE_CORNERS.len() * SKEWS.len());
        for (c, &(nodes, wl)) in IMBALANCE_CORNERS.iter().enumerate() {
            for (s, &skew) in SKEWS.iter().enumerate() {
                units.push((keyer.key(c * SKEWS.len() + s, 0), move || {
                    let row = imbalance_sensitivity(config, nodes, wl, &[skew], seed)
                        .pop()
                        // audit:allow(unwrap-in-library): imbalance_sensitivity returns one row per skew and one skew was passed
                        .expect("one skew yields one row");
                    (nodes, wl, row)
                }));
            }
        }
        ScenarioPlan::cached_map_reduce(units, move |rows: Vec<(usize, f64, ImbalanceRow)>| {
            let mut table = Table {
                name: name.to_string(),
                columns: vec![
                    "nodes".into(),
                    "pct_lwp".into(),
                    "skew".into(),
                    "gain".into(),
                    "lwp_idle_fraction".into(),
                ],
                rows: Vec::new(),
            };
            for (nodes, wl, row) in rows {
                table.rows.push(vec![
                    Value::U64(nodes as u64),
                    Value::F64(wl * 100.0),
                    Value::F64(row.skew),
                    Value::F64(row.gain),
                    Value::F64(row.idle_fraction),
                ]);
            }
            ScenarioReport::new(name, description, seed, params).with_table(table)
        })
    }
}

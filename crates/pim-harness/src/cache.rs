//! The persistent, content-addressed unit-result cache behind incremental sweeps.
//!
//! Design-tradeoff studies are re-run endlessly with small deltas: one axis widened,
//! one fraction nudged, one new scenario added to the batch. The determinism contract
//! (a unit's output is a pure function of scenario name, resolved seed and grid
//! index — never of thread count or claim order) makes every unit result safely
//! cacheable, so a warm `run --all` collapses to assembly plus I/O.
//!
//! ## Key derivation
//!
//! Each cacheable plan unit carries a [`UnitKey`] naming everything its output
//! depends on: the cache schema version, the scenario name, a **config fingerprint**
//! (the stable hash of the scenario's canonical config JSON — the spec rendering for
//! spec-defined scenarios, the `params()` serialization for builtins), the scenario's
//! resolved seed, and the unit's grid/replication indices. The entry file name is the
//! stable 128-bit digest of all those fields, so any single-field edit — an axis
//! value, a fraction, a model family, a seed — addresses different entries and a
//! stale result can never be served. Constants compiled into the models themselves
//! are *not* part of the key; a semantic model change must bump
//! [`CACHE_SCHEMA_VERSION`], which invalidates every prior entry at once.
//!
//! ## On-disk format and concurrency
//!
//! Entries live under `<root>/units/<digest>.json`, each a self-describing JSON
//! document `{cache_schema, key, checksum, payload}` where `checksum` is the stable
//! hash of the payload's canonical JSON. Reads verify the schema, the full key echo
//! (collisions included) and the checksum; any mismatch — truncation, bit flips,
//! format drift — evicts the entry and recomputes instead of poisoning artifacts.
//! Writes go to a unique temp file followed by an atomic rename, so concurrent
//! workers (`--jobs N`) and even concurrent processes sharing one cache directory
//! never observe torn entries; last-writer-wins is harmless because entry content is
//! deterministic.

use crate::scenario::SeedPolicy;
use desim::stablehash::{stable_hash_hex, StableHasher};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the cache entry format *and* of the semantic contract between unit
/// keys and model code. Bump on any change that alters unit outputs without being
/// visible in scenario configs (model constants, stream derivations, entry shape);
/// the version participates in every [`UnitKey`] digest, so old entries become
/// unreachable rather than wrong. Independent of
/// [`crate::report::MANIFEST_SCHEMA_VERSION`] (the manifest is about batch
/// reporting, not entry semantics): manifest v3 added the shard block without
/// touching unit outputs, so entries written at manifest v2 stay valid.
pub const CACHE_SCHEMA_VERSION: u32 = 2;

/// Name of the cache-format marker file at the cache root.
const FORMAT_FILE: &str = "cache-format.json";
/// Subdirectory holding the per-unit entry files.
const UNITS_DIR: &str = "units";

/// Wrap an I/O error with the operation and the offending path — every filesystem
/// touch in the cache and the artifact writer reports through this, so a failure
/// deep in a parallel batch still names exactly what could not be done where.
pub fn io_err(op: &str, path: &Path, e: &std::io::Error) -> String {
    format!("cannot {op} {}: {e}", path.display())
}

/// Probe that `dir` exists (creating it if needed) and is writable, by writing and
/// removing a marker file. Called before a batch touches any unit so an unwritable
/// `--out`/`--cache` directory fails fast instead of erroring mid-run.
pub fn ensure_writable_dir(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("create directory", dir, &e))?;
    let probe = dir.join(format!(".pim-probe-{}", std::process::id()));
    std::fs::write(&probe, b"probe").map_err(|e| io_err("write to directory", dir, &e))?;
    std::fs::remove_file(&probe).map_err(|e| io_err("remove probe file", &probe, &e))?;
    Ok(())
}

/// The complete identity of one cacheable unit of work.
///
/// Two units with equal keys are guaranteed (by the determinism contract) to produce
/// byte-identical payloads; two units differing in any field produce different
/// digests and therefore different cache entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitKey {
    /// [`CACHE_SCHEMA_VERSION`] at write time.
    pub cache_schema: u32,
    /// Scenario name (registry identity).
    pub scenario: String,
    /// Stable hex digest of the scenario's canonical config JSON (spec rendering or
    /// builtin `params()` serialization).
    pub fingerprint: String,
    /// The scenario's resolved seed (derived from the batch base seed and the name,
    /// or a spec's fixed seed) — the root of every stream the unit draws from.
    pub seed: u64,
    /// Flattened grid-point index within the scenario's plan.
    pub grid_index: u64,
    /// Replication index within the grid point (0 for unreplicated scenarios).
    pub replication_index: u64,
}

impl UnitKey {
    /// The raw 128-bit content digest over every field. This is the value the
    /// entry file name renders in hex, and — via [`desim::stablehash::shard_index`]
    /// — the key space `run --shard I/N` partitions, so it must stay a pure,
    /// platform-stable function of the fields.
    pub fn digest_u128(&self) -> u128 {
        let mut h = StableHasher::new();
        h.write_u32(self.cache_schema);
        h.write_str(&self.scenario);
        h.write_str(&self.fingerprint);
        h.write_u64(self.seed);
        h.write_u64(self.grid_index);
        h.write_u64(self.replication_index);
        h.finish()
    }

    /// The content address: [`UnitKey::digest_u128`] as 32 hex characters. Used as
    /// the entry file name.
    pub fn digest(&self) -> String {
        format!("{:032x}", self.digest_u128())
    }
}

/// Precomputes the per-scenario parts of [`UnitKey`]s so a plan with thousands of
/// units fingerprints its config exactly once.
#[derive(Debug, Clone)]
pub struct UnitKeyer {
    scenario: String,
    fingerprint: String,
    seed: u64,
}

impl UnitKeyer {
    /// A keyer for `scenario` whose units all share `config` (canonicalized and
    /// fingerprinted here) and the scenario's resolved `seed`.
    pub fn new(scenario: &str, config: &Value, seed: u64) -> UnitKeyer {
        UnitKeyer {
            scenario: scenario.to_string(),
            fingerprint: fingerprint_value(config),
            seed,
        }
    }

    /// Convenience constructor for builtins: fingerprint the scenario's `params()`
    /// and resolve the seed from the batch policy.
    pub fn for_scenario(scenario: &dyn crate::scenario::Scenario, seeds: &SeedPolicy) -> UnitKeyer {
        UnitKeyer::new(
            scenario.name(),
            &scenario.params(),
            seeds.scenario_seed(scenario.name()),
        )
    }

    /// The key of one unit.
    pub fn key(&self, grid_index: usize, replication_index: usize) -> UnitKey {
        UnitKey {
            cache_schema: CACHE_SCHEMA_VERSION,
            scenario: self.scenario.clone(),
            fingerprint: self.fingerprint.clone(),
            seed: self.seed,
            grid_index: grid_index as u64,
            replication_index: replication_index as u64,
        }
    }
}

/// Fingerprint a config tree: the stable hash of its canonical (compact) JSON.
pub fn fingerprint_value(config: &Value) -> String {
    // audit:allow(unwrap-in-library): the vendored JSON writer is total — to_string returns Ok unconditionally
    let json = serde_json::to_string(config).expect("value serialization is infallible");
    stable_hash_hex(&json)
}

/// How one unit's execution interacted with the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// No cache configured, or the unit carries no key.
    Uncached,
    /// Served from a verified cache entry; the unit closure never ran.
    Hit,
    /// No entry existed; the unit ran and its result was stored.
    Miss,
    /// An entry existed but failed verification (truncated, bit-flipped, stale
    /// shape); it was evicted, the unit re-ran, and the result was re-stored.
    Recomputed,
}

/// Per-scenario cache accounting, reported in the batch manifest (schema v2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounts {
    /// Units served from verified cache entries.
    pub hits: u64,
    /// Units computed because no entry existed.
    pub misses: u64,
    /// Units recomputed after evicting a corrupt or stale entry.
    pub recomputed: u64,
}

impl CacheCounts {
    /// Fold one unit's event into the counts (uncached units are not counted).
    pub fn record(&mut self, event: CacheEvent) {
        match event {
            CacheEvent::Uncached => {}
            CacheEvent::Hit => self.hits += 1,
            CacheEvent::Miss => self.misses += 1,
            CacheEvent::Recomputed => self.recomputed += 1,
        }
    }
}

/// Result of a cache lookup.
#[derive(Debug)]
pub enum CacheLookup {
    /// Entry verified; here is its payload.
    Hit(Value),
    /// No entry on disk.
    Miss,
    /// Entry failed verification and was evicted.
    Corrupt,
}

/// A handle to an open cache directory.
#[derive(Debug)]
pub struct UnitCache {
    units: PathBuf,
}

/// Distinguishes temp files from concurrent stores in the same process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The exact content of a compatible cache-format marker file.
fn format_marker() -> String {
    format!("{{\"format\": \"pim-unit-cache\", \"cache_schema\": {CACHE_SCHEMA_VERSION}}}\n")
}

impl UnitCache {
    /// Open (creating if absent) the cache at `root`.
    ///
    /// Fails fast — with the offending path in the message — when the directory
    /// cannot be created or written, or when it carries a different cache format
    /// version (run `pim-tradeoffs cache clear` to discard it).
    pub fn open(root: &Path) -> Result<UnitCache, String> {
        let units = root.join(UNITS_DIR);
        ensure_writable_dir(&units)?;
        let format_path = root.join(FORMAT_FILE);
        let marker = format_marker();
        match std::fs::read_to_string(&format_path) {
            Ok(existing) => {
                if existing != marker {
                    return Err(format!(
                        "cache directory {} was written by an incompatible version \
                         (found {}, expected {}); run `pim-tradeoffs cache clear {}` to reset it",
                        root.display(),
                        existing.trim(),
                        marker.trim(),
                        root.display()
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Temp-file + rename, like entry publication: a concurrent opener
                // must see either no marker or the complete one, never a torn write
                // it would misread as an incompatible version.
                let tmp = root.join(format!(
                    ".{FORMAT_FILE}.tmp-{}-{}",
                    std::process::id(),
                    TMP_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::write(&tmp, &marker)
                    .map_err(|e| io_err("write cache format marker", &tmp, &e))?;
                std::fs::rename(&tmp, &format_path).map_err(|e| {
                    let _ = std::fs::remove_file(&tmp);
                    io_err("publish cache format marker", &format_path, &e)
                })?;
            }
            Err(e) => return Err(io_err("read cache format marker", &format_path, &e)),
        }
        Ok(UnitCache { units })
    }

    fn entry_path(&self, key: &UnitKey) -> PathBuf {
        self.units.join(format!("{}.json", key.digest()))
    }

    /// Look up `key`, verifying schema, key echo and checksum. Corrupt entries are
    /// evicted so the caller's recomputation replaces them.
    pub fn load(&self, key: &UnitKey) -> CacheLookup {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            // An unreadable entry is indistinguishable from a corrupt one.
            Err(_) => {
                self.evict(key);
                return CacheLookup::Corrupt;
            }
        };
        match verify_entry(&text, Some(key)) {
            Some(payload) => CacheLookup::Hit(payload),
            None => {
                self.evict(key);
                CacheLookup::Corrupt
            }
        }
    }

    /// Store `payload` under `key` via write-temp-then-rename, so readers (threads
    /// or other processes) never observe a torn entry.
    ///
    /// Payloads containing non-finite floats are **not stored** (the JSON rendering
    /// would turn `NaN`/`±∞` into `null` and a warm run would decode a different
    /// value than the cold run computed — the one way a checksummed entry could
    /// still poison byte-identity). Such units simply stay uncached and recompute
    /// every run.
    pub fn store(&self, key: &UnitKey, payload: &Value) -> Result<(), String> {
        if !json_round_trips(payload) {
            return Ok(());
        }
        let checksum = payload_checksum(payload)?;
        let entry = Value::Map(vec![
            (
                "cache_schema".into(),
                Value::U64(u64::from(CACHE_SCHEMA_VERSION)),
            ),
            ("key".into(), key.to_value()),
            ("checksum".into(), Value::Str(checksum)),
            ("payload".into(), payload.clone()),
        ]);
        let mut json = serde_json::to_string(&entry)
            .map_err(|e| format!("serialize cache entry {}: {e}", key.digest()))?;
        json.push('\n');
        let path = self.entry_path(key);
        let tmp = self.units.join(format!(
            ".{}.tmp-{}-{}",
            key.digest(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &json).map_err(|e| io_err("write cache entry", &tmp, &e))?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            // A concurrent `cache clear`/`cache gc` swept our in-flight temp file
            // away (maintenance cannot tell a live store's temp from a crash
            // orphan). The caller's result was cleared mid-publication, so the
            // unit simply stays uncached this round — recomputed next run, never
            // an error.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(io_err("publish cache entry", &path, &e))
            }
        }
    }

    /// Remove `key`'s entry, ignoring a concurrent removal.
    pub fn evict(&self, key: &UnitKey) {
        let _ = std::fs::remove_file(self.entry_path(key));
    }
}

/// True when `value` survives a JSON round trip losslessly. The vendored writer
/// renders non-finite floats as `null`, so a payload containing one must never be
/// persisted (see [`UnitCache::store`]). The executor's warm in-memory result map
/// applies the same admission rule so memory and disk never disagree about which
/// payloads are servable.
pub(crate) fn json_round_trips(value: &Value) -> bool {
    match value {
        Value::F64(x) => x.is_finite(),
        Value::Seq(items) => items.iter().all(json_round_trips),
        Value::Map(entries) => entries.iter().all(|(_, v)| json_round_trips(v)),
        _ => true,
    }
}

/// Checksum a payload: the stable hash of its canonical compact JSON.
fn payload_checksum(payload: &Value) -> Result<String, String> {
    serde_json::to_string(payload)
        .map(|json| stable_hash_hex(&json))
        .map_err(|e| format!("serialize cache payload: {e}"))
}

/// Parse and verify one entry document. `expect_key` additionally requires the
/// embedded key to match (digest collisions and misfiled entries read as corrupt).
/// Returns the payload on success.
fn verify_entry(text: &str, expect_key: Option<&UnitKey>) -> Option<Value> {
    verify_entry_parts(text, expect_key).map(|(_, payload)| payload)
}

/// [`verify_entry`], also returning the entry's embedded [`UnitKey`] — merge needs
/// the key to check that an entry sits under its own digest before copying it.
fn verify_entry_parts(text: &str, expect_key: Option<&UnitKey>) -> Option<(UnitKey, Value)> {
    let doc = serde_json::value_from_str(text).ok()?;
    let schema = doc.get("cache_schema")?.as_f64()?;
    if schema != f64::from(CACHE_SCHEMA_VERSION) {
        return None;
    }
    let embedded = UnitKey::from_value(doc.get("key")?).ok()?;
    if let Some(key) = expect_key {
        if &embedded != key {
            return None;
        }
    }
    let checksum = match doc.get("checksum")? {
        Value::Str(s) => s.clone(),
        _ => return None,
    };
    let payload = doc.get("payload")?;
    if payload_checksum(payload).ok()? != checksum {
        return None;
    }
    Some((embedded, payload.clone()))
}

// ---------------------------------------------------------------------------
// Maintenance: stats, gc, clear, merge (the `pim-tradeoffs cache` subcommand)
// ---------------------------------------------------------------------------

/// Outcome of a [`cache_merge`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Source directories merged.
    pub sources: u64,
    /// Entries copied into the destination.
    pub copied: u64,
    /// Entries skipped because the destination already held them (entry content is
    /// a pure function of the key, so an existing entry is the same entry).
    pub skipped_existing: u64,
    /// Source entries skipped because they failed verification (corrupt, stale
    /// schema, or filed under a name that is not their own digest).
    pub skipped_invalid: u64,
    /// Entry files in the destination after the merge.
    pub entries_after: u64,
}

/// Require that `root` is a cache directory of the current format: it must exist
/// and carry a byte-exact [`FORMAT_FILE`] marker. Used by [`cache_merge`] to refuse
/// sources written by an incompatible [`CACHE_SCHEMA_VERSION`] — copying their
/// entries would only seed the destination with digests the current code can never
/// address (or, worse, verify against a different semantic contract).
fn require_cache_format(root: &Path) -> Result<(), String> {
    std::fs::metadata(root).map_err(|e| io_err("access cache directory", root, &e))?;
    let format_path = root.join(FORMAT_FILE);
    let existing = match std::fs::read_to_string(&format_path) {
        Ok(existing) => existing,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(format!(
                "{} is not a cache directory (no {FORMAT_FILE} marker)",
                root.display()
            ));
        }
        Err(e) => return Err(io_err("read cache format marker", &format_path, &e)),
    };
    let marker = format_marker();
    if existing != marker {
        return Err(format!(
            "cache directory {} was written by an incompatible version \
             (found {}, expected {}); re-run its shard against the current build \
             instead of merging it",
            root.display(),
            existing.trim(),
            marker.trim(),
        ));
    }
    Ok(())
}

/// Merge the entries of `sources` into the cache at `dest` (opened or created with
/// the current format). This is how sharded sweeps meet: each `run --shard I/N`
/// populates its own cache directory, and one merge assembles them into a cache a
/// subsequent unsharded run serves entirely from.
///
/// Every source must be a cache directory of the current [`CACHE_SCHEMA_VERSION`];
/// a missing, unmarked or incompatible source fails the merge before any entry is
/// copied. Each source entry is verified (schema, checksum, key echo, and that the
/// file sits under its own key's digest) before copying — corrupt entries are
/// skipped and counted, never propagated. Copies publish via the same
/// temp-file-plus-rename discipline as [`UnitCache::store`], so a merge can run
/// concurrently with shard runs and maintenance passes; an entry vanishing between
/// listing and read is treated as already gone, exactly like the gc paths.
pub fn cache_merge(dest: &Path, sources: &[PathBuf]) -> Result<MergeOutcome, String> {
    if sources.is_empty() {
        return Err("cache merge needs at least one source directory".into());
    }
    // Validate every source before touching the destination: a merge that fails on
    // source 3 of 4 must not leave a half-assembled cache the caller mistakes for
    // a complete one.
    for source in sources {
        require_cache_format(source)?;
    }
    let cache = UnitCache::open(dest)?;
    let mut outcome = MergeOutcome {
        sources: sources.len() as u64,
        ..MergeOutcome::default()
    };
    for source in sources {
        for (path, _, _) in list_units(source)?.entries {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                // Removed by a concurrent gc/clear since the listing: already gone.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                // Unreadable for any other reason: treat as corrupt, skip.
                Err(_) => {
                    outcome.skipped_invalid += 1;
                    continue;
                }
            };
            let Some((key, _)) = verify_entry_parts(&text, None) else {
                outcome.skipped_invalid += 1;
                continue;
            };
            // An entry filed under a name that is not its own key's digest would
            // read as corrupt at the destination (the load-time key echo check);
            // skip the misfiling here instead of propagating it.
            if path
                .file_stem()
                .is_some_and(|stem| stem != key.digest().as_str())
            {
                outcome.skipped_invalid += 1;
                continue;
            }
            let target = cache.entry_path(&key);
            if target.exists() {
                outcome.skipped_existing += 1;
                continue;
            }
            let tmp = cache.units.join(format!(
                ".{}.tmp-{}-{}",
                key.digest(),
                std::process::id(),
                TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::write(&tmp, &text).map_err(|e| io_err("write merged entry", &tmp, &e))?;
            match std::fs::rename(&tmp, &target) {
                Ok(()) => outcome.copied += 1,
                // A concurrent clear/gc swept the temp file (or the units dir)
                // mid-publication: the entry stays unmerged this round, like a
                // store racing maintenance.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(io_err("publish merged entry", &target, &e));
                }
            }
        }
    }
    outcome.entries_after = list_units(dest)?.entries.len() as u64;
    Ok(outcome)
}

/// Aggregate statistics of a cache directory.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CacheStats {
    /// Number of entry files.
    pub entries: u64,
    /// Total bytes across entry files.
    pub bytes: u64,
    /// Entries per scenario name (parsed from each entry's embedded key; entries
    /// whose key cannot be parsed are counted under `"<unreadable>"`).
    pub per_scenario: Vec<(String, u64)>,
}

/// Outcome of a [`cache_gc`] pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GcOutcome {
    /// Entries scanned.
    pub scanned: u64,
    /// Corrupt entries, stale-schema entries and orphaned temp files removed.
    pub removed_invalid: u64,
    /// Valid entries removed (oldest first) to respect the size budget.
    pub removed_for_size: u64,
    /// Total entry bytes after the pass.
    pub bytes_after: u64,
}

/// Remove `path`, treating a concurrent removal (the file is already gone) as
/// success. Maintenance passes may race with each other and with other processes
/// sharing the cache directory; an entry vanishing between readdir and unlink
/// means someone else finished the job, not that maintenance failed. Returns
/// whether this call actually removed the file.
fn remove_if_present(op: &str, path: &Path) -> Result<bool, String> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(io_err(op, path, &e)),
    }
}

/// The classified contents of a cache's `units/` directory: real entry files plus
/// any `.tmp-*` leftovers from stores interrupted mid-write (crash, SIGKILL).
/// An entry's mtime is `None` when the filesystem cannot report one.
struct UnitsListing {
    entries: Vec<(PathBuf, u64, Option<std::time::SystemTime>)>,
    tmp_leftovers: Vec<PathBuf>,
}

fn list_units(root: &Path) -> Result<UnitsListing, String> {
    // A nonexistent root is a caller error (most likely a mistyped path), not an
    // empty cache: report it instead of silently claiming zero entries.
    std::fs::metadata(root).map_err(|e| io_err("access cache directory", root, &e))?;
    let units = root.join(UNITS_DIR);
    let mut listing = UnitsListing {
        entries: Vec::new(),
        tmp_leftovers: Vec::new(),
    };
    let dir = match std::fs::read_dir(&units) {
        Ok(dir) => dir,
        // Root exists but was never opened as a cache (or was cleared): empty.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(listing),
        Err(e) => return Err(io_err("read cache directory", &units, &e)),
    };
    for entry in dir {
        let entry = entry.map_err(|e| io_err("read cache directory", &units, &e))?;
        let path = entry.path();
        let name = entry.file_name();
        if name.to_string_lossy().contains(".tmp-") {
            listing.tmp_leftovers.push(path);
        } else if path.extension().is_some_and(|e| e == "json") {
            let meta = match std::fs::metadata(&path) {
                Ok(meta) => meta,
                // Removed by a concurrent gc/clear between readdir and stat:
                // already gone, nothing to list.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(io_err("stat cache entry", &path, &e)),
            };
            listing
                .entries
                .push((path, meta.len(), meta.modified().ok()));
        }
    }
    // Stable order for deterministic reporting.
    listing.entries.sort();
    listing.tmp_leftovers.sort();
    Ok(listing)
}

/// Summarize the cache at `root`.
pub fn cache_stats(root: &Path) -> Result<CacheStats, String> {
    let mut stats = CacheStats::default();
    let mut per: Vec<(String, u64)> = Vec::new();
    for (path, len, _) in list_units(root)?.entries {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => Some(text),
            // Removed by a concurrent gc/clear since the listing: not an entry.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(_) => None,
        };
        stats.entries += 1;
        stats.bytes += len;
        let scenario = text
            .and_then(|text| {
                let doc = serde_json::value_from_str(&text).ok()?;
                UnitKey::from_value(doc.get("key")?).ok()
            })
            .map(|k| k.scenario)
            .unwrap_or_else(|| "<unreadable>".to_string());
        match per.iter_mut().find(|(name, _)| *name == scenario) {
            Some((_, n)) => *n += 1,
            None => per.push((scenario, 1)),
        }
    }
    per.sort();
    stats.per_scenario = per;
    Ok(stats)
}

/// Remove every entry, stray temp file and the format marker under `root`,
/// keeping the directory itself.
pub fn cache_clear(root: &Path) -> Result<u64, String> {
    let listing = list_units(root)?;
    let mut removed = 0;
    for (path, _, _) in listing.entries {
        if remove_if_present("remove cache entry", &path)? {
            removed += 1;
        }
    }
    for path in listing.tmp_leftovers {
        if remove_if_present("remove cache temp file", &path)? {
            removed += 1;
        }
    }
    let marker = root.join(FORMAT_FILE);
    remove_if_present("remove cache marker", &marker)?;
    Ok(removed)
}

/// Garbage-collect `root`: drop corrupt and stale-schema entries plus any temp
/// files orphaned by interrupted stores, then — when `max_bytes` is set — drop the
/// oldest valid entries until the total fits.
pub fn cache_gc(root: &Path, max_bytes: Option<u64>) -> Result<GcOutcome, String> {
    let mut outcome = GcOutcome::default();
    let listing = list_units(root)?;
    for path in listing.tmp_leftovers {
        remove_if_present("remove cache temp file", &path)?;
        outcome.removed_invalid += 1;
    }
    let mut valid: Vec<(PathBuf, u64, Option<std::time::SystemTime>)> = Vec::new();
    for (path, len, mtime) in listing.entries {
        outcome.scanned += 1;
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            // Removed by a concurrent gc/clear since the listing: already
            // collected, nothing left to do.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            // Unreadable for any other reason: treat as corrupt below.
            Err(_) => String::new(),
        };
        if verify_entry(&text, None).is_some() {
            valid.push((path, len, mtime));
        } else {
            remove_if_present("remove cache entry", &path)?;
            outcome.removed_invalid += 1;
        }
    }
    let mut total: u64 = valid.iter().map(|(_, len, _)| *len).sum();
    if let Some(budget) = max_bytes {
        for idx in size_eviction_order(&valid) {
            if total <= budget {
                break;
            }
            let (path, len, _) = &valid[idx];
            remove_if_present("remove cache entry", path)?;
            total -= len;
            outcome.removed_for_size += 1;
        }
    }
    outcome.bytes_after = total;
    Ok(outcome)
}

/// The order in which a size-budget pass evicts valid entries: oldest mtime
/// first, ties broken by path for determinism. Entries whose mtime could not be
/// read cannot be meaningfully age-ordered, so they are never evicted for size —
/// previously they sorted as `UNIX_EPOCH`, i.e. older than everything, and were
/// silently evicted *first* — though their bytes still count against the budget.
fn size_eviction_order(valid: &[(PathBuf, u64, Option<std::time::SystemTime>)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..valid.len()).filter(|&i| valid[i].2.is_some()).collect();
    order.sort_by(|&a, &b| {
        valid[a]
            .2
            .cmp(&valid[b].2)
            .then_with(|| valid[a].0.cmp(&valid[b].0))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pim-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn demo_key(grid: usize) -> UnitKey {
        UnitKeyer::new("demo", &Value::Map(vec![]), 7).key(grid, 0)
    }

    #[test]
    fn store_load_round_trips_and_counts() {
        let root = tmp_root("roundtrip");
        let cache = UnitCache::open(&root).unwrap();
        let key = demo_key(0);
        assert!(matches!(cache.load(&key), CacheLookup::Miss));
        let payload = Value::Seq(vec![Value::F64(1.5), Value::U64(2)]);
        cache.store(&key, &payload).unwrap();
        match cache.load(&key) {
            CacheLookup::Hit(back) => assert_eq!(back, payload),
            _ => panic!("expected hit"),
        }
        let stats = cache_stats(&root).unwrap();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.per_scenario, vec![("demo".to_string(), 1)]);
        assert!(stats.bytes > 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_and_bitflipped_entries_are_evicted() {
        let root = tmp_root("corrupt");
        let cache = UnitCache::open(&root).unwrap();
        let (ka, kb) = (demo_key(0), demo_key(1));
        cache.store(&ka, &Value::F64(1.0)).unwrap();
        cache.store(&kb, &Value::F64(2.0)).unwrap();

        // Truncate one entry, flip a payload byte in the other.
        let pa = cache.entry_path(&ka);
        let text = std::fs::read_to_string(&pa).unwrap();
        std::fs::write(&pa, &text[..text.len() / 2]).unwrap();
        let pb = cache.entry_path(&kb);
        let flipped = std::fs::read_to_string(&pb).unwrap().replace("2.0", "3.0");
        std::fs::write(&pb, flipped).unwrap();

        assert!(matches!(cache.load(&ka), CacheLookup::Corrupt));
        assert!(matches!(cache.load(&kb), CacheLookup::Corrupt));
        // Both corrupt entries were evicted: the next lookups are clean misses.
        assert!(matches!(cache.load(&ka), CacheLookup::Miss));
        assert!(matches!(cache.load(&kb), CacheLookup::Miss));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn misfiled_entry_with_wrong_key_reads_as_corrupt() {
        let root = tmp_root("misfiled");
        let cache = UnitCache::open(&root).unwrap();
        let (ka, kb) = (demo_key(0), demo_key(1));
        cache.store(&ka, &Value::F64(1.0)).unwrap();
        // Copy a's entry into b's slot: intact checksum, wrong key echo.
        std::fs::copy(cache.entry_path(&ka), cache.entry_path(&kb)).unwrap();
        assert!(matches!(cache.load(&kb), CacheLookup::Corrupt));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_drops_invalid_entries_and_respects_budget() {
        let root = tmp_root("gc");
        let cache = UnitCache::open(&root).unwrap();
        for i in 0..4 {
            cache.store(&demo_key(i), &Value::U64(i as u64)).unwrap();
        }
        // Corrupt one entry outright.
        std::fs::write(cache.entry_path(&demo_key(0)), "garbage").unwrap();
        let out = cache_gc(&root, None).unwrap();
        assert_eq!(out.scanned, 4);
        assert_eq!(out.removed_invalid, 1);
        assert_eq!(out.removed_for_size, 0);

        // A zero budget evicts every remaining (valid) entry.
        let out = cache_gc(&root, Some(0)).unwrap();
        assert_eq!(out.removed_for_size, 3);
        assert_eq!(out.bytes_after, 0);
        assert_eq!(cache_stats(&root).unwrap().entries, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_unions_disjoint_sources_and_skips_duplicates() {
        let root = tmp_root("merge");
        let (a, b) = (root.join("a"), root.join("b"));
        let ca = UnitCache::open(&a).unwrap();
        let cb = UnitCache::open(&b).unwrap();
        // Disjoint halves plus one shared entry.
        for i in 0..3 {
            ca.store(&demo_key(i), &Value::U64(i as u64)).unwrap();
        }
        for i in 2..5 {
            cb.store(&demo_key(i), &Value::U64(i as u64)).unwrap();
        }
        let dest = root.join("merged");
        let out = cache_merge(&dest, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(out.sources, 2);
        assert_eq!(out.copied, 5, "0..5 distinct keys");
        assert_eq!(out.skipped_existing, 1, "key 2 arrived from both sources");
        assert_eq!(out.skipped_invalid, 0);
        assert_eq!(out.entries_after, 5);
        // Merged entries are live: every key loads as a hit.
        let merged = UnitCache::open(&dest).unwrap();
        for i in 0..5 {
            match merged.load(&demo_key(i)) {
                CacheLookup::Hit(v) => assert_eq!(v, Value::U64(i as u64)),
                other => panic!("key {i} not merged: {other:?}"),
            }
        }
        // Merging again is a no-op (everything already present).
        let again = cache_merge(&dest, &[a, b]).unwrap();
        assert_eq!(again.copied, 0);
        assert_eq!(again.skipped_existing, 6);
        assert_eq!(again.entries_after, 5);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_skips_corrupt_and_misfiled_source_entries() {
        let root = tmp_root("merge-bad");
        let src = root.join("src");
        let cache = UnitCache::open(&src).unwrap();
        for i in 0..3 {
            cache.store(&demo_key(i), &Value::U64(i as u64)).unwrap();
        }
        // Corrupt one entry and misfile a copy of another under a foreign digest.
        std::fs::write(cache.entry_path(&demo_key(0)), "garbage").unwrap();
        std::fs::copy(
            cache.entry_path(&demo_key(1)),
            cache.entry_path(&demo_key(3)),
        )
        .unwrap();
        let out = cache_merge(&root.join("merged"), &[src]).unwrap();
        assert_eq!(out.copied, 2, "only the intact, correctly-filed entries");
        assert_eq!(out.skipped_invalid, 2);
        assert_eq!(out.entries_after, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_refuses_missing_unmarked_and_incompatible_sources() {
        let root = tmp_root("merge-refuse");
        std::fs::create_dir_all(&root).unwrap();
        let dest = root.join("merged");

        // Missing source.
        let err = cache_merge(&dest, &[root.join("nope")]).unwrap_err();
        assert!(err.contains("cannot access cache directory"), "{err}");
        // No sources at all.
        let err = cache_merge(&dest, &[]).unwrap_err();
        assert!(err.contains("at least one source"), "{err}");
        // A directory without the format marker is not a cache.
        let unmarked = root.join("unmarked");
        std::fs::create_dir_all(&unmarked).unwrap();
        let err = cache_merge(&dest, &[unmarked]).unwrap_err();
        assert!(err.contains("not a cache directory"), "{err}");
        // A marker from another CACHE_SCHEMA_VERSION is incompatible.
        let stale = root.join("stale");
        std::fs::create_dir_all(stale.join("units")).unwrap();
        std::fs::write(
            stale.join(FORMAT_FILE),
            "{\"format\": \"pim-unit-cache\", \"cache_schema\": 1}\n",
        )
        .unwrap();
        let err = cache_merge(&dest, &[stale]).unwrap_err();
        assert!(err.contains("incompatible version"), "{err}");
        assert!(err.contains("cache_schema\": 1"), "{err}");
        // Source validation runs before the destination is touched: a bad source
        // in any position leaves no half-assembled destination behind.
        let good = root.join("good");
        UnitCache::open(&good)
            .unwrap()
            .store(&demo_key(0), &Value::U64(0))
            .unwrap();
        let err = cache_merge(&dest, &[good, root.join("nope")]).unwrap_err();
        assert!(err.contains("cannot access cache directory"), "{err}");
        assert!(!dest.exists(), "failed merge created the destination");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_treats_entries_vanishing_mid_pass_as_already_gone() {
        // An entry listed but removed before the copy (a concurrent gc/clear) is
        // skipped silently — the same already-gone discipline as the gc paths.
        // Simulated deterministically: list a source, remove an entry file, then
        // merge from a pre-listed snapshot is not possible through the public API,
        // so assert the weaker end-to-end form — merging a source that empties
        // between two merges stays an error-free no-op.
        let root = tmp_root("merge-race");
        let src = root.join("src");
        let cache = UnitCache::open(&src).unwrap();
        cache.store(&demo_key(0), &Value::U64(0)).unwrap();
        let dest = root.join("merged");
        assert_eq!(
            cache_merge(&dest, std::slice::from_ref(&src))
                .unwrap()
                .copied,
            1
        );
        std::fs::remove_file(cache.entry_path(&demo_key(0))).unwrap();
        let out = cache_merge(&dest, &[src]).unwrap();
        assert_eq!((out.copied, out.skipped_invalid), (0, 0));
        assert_eq!(out.entries_after, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn non_finite_payloads_are_never_stored() {
        // The JSON rendering would turn NaN/∞ into null, so a warm run would decode
        // a different value than the cold run computed — such payloads must stay
        // uncached rather than silently mutate.
        let root = tmp_root("nonfinite");
        let cache = UnitCache::open(&root).unwrap();
        for (grid, payload) in [
            (0, Value::F64(f64::NAN)),
            (1, Value::Seq(vec![Value::F64(f64::INFINITY)])),
            (
                2,
                Value::Map(vec![("x".into(), Value::F64(f64::NEG_INFINITY))]),
            ),
        ] {
            let key = demo_key(grid);
            cache.store(&key, &payload).unwrap();
            assert!(
                matches!(cache.load(&key), CacheLookup::Miss),
                "non-finite payload was persisted"
            );
        }
        assert_eq!(cache_stats(&root).unwrap().entries, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn orphaned_temp_files_are_swept_by_gc_and_clear() {
        let root = tmp_root("tmpfiles");
        let cache = UnitCache::open(&root).unwrap();
        cache.store(&demo_key(0), &Value::U64(1)).unwrap();
        // Simulate a store killed between write and rename.
        let orphan = root.join("units").join(".deadbeef.tmp-123-0");
        std::fs::write(&orphan, "partial entry").unwrap();

        // Stats sees only real entries; gc removes the orphan.
        assert_eq!(cache_stats(&root).unwrap().entries, 1);
        let out = cache_gc(&root, None).unwrap();
        assert_eq!(out.removed_invalid, 1);
        assert!(!orphan.exists());

        // clear sweeps orphans too.
        std::fs::write(&orphan, "partial entry").unwrap();
        assert_eq!(cache_clear(&root).unwrap(), 2);
        assert!(!orphan.exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[cfg(unix)]
    #[test]
    fn dangling_entry_paths_are_skipped_not_fatal() {
        let root = tmp_root("dangling");
        let cache = UnitCache::open(&root).unwrap();
        cache.store(&demo_key(0), &Value::U64(1)).unwrap();
        // A broken symlink makes fs::metadata fail with NotFound — the same
        // error a concurrent gc/clear produces when it unlinks an entry between
        // our readdir and stat. Maintenance must read it as "already gone"
        // rather than hard-failing the whole pass.
        let dangling = root.join(UNITS_DIR).join("deadbeef0000.json");
        std::os::unix::fs::symlink(root.join("no-such-target"), &dangling).unwrap();
        assert_eq!(cache_stats(&root).unwrap().entries, 1);
        let gc = cache_gc(&root, Some(u64::MAX)).unwrap();
        assert_eq!(gc.scanned, 1);
        assert_eq!(gc.removed_invalid, 0);
        assert_eq!(cache_clear(&root).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn size_eviction_orders_oldest_first_and_skips_mtime_less_entries() {
        use std::time::{Duration, UNIX_EPOCH};
        let e = |name: &str, secs: Option<u64>| {
            (
                PathBuf::from(name),
                10u64,
                secs.map(|s| UNIX_EPOCH + Duration::from_secs(s)),
            )
        };
        let valid = vec![
            e("b.json", Some(5)),
            e("a.json", None),
            e("c.json", Some(2)),
            e("d.json", Some(5)),
        ];
        let names: Vec<&str> = size_eviction_order(&valid)
            .into_iter()
            .map(|i| valid[i].0.to_str().unwrap())
            .collect();
        // Oldest first, path tie-break; the mtime-less entry is never doomed
        // (it used to sort as UNIX_EPOCH and be evicted before everything).
        assert_eq!(names, ["c.json", "b.json", "d.json"]);
    }

    #[test]
    fn concurrent_gc_clear_and_store_never_hard_fail() {
        // Two maintenance passes racing each other and a storing worker exercise
        // every entry-vanished-underneath-us window: readdir→stat, list→read,
        // list→unlink. All of them must resolve as "already gone", never as an
        // io error aborting the pass.
        let root = tmp_root("races");
        let cache = UnitCache::open(&root).unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        // Failures are recorded, not asserted, inside the scope: a panic before
        // `stop` is set would leave the maintenance threads spinning forever and
        // hang the whole suite instead of failing it.
        let mut failures: Vec<String> = Vec::new();
        let (gc_result, clear_result) = std::thread::scope(|s| {
            let gc_passes = s.spawn(|| {
                let mut passes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    cache_gc(&root, Some(0))?;
                    passes += 1;
                }
                Ok::<u64, String>(passes)
            });
            let clear_passes = s.spawn(|| {
                let mut passes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    cache_clear(&root)?;
                    passes += 1;
                }
                Ok::<u64, String>(passes)
            });
            for i in 0..300 {
                let key = demo_key(i);
                // A store whose temp file is swept away mid-publication must
                // report "not cached", never an io error.
                if let Err(e) = cache.store(&key, &Value::U64(i as u64)) {
                    failures.push(format!("store {i}: {e}"));
                    break;
                }
                // A load racing the removals must see Hit or Miss, never an
                // eviction storm (Corrupt) from half-observed files.
                if let CacheLookup::Corrupt = cache.load(&key) {
                    failures.push(format!("entry {i} read as corrupt"));
                    break;
                }
            }
            stop.store(true, Ordering::Relaxed);
            (gc_passes.join().unwrap(), clear_passes.join().unwrap())
        });
        let _ = std::fs::remove_dir_all(&root);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(gc_result.unwrap() > 0);
        assert!(clear_result.unwrap() > 0);
    }

    #[test]
    fn maintenance_on_a_nonexistent_directory_is_an_error() {
        let root = tmp_root("missing");
        for result in [
            cache_stats(&root).map(|_| ()),
            cache_gc(&root, None).map(|_| ()),
            cache_clear(&root).map(|_| ()),
        ] {
            let err = result.unwrap_err();
            assert!(err.contains("cannot access cache directory"), "{err}");
            assert!(err.contains("missing"), "{err}");
        }
    }

    #[test]
    fn clear_then_reopen_works() {
        let root = tmp_root("clear");
        let cache = UnitCache::open(&root).unwrap();
        cache.store(&demo_key(0), &Value::Null).unwrap();
        assert_eq!(cache_clear(&root).unwrap(), 1);
        // Marker is gone too, so reopen re-initializes the format.
        let cache = UnitCache::open(&root).unwrap();
        assert!(matches!(cache.load(&demo_key(0)), CacheLookup::Miss));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn incompatible_format_marker_is_rejected_with_guidance() {
        let root = tmp_root("format");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(
            root.join(FORMAT_FILE),
            "{\"format\": \"pim-unit-cache\", \"cache_schema\": 1}\n",
        )
        .unwrap();
        let err = UnitCache::open(&root).unwrap_err();
        assert!(err.contains("incompatible"), "{err}");
        assert!(err.contains("cache clear"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unwritable_dir_fails_fast_with_path_and_operation() {
        let root = tmp_root("unwritable");
        std::fs::create_dir_all(&root).unwrap();
        // A regular file where a directory must go: create_dir_all fails even for
        // root-privileged test runners (where permission bits would not).
        let file = root.join("blocker");
        std::fs::write(&file, "x").unwrap();
        let err = UnitCache::open(&file.join("cache")).unwrap_err();
        assert!(err.contains("cannot create directory"), "{err}");
        assert!(err.contains("blocker"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn digest_distinguishes_every_field() {
        let base = demo_key(0);
        let mut other = base.clone();
        other.seed += 1;
        assert_ne!(base.digest(), other.digest());
        let mut other = base.clone();
        other.replication_index += 1;
        assert_ne!(base.digest(), other.digest());
        let mut other = base.clone();
        other.scenario.push('x');
        assert_ne!(base.digest(), other.digest());
        let mut other = base.clone();
        other.fingerprint = fingerprint_value(&Value::U64(1));
        assert_ne!(base.digest(), other.digest());
        assert_eq!(base.digest(), demo_key(0).digest());
    }
}

//! The catalog of registered scenarios.

use crate::scenario::Scenario;
use crate::scenarios::{analytic, memory, parcels, partition};

/// An ordered, name-indexed collection of scenarios.
pub struct Registry {
    scenarios: Vec<Box<dyn Scenario>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            scenarios: Vec::new(),
        }
    }

    /// The built-in registry: every figure, table, validation study and ablation of
    /// the paper (one per legacy `pim-bench` report binary), sorted by name.
    pub fn builtin() -> Registry {
        let mut r = Registry::new();
        let builtins: Vec<Box<dyn Scenario>> = vec![
            Box::new(partition::Figure5),
            Box::new(partition::Figure6),
            Box::new(analytic::Figure7),
            Box::new(parcels::Figure11),
            Box::new(parcels::Figure12),
            Box::new(partition::Table1),
            Box::new(partition::Validation),
            Box::new(partition::ReplicationCi),
            Box::new(partition::AblationImbalance),
            Box::new(analytic::AblationNb),
            Box::new(parcels::AblationNetwork),
            Box::new(parcels::AblationOverhead),
            Box::new(memory::BandwidthClaims),
        ];
        for scenario in builtins {
            r.register(scenario)
                // audit:allow(unwrap-in-library): the builtin scenario list carries no duplicate names
                .expect("builtin scenario names are unique");
        }
        r
    }

    /// Add a scenario, keeping the catalog sorted by name.
    ///
    /// Rejects duplicate names — they would make artifact files and seed streams
    /// collide. User-defined spec scenarios ([`crate::spec`]) can collide with a
    /// builtin or with each other, so this surfaces as an `Err` the caller (e.g.
    /// `pim-tradeoffs run --spec`) reports, never as a panic.
    pub fn register(&mut self, scenario: Box<dyn Scenario>) -> Result<(), String> {
        match self
            .scenarios
            .binary_search_by(|s| s.name().cmp(scenario.name()))
        {
            Ok(_) => Err(format!(
                "duplicate scenario name '{}': already registered",
                scenario.name()
            )),
            Err(pos) => {
                self.scenarios.insert(pos, scenario);
                Ok(())
            }
        }
    }

    /// Look up a scenario by name.
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.scenarios
            .binary_search_by(|s| s.name().cmp(name))
            .ok()
            .map(|i| self.scenarios[i].as_ref())
    }

    /// All scenario names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name()).collect()
    }

    /// Iterate over the scenarios in name order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.scenarios.iter().map(|s| s.as_ref())
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registers_every_legacy_binary() {
        let r = Registry::builtin();
        assert_eq!(r.len(), 13);
        for name in [
            "figure5",
            "figure6",
            "figure7",
            "figure11",
            "figure12",
            "table1",
            "validation",
            "replication_ci",
            "ablation_imbalance",
            "ablation_nb",
            "ablation_network",
            "ablation_overhead",
            "bandwidth_claims",
        ] {
            assert!(r.get(name).is_some(), "missing scenario '{name}'");
        }
    }

    #[test]
    fn names_are_sorted_and_unique() {
        let registry = Registry::builtin();
        let names = registry.names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(Registry::builtin().get("figure99").is_none());
    }

    #[test]
    fn duplicate_registration_is_an_error_not_a_panic() {
        let mut r = Registry::builtin();
        let before = r.len();
        let err = r
            .register(Box::new(crate::scenarios::partition::Table1))
            .unwrap_err();
        assert!(err.contains("duplicate scenario name 'table1'"), "{err}");
        // The rejected scenario must not have been inserted.
        assert_eq!(r.len(), before);
        // The registry stays usable after the rejection.
        assert!(r.get("table1").is_some());
        assert!(r
            .register(Box::new(crate::scenarios::partition::Table1))
            .is_err());
    }
}

//! The catalog of registered scenarios.

use crate::scenario::Scenario;
use crate::scenarios::{analytic, memory, parcels, partition};

/// An ordered, name-indexed collection of scenarios.
pub struct Registry {
    scenarios: Vec<Box<dyn Scenario>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            scenarios: Vec::new(),
        }
    }

    /// The built-in registry: every figure, table, validation study and ablation of
    /// the paper (one per legacy `pim-bench` report binary), sorted by name.
    pub fn builtin() -> Registry {
        let mut r = Registry::new();
        r.register(Box::new(partition::Figure5));
        r.register(Box::new(partition::Figure6));
        r.register(Box::new(analytic::Figure7));
        r.register(Box::new(parcels::Figure11));
        r.register(Box::new(parcels::Figure12));
        r.register(Box::new(partition::Table1));
        r.register(Box::new(partition::Validation));
        r.register(Box::new(partition::ReplicationCi));
        r.register(Box::new(partition::AblationImbalance));
        r.register(Box::new(analytic::AblationNb));
        r.register(Box::new(parcels::AblationNetwork));
        r.register(Box::new(parcels::AblationOverhead));
        r.register(Box::new(memory::BandwidthClaims));
        r
    }

    /// Add a scenario, keeping the catalog sorted by name.
    ///
    /// # Panics
    /// Panics if a scenario with the same name is already registered — duplicate
    /// names would make artifact files and seed streams collide.
    pub fn register(&mut self, scenario: Box<dyn Scenario>) {
        match self
            .scenarios
            .binary_search_by(|s| s.name().cmp(scenario.name()))
        {
            Ok(_) => panic!("duplicate scenario name '{}'", scenario.name()),
            Err(pos) => self.scenarios.insert(pos, scenario),
        }
    }

    /// Look up a scenario by name.
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.scenarios
            .binary_search_by(|s| s.name().cmp(name))
            .ok()
            .map(|i| self.scenarios[i].as_ref())
    }

    /// All scenario names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.scenarios.iter().map(|s| s.name()).collect()
    }

    /// Iterate over the scenarios in name order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.scenarios.iter().map(|s| s.as_ref())
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registers_every_legacy_binary() {
        let r = Registry::builtin();
        assert_eq!(r.len(), 13);
        for name in [
            "figure5",
            "figure6",
            "figure7",
            "figure11",
            "figure12",
            "table1",
            "validation",
            "replication_ci",
            "ablation_imbalance",
            "ablation_nb",
            "ablation_network",
            "ablation_overhead",
            "bandwidth_claims",
        ] {
            assert!(r.get(name).is_some(), "missing scenario '{name}'");
        }
    }

    #[test]
    fn names_are_sorted_and_unique() {
        let names = Registry::builtin().names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(Registry::builtin().get("figure99").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_registration_panics() {
        let mut r = Registry::builtin();
        r.register(Box::new(crate::scenarios::partition::Table1));
    }
}

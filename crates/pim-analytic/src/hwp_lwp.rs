//! The paper's analytical model of the HWP/LWP partitioning study (Section 3.1.2).
//!
//! ```text
//! Time_relative = 1 − %WL · { 1 − (1/N) · [ (TLcycle + mix·(TML − TLcycle))
//!                                           / (1 + mix·(TCH − 1 + Pmiss·TMH)) ] }
//!
//!            NB ≡ (TLcycle + mix·(TML − TLcycle)) / (1 + mix·(TCH − 1 + Pmiss·TMH))
//!
//! Time_relative = 1 − %WL · (1 − NB / N)
//! ```
//!
//! The "remarkable property" the paper reports is that the third parameter `NB` is
//! orthogonal to both `N` and `%WL`: all constant-`%WL` curves coincide at `N = NB`,
//! and for `N > NB` the PIM-augmented system is never slower than the host alone.

use pim_core::config::SystemConfig;
use serde::{Deserialize, Serialize};

/// The closed-form analytical model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticModel {
    /// The machine/workload constants the formula consumes.
    pub config: SystemConfig,
}

impl AnalyticModel {
    /// Build the model from a system configuration.
    pub fn new(config: SystemConfig) -> Self {
        // audit:allow(unwrap-in-library): constructor contract — an invalid config is a caller bug and fails loudly
        config.validate().expect("invalid system configuration");
        AnalyticModel { config }
    }

    /// Model with the Table 1 constants.
    pub fn table1() -> Self {
        AnalyticModel::new(SystemConfig::table1())
    }

    /// The break-even parameter `NB`.
    pub fn nb(&self) -> f64 {
        self.config.nb()
    }

    /// `Time_relative` for `n` nodes and lightweight-work fraction `wl` (`%WL ∈ [0,1]`).
    /// `n` is a real number so the continuous curves of Figure 7 can be traced.
    pub fn time_relative(&self, n: f64, wl: f64) -> f64 {
        assert!(n > 0.0, "node count must be positive");
        assert!((0.0..=1.0).contains(&wl), "%WL must lie in [0,1]");
        1.0 - wl * (1.0 - self.nb() / n)
    }

    /// Absolute test-system time in nanoseconds for `n` nodes and fraction `wl`.
    pub fn test_time_ns(&self, n: f64, wl: f64) -> f64 {
        self.time_relative(n, wl) * self.control_time_ns()
    }

    /// Absolute control-system time in nanoseconds (all work on the host).
    pub fn control_time_ns(&self) -> f64 {
        self.config.total_ops as f64 * self.config.hwp_op_time_ns()
    }

    /// Performance gain of the test system over the control system.
    pub fn gain(&self, n: f64, wl: f64) -> f64 {
        1.0 / self.time_relative(n, wl)
    }

    /// The smallest integer node count for which the test system is at least as fast as
    /// the control system for *every* `%WL` (i.e. `ceil(NB)`).
    pub fn break_even_nodes(&self) -> usize {
        self.nb().ceil() as usize
    }

    /// Trace the Figure 7 family: for each `%WL` in `wl_values`, the normalized runtime
    /// at each node count in `node_counts`. Returned row-major: `rows[wl][n]`.
    pub fn figure7_series(&self, node_counts: &[usize], wl_values: &[f64]) -> Vec<Vec<f64>> {
        wl_values
            .iter()
            .map(|&wl| {
                node_counts
                    .iter()
                    .map(|&n| self.time_relative(n as f64, wl))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nb_is_orthogonal_to_n_and_wl() {
        let m = AnalyticModel::table1();
        let nb = m.nb();
        assert!((nb - 3.125).abs() < 1e-12);
        // NB depends only on the configuration, never on the sweep variables.
        for wl in [0.0, 0.5, 1.0] {
            for n in [1.0, 8.0, 256.0] {
                let _ = m.time_relative(n, wl);
                assert!((m.nb() - nb).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn curves_coincide_at_n_equals_nb() {
        // The Figure 7 "point of coincidence": at N = NB every %WL curve passes through 1.
        let m = AnalyticModel::table1();
        let nb = m.nb();
        for wl in [0.0, 0.1, 0.3, 0.7, 1.0] {
            assert!((m.time_relative(nb, wl) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pim_never_loses_beyond_nb() {
        let m = AnalyticModel::table1();
        for n in [4.0, 8.0, 64.0, 1024.0] {
            for wl in [0.0, 0.2, 0.5, 1.0] {
                assert!(m.time_relative(n, wl) <= 1.0 + 1e-12, "n={n} wl={wl}");
            }
        }
        // And strictly loses below NB when any work is offloaded.
        assert!(m.time_relative(2.0, 0.5) > 1.0);
    }

    #[test]
    fn gain_matches_figure5_landmarks() {
        let m = AnalyticModel::table1();
        // 32 nodes, all-LWP work: 32 / 3.125 = 10.24x.
        assert!((m.gain(32.0, 1.0) - 10.24).abs() < 1e-9);
        // 256 nodes, all-LWP work: ~82x — the paper's "approaching 100X" extreme.
        assert!((m.gain(256.0, 1.0) - 81.92).abs() < 1e-9);
        // Moderate offload on a large array roughly doubles performance.
        let g = m.gain(64.0, 0.55);
        assert!(g > 2.0 && g < 2.3, "gain {g}");
    }

    #[test]
    fn break_even_nodes_is_ceiling_of_nb() {
        assert_eq!(AnalyticModel::table1().break_even_nodes(), 4);
        let mut config = SystemConfig::table1();
        config.p_miss = 0.3; // worse host cache: NB drops
        let m = AnalyticModel::new(config);
        assert!(m.nb() < 2.0);
        assert_eq!(m.break_even_nodes(), (m.nb().ceil()) as usize);
    }

    #[test]
    fn absolute_times_are_consistent_with_pim_core() {
        let m = AnalyticModel::table1();
        let study = pim_core::system::PartitionStudy::table1();
        for &(n, wl) in &[(1usize, 0.3), (8, 0.6), (64, 1.0)] {
            let analytic = m.test_time_ns(n as f64, wl);
            let expected = study.expected_test_ns(n, wl);
            assert!(
                (analytic - expected).abs() / expected < 1e-9,
                "n={n} wl={wl}: {analytic} vs {expected}"
            );
        }
        assert!((m.control_time_ns() - study.expected_control_ns()).abs() < 1e-6);
    }

    #[test]
    fn figure7_series_shape() {
        let m = AnalyticModel::table1();
        let nodes = [1usize, 2, 4, 8, 16, 32, 64];
        let wls = [0.0, 0.5, 1.0];
        let series = m.figure7_series(&nodes, &wls);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].len(), 7);
        // %WL = 0 row is flat at 1.
        assert!(series[0].iter().all(|&t| (t - 1.0).abs() < 1e-12));
        // %WL = 1 row decreases monotonically with N.
        assert!(series[2].windows(2).all(|w| w[1] < w[0]));
        // Higher %WL is worse than lower %WL below NB (N = 1, 2) and better above it.
        assert!(series[2][0] > series[1][0]);
        assert!(series[2][6] < series[1][6]);
    }

    #[test]
    #[should_panic(expected = "%WL must lie in [0,1]")]
    fn rejects_invalid_fraction() {
        AnalyticModel::table1().time_relative(8.0, 1.2);
    }
}

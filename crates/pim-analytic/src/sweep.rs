//! Sensitivity of the break-even parameter `NB` to the machine constants.
//!
//! The paper's conclusion hinges on `NB` being small (≈ 3 for the Table 1 parameters):
//! only a handful of PIM nodes are needed before offloading low-locality work can never
//! hurt. This module sweeps the constants that compose `NB` — host cache miss rate,
//! LWP/HWP clock ratio, and the two memory access times — to show how robust that
//! conclusion is (ablation E-X1 in DESIGN.md).

use crate::hwp_lwp::AnalyticModel;
use pim_core::config::SystemConfig;
use serde::{Deserialize, Serialize};

/// Which constant a sensitivity sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SweepParameter {
    /// Host cache miss rate `Pmiss`.
    CacheMissRate,
    /// Lightweight cycle time `TLcycle` (ns), i.e. the LWP/HWP clock ratio.
    LwpCycleTime,
    /// Lightweight memory access time `TML` (HWP cycles).
    LwpMemoryCycles,
    /// Heavyweight memory access time `TMH` (HWP cycles).
    HwpMemoryCycles,
    /// Load/store fraction of the instruction mix.
    MemoryMix,
}

/// One row of a sensitivity sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// The value the swept parameter took.
    pub value: f64,
    /// The resulting break-even parameter `NB`.
    pub nb: f64,
    /// Gain at 32 nodes with 100% lightweight work, for scale.
    pub gain_32_full: f64,
}

/// Sweep one parameter over `values`, holding the rest at the Table 1 constants.
pub fn nb_sensitivity(parameter: SweepParameter, values: &[f64]) -> Vec<SensitivityRow> {
    values
        .iter()
        .map(|&v| {
            let mut config = SystemConfig::table1();
            match parameter {
                SweepParameter::CacheMissRate => config.p_miss = v,
                SweepParameter::LwpCycleTime => config.lwp_cycle_ns = v,
                SweepParameter::LwpMemoryCycles => config.lwp_memory_cycles = v,
                SweepParameter::HwpMemoryCycles => config.hwp_memory_cycles = v,
                SweepParameter::MemoryMix => {
                    config.mix = pim_workload::InstructionMix::with_memory_fraction(v)
                }
            }
            let model = AnalyticModel::new(config);
            SensitivityRow {
                value: v,
                nb: model.nb(),
                gain_32_full: model.gain(32.0, 1.0),
            }
        })
        .collect()
}

/// Render a sensitivity sweep as CSV.
pub fn sensitivity_csv(parameter: SweepParameter, rows: &[SensitivityRow]) -> String {
    use std::fmt::Write as _;
    let name = match parameter {
        SweepParameter::CacheMissRate => "p_miss",
        SweepParameter::LwpCycleTime => "lwp_cycle_ns",
        SweepParameter::LwpMemoryCycles => "lwp_memory_cycles",
        SweepParameter::HwpMemoryCycles => "hwp_memory_cycles",
        SweepParameter::MemoryMix => "memory_mix",
    };
    let mut out = format!("{name},nb,gain_n32_wl100\n");
    for r in rows {
        let _ = writeln!(out, "{:.4},{:.4},{:.4}", r.value, r.nb, r.gain_32_full);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worse_host_cache_lowers_nb() {
        let rows = nb_sensitivity(SweepParameter::CacheMissRate, &[0.01, 0.05, 0.1, 0.2, 0.5]);
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[1].nb < w[0].nb), "{rows:?}");
        // At 50% miss rate the host is so slow that a single PIM node breaks even.
        assert!(rows.last().unwrap().nb < 1.5);
    }

    #[test]
    fn slower_lwp_clock_raises_nb() {
        let rows = nb_sensitivity(SweepParameter::LwpCycleTime, &[1.0, 2.0, 5.0, 10.0, 20.0]);
        assert!(rows.windows(2).all(|w| w[1].nb > w[0].nb));
        // An LWP clocked like the host (1 ns) nearly matches it one-for-one on this mix.
        assert!(rows[0].nb < 2.5);
    }

    #[test]
    fn faster_pim_memory_lowers_nb() {
        let rows = nb_sensitivity(SweepParameter::LwpMemoryCycles, &[10.0, 20.0, 30.0, 60.0]);
        assert!(rows.windows(2).all(|w| w[1].nb > w[0].nb));
    }

    #[test]
    fn slower_host_memory_lowers_nb() {
        let rows = nb_sensitivity(SweepParameter::HwpMemoryCycles, &[30.0, 90.0, 200.0, 500.0]);
        assert!(rows.windows(2).all(|w| w[1].nb < w[0].nb));
    }

    #[test]
    fn memory_mix_moves_nb_toward_the_latency_ratio() {
        // With no memory operations NB is the pure clock ratio (5); as the mix becomes
        // memory-dominated NB falls toward TML / (TCH + Pmiss*TMH) = 30/11 ≈ 2.7.
        let rows = nb_sensitivity(SweepParameter::MemoryMix, &[0.0, 0.3, 0.6, 1.0]);
        assert!((rows[0].nb - 5.0).abs() < 1e-12);
        assert!((rows.last().unwrap().nb - 30.0 / 11.0).abs() < 1e-9);
        assert!(rows.windows(2).all(|w| w[1].nb < w[0].nb));
    }

    #[test]
    fn gain_column_is_consistent_with_nb() {
        for row in nb_sensitivity(SweepParameter::CacheMissRate, &[0.05, 0.1, 0.2]) {
            assert!((row.gain_32_full - 32.0 / row.nb).abs() < 1e-9);
        }
    }

    #[test]
    fn csv_contains_header_and_rows() {
        let rows = nb_sensitivity(SweepParameter::CacheMissRate, &[0.1, 0.2]);
        let csv = sensitivity_csv(SweepParameter::CacheMissRate, &rows);
        assert!(csv.starts_with("p_miss,nb,gain_n32_wl100"));
        assert_eq!(csv.lines().count(), 3);
    }
}

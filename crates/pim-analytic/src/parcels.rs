//! Closed-form model of parcel latency hiding.
//!
//! The paper relates its parcel study to earlier analyses of multithreaded architectures
//! (Saavedra-Barrera et al., cited as \[27\]). The same machine-repairman argument applies
//! directly to split-transaction parcels:
//!
//! * a blocking (control) processor is busy for `R + 1` cycles out of every
//!   `R + 1 + 2L`, where `R` is the mean run of local work between remote accesses and
//!   `L` the one-way latency;
//! * a split-transaction (test) processor with `P` active parcels keeps its execution
//!   unit busy for `min(1, P·(R + 1 + o)/(R + 1 + o + 2L))` of the time, where `o` is
//!   the per-parcel handling overhead;
//! * the ratio of completed work follows by dividing the two work rates.
//!
//! This is the model used to sanity-check the Figure 11 simulation and to locate the
//! saturation point `P* = (R + 1 + o + 2L)/(R + 1 + o)` beyond which extra parallelism
//! buys nothing.

use pim_parcels::config::ParcelConfig;
use serde::{Deserialize, Serialize};

/// Closed-form predictions for one parcel-study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParcelAnalyticModel {
    /// The configuration the predictions are for.
    pub config: ParcelConfig,
}

impl ParcelAnalyticModel {
    /// Build the model.
    pub fn new(config: ParcelConfig) -> Self {
        config
            .validate()
            // audit:allow(unwrap-in-library): constructor contract — an invalid config is a caller bug and fails loudly
            .expect("invalid parcel-study configuration");
        ParcelAnalyticModel { config }
    }

    /// Mean cycles of local work between remote accesses plus the 1-cycle issue (`R + 1`).
    fn busy_per_cycle_control(&self) -> f64 {
        self.config.expected_run_cycles() + 1.0
    }

    /// CPU time per parcel cycle in the test system (`R + 1 + o`).
    fn busy_per_cycle_test(&self) -> f64 {
        self.config.expected_run_cycles() + 1.0 + self.config.parcel_overhead_cycles
    }

    /// Utilization of a blocking control processor.
    pub fn control_utilization(&self) -> f64 {
        let busy = self.busy_per_cycle_control();
        if !busy.is_finite() {
            return 1.0;
        }
        busy / (busy + self.config.round_trip_cycles())
    }

    /// Utilization of a split-transaction processor with the configured parallelism.
    pub fn test_utilization(&self) -> f64 {
        let busy = self.busy_per_cycle_test();
        if !busy.is_finite() {
            return 1.0;
        }
        let per_context = busy / (busy + self.config.round_trip_cycles());
        (self.config.parallelism as f64 * per_context).min(1.0)
    }

    /// Idle fraction of the control system.
    pub fn control_idle_fraction(&self) -> f64 {
        1.0 - self.control_utilization()
    }

    /// Idle fraction of the test system.
    pub fn test_idle_fraction(&self) -> f64 {
        1.0 - self.test_utilization()
    }

    /// Predicted ratio of work completed by the test system to the control system
    /// (the Figure 11 y-axis).
    pub fn ops_ratio(&self) -> f64 {
        let run = self.config.expected_run_cycles();
        if !run.is_finite() {
            // No remote accesses: both systems compute flat out.
            return 1.0;
        }
        if run <= 0.0 {
            return 1.0;
        }
        let control_rate = self.control_utilization() * run / self.busy_per_cycle_control();
        let test_rate = self.test_utilization() * run / self.busy_per_cycle_test();
        test_rate / control_rate
    }

    /// The parallelism beyond which the test system's execution unit saturates.
    pub fn saturation_parallelism(&self) -> f64 {
        let busy = self.busy_per_cycle_test();
        if !busy.is_finite() || busy <= 0.0 {
            return 1.0;
        }
        (busy + self.config.round_trip_cycles()) / busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_parcels::experiment::evaluate_point;

    fn config(parallelism: usize, latency: f64, remote: f64) -> ParcelConfig {
        ParcelConfig {
            nodes: 2,
            parallelism,
            latency_cycles: latency,
            remote_fraction: remote,
            horizon_cycles: 400_000.0,
            ..Default::default()
        }
    }

    #[test]
    fn ratio_saturates_at_one_plus_latency_over_run() {
        let m = ParcelAnalyticModel::new(config(10_000, 1_000.0, 0.4));
        // With unbounded parallelism the ratio approaches
        // (R + 1 + 2L)/(R + 1) x (R + 1)/(R + 1 + o) — roughly 1 + 2L/R for small o.
        let run = m.config.expected_run_cycles();
        let upper = (run + 1.0 + m.config.round_trip_cycles())
            / (run + 1.0 + m.config.parcel_overhead_cycles);
        assert!((m.ops_ratio() - upper).abs() < 1e-9);
        assert!(m.ops_ratio() > 10.0);
    }

    #[test]
    fn single_parcel_is_slightly_slower_than_blocking() {
        let m = ParcelAnalyticModel::new(config(1, 100.0, 0.4));
        assert!(m.ops_ratio() < 1.0);
        assert!(m.ops_ratio() > 0.8);
    }

    #[test]
    fn zero_remote_traffic_means_parity() {
        let m = ParcelAnalyticModel::new(config(8, 1_000.0, 0.0));
        assert!((m.ops_ratio() - 1.0).abs() < 1e-12);
        assert!((m.control_utilization() - 1.0).abs() < 1e-12);
        assert!((m.test_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_point_matches_definition() {
        let m = ParcelAnalyticModel::new(config(4, 1_000.0, 0.4));
        let p_star = m.saturation_parallelism();
        let below = ParcelAnalyticModel::new(config(p_star.floor() as usize - 1, 1_000.0, 0.4));
        let above = ParcelAnalyticModel::new(config(p_star.ceil() as usize + 1, 1_000.0, 0.4));
        assert!(below.test_utilization() < 1.0);
        assert!((above.test_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn model_tracks_the_simulation() {
        // The closed form ignores queueing/convoy effects (synchronized parcel returns
        // queueing behind one execution unit) and horizon end effects, so it runs a
        // little optimistic in the far-from-saturation, long-latency corner. 20% slack
        // covers that while still catching real modeling errors — the paper's own two
        // models differed by 5-18%.
        for (p, l, r) in [
            (1usize, 100.0, 0.2),
            (8, 1_000.0, 0.4),
            (32, 5_000.0, 0.6),
            (4, 10.0, 0.8),
        ] {
            let cfg = ParcelConfig {
                horizon_cycles: 800_000.0,
                ..config(p, l, r)
            };
            let analytic = ParcelAnalyticModel::new(cfg).ops_ratio();
            let simulated = evaluate_point(cfg, 1234).ops_ratio;
            let err = (analytic - simulated).abs() / simulated;
            assert!(
                err < 0.20,
                "P={p} L={l} r={r}: analytic {analytic:.3} vs simulated {simulated:.3} (err {err:.3})"
            );
        }
    }

    #[test]
    fn idle_fractions_are_complementary_to_utilization() {
        let m = ParcelAnalyticModel::new(config(4, 1_000.0, 0.4));
        assert!((m.control_idle_fraction() + m.control_utilization() - 1.0).abs() < 1e-12);
        assert!((m.test_idle_fraction() + m.test_utilization() - 1.0).abs() < 1e-12);
        // The test system is always at least as busy as the control system.
        assert!(m.test_utilization() >= m.control_utilization());
    }
}

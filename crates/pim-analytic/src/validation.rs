//! Validation of the analytical model against the queuing simulation (Section 3.1.2).
//!
//! The paper reports that the analytical model reproduced the simulation results "to an
//! accuracy of between 5% and 18%". Our queuing simulation and analytical model share
//! their parameter definitions exactly (the paper's two tools — SES/Workbench and
//! MATLAB — did not), so the residual error here is sampling noise and the
//! max-of-parallel-threads effect, typically a few percent. [`validate`] reproduces the
//! comparison and reports per-point and aggregate errors.

use crate::hwp_lwp::AnalyticModel;
use pim_core::config::SystemConfig;
use pim_core::experiment::{run_sweep, SweepSpec};
use pim_core::system::EvalMode;
use serde::{Deserialize, Serialize};

/// One compared design point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Node count.
    pub nodes: usize,
    /// Lightweight-work fraction.
    pub lwp_fraction: f64,
    /// Simulated test-system time (ns).
    pub simulated_ns: f64,
    /// Analytical test-system time (ns).
    pub analytic_ns: f64,
    /// `|analytic − simulated| / simulated`.
    pub relative_error: f64,
}

/// Aggregate comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Per-point rows.
    pub rows: Vec<ValidationRow>,
    /// Mean relative error across points.
    pub mean_relative_error: f64,
    /// Maximum relative error across points.
    pub max_relative_error: f64,
}

impl ValidationReport {
    /// Render the report as CSV.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("nodes,pct_lwp,simulated_ns,analytic_ns,rel_error_pct\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{:.0},{:.1},{:.1},{:.3}",
                r.nodes,
                r.lwp_fraction * 100.0,
                r.simulated_ns,
                r.analytic_ns,
                r.relative_error * 100.0
            );
        }
        out
    }
}

/// Compare the analytical model with the queuing simulation over `spec`.
///
/// `sim_mode` should be a [`EvalMode::Simulated`] variant; passing
/// [`EvalMode::Expected`] degenerates to comparing the formula with itself (zero error),
/// which is still useful as a consistency check.
pub fn validate(
    config: SystemConfig,
    spec: &SweepSpec,
    sim_mode: EvalMode,
    threads: usize,
) -> ValidationReport {
    validation_from_sweep(config, &run_sweep(config, spec, sim_mode, threads))
}

/// The comparison half of [`validate`]: score an already-evaluated sweep against the
/// closed form. Split out so callers that schedule the sweep's points themselves
/// (e.g. the `pim-harness` batch runner) can reuse the identical error computation.
pub fn validation_from_sweep(
    config: SystemConfig,
    sweep: &pim_core::experiment::SweepResult,
) -> ValidationReport {
    let analytic = AnalyticModel::new(config);
    let mut rows = Vec::with_capacity(sweep.points.len());
    for p in &sweep.points {
        let a = analytic.test_time_ns(p.nodes as f64, p.lwp_fraction);
        let err = if p.test_ns > 0.0 {
            (a - p.test_ns).abs() / p.test_ns
        } else {
            0.0
        };
        rows.push(ValidationRow {
            nodes: p.nodes,
            lwp_fraction: p.lwp_fraction,
            simulated_ns: p.test_ns,
            analytic_ns: a,
            relative_error: err,
        });
    }
    let mean = if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(|r| r.relative_error).sum::<f64>() / rows.len() as f64
    };
    let max = rows.iter().map(|r| r.relative_error).fold(0.0, f64::max);
    ValidationReport {
        rows,
        mean_relative_error: mean,
        max_relative_error: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            node_counts: vec![1, 4, 16, 64],
            lwp_fractions: vec![0.0, 0.3, 0.7, 1.0],
        }
    }

    #[test]
    fn expected_mode_gives_zero_error() {
        let r = validate(SystemConfig::table1(), &small_spec(), EvalMode::Expected, 2);
        assert_eq!(r.rows.len(), 16);
        assert!(
            r.max_relative_error < 1e-9,
            "max error {}",
            r.max_relative_error
        );
    }

    #[test]
    fn simulated_mode_error_is_small_and_well_within_the_papers_band() {
        // The paper saw 5-18% between its two independently built models; ours share
        // parameter definitions, so the residual (sampling noise) must be well under 5%.
        let r = validate(
            SystemConfig::table1(),
            &small_spec(),
            EvalMode::sampled(7),
            4,
        );
        assert!(
            r.max_relative_error < 0.05,
            "max error {}",
            r.max_relative_error
        );
        assert!(
            r.mean_relative_error < 0.02,
            "mean error {}",
            r.mean_relative_error
        );
        assert!(r.mean_relative_error <= r.max_relative_error);
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let r = validate(SystemConfig::table1(), &small_spec(), EvalMode::Expected, 1);
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + 16);
        assert!(csv.starts_with("nodes,pct_lwp"));
    }
}

//! # pim-analytic — closed-form models of the PIM design tradeoffs
//!
//! The paper pairs every simulation study with an analytical model. This crate holds
//! those closed forms and their validation against the discrete-event simulations:
//!
//! * [`hwp_lwp::AnalyticModel`] — `Time_relative = 1 − %WL·(1 − NB/N)` and the
//!   break-even parameter `NB` (Section 3.1.2, Figure 7);
//! * [`validation`] — the analytic-versus-simulation comparison the paper quotes as
//!   "an accuracy of between 5% and 18%";
//! * [`parcels::ParcelAnalyticModel`] — a Saavedra-Barrera-style multithreading model
//!   of split-transaction latency hiding, used to sanity-check Figure 11;
//! * [`sweep`] — sensitivity of `NB` to the machine constants (ablation).
//!
//! ```
//! use pim_analytic::hwp_lwp::AnalyticModel;
//!
//! let model = AnalyticModel::table1();
//! assert!((model.nb() - 3.125).abs() < 1e-12);
//! // At the coincidence point N = NB every %WL curve has relative time 1.
//! assert!((model.time_relative(model.nb(), 0.7) - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod hwp_lwp;
pub mod parcels;
pub mod sweep;
pub mod validation;

pub use hwp_lwp::AnalyticModel;
pub use parcels::ParcelAnalyticModel;
pub use sweep::{nb_sensitivity, sensitivity_csv, SensitivityRow, SweepParameter};
pub use validation::{validate, validation_from_sweep, ValidationReport, ValidationRow};

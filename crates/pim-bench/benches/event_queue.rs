//! Engine ablation bench: binary-heap versus calendar-queue pending event sets, and raw
//! queuing-network throughput of the `desim` engine (events per second), which bounds
//! how large a parameter sweep the harness can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desim::event::{BinaryHeapQueue, CalendarQueue, EventId, EventQueue, ScheduledEvent};
use desim::prelude::*;
use std::hint::black_box;

fn hold_model(queue_kind: &str, events: u64) -> u64 {
    // A classic "hold" workload: pop the minimum, push a replacement at a random offset.
    struct Hold {
        remaining: u64,
        stream: RandomStream,
    }
    impl Model for Hold {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, _ev: u32, sched: &mut Scheduler<u32>) {
            if self.remaining > 0 {
                self.remaining -= 1;
                let dt = SimDuration::from_ns(self.stream.below(1000) + 1);
                sched.schedule_in(dt, 0);
            }
        }
    }
    let model = Hold {
        remaining: events,
        stream: RandomStream::new(9, 9),
    };
    let processed = match queue_kind {
        "heap" => {
            let mut sim = Simulation::with_queue(model, BinaryHeapQueue::new());
            for i in 0..64 {
                sim.scheduler().schedule_at(SimTime::from_ns(i), 0);
            }
            sim.run().events_processed
        }
        _ => {
            let mut sim = Simulation::with_queue(model, CalendarQueue::new(128, 256));
            for i in 0..64 {
                sim.scheduler().schedule_at(SimTime::from_ns(i), 0);
            }
            sim.run().events_processed
        }
    };
    processed
}

fn bench_event_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    group.sample_size(20);
    for kind in ["heap", "calendar"] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &k| {
            b.iter(|| black_box(hold_model(k, 20_000)))
        });
    }
    group.finish();
}

fn bench_raw_queue_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_push_pop");
    group.sample_size(20);
    group.bench_function("heap_10k", |b| {
        b.iter(|| {
            let mut q = BinaryHeapQueue::new();
            for i in 0..10_000u64 {
                q.push(ScheduledEvent {
                    time: SimTime::from_ticks((i * 2654435761) % 1_000_000),
                    priority: 0,
                    seq: i,
                    id: EventId(i),
                    payload: i,
                });
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.time.ticks());
            }
            black_box(sum)
        })
    });
    group.bench_function("calendar_10k", |b| {
        b.iter(|| {
            let mut q = CalendarQueue::new(64, 512);
            for i in 0..10_000u64 {
                q.push(ScheduledEvent {
                    time: SimTime::from_ticks((i * 2654435761) % 1_000_000),
                    priority: 0,
                    seq: i,
                    id: EventId(i),
                    payload: i,
                });
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.time.ticks());
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_qnet_mm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("qnet_mm1_throughput");
    group.sample_size(10);
    group.bench_function("mm1_500us", |b| {
        b.iter(|| {
            let mut net = QNetwork::new(1);
            let src = net.add_source("src", Dist::Exponential { mean: 20.0 }, 0, None);
            let cpu = net.add_service("cpu", 1, Dist::Exponential { mean: 10.0 });
            let sink = net.add_sink("sink");
            net.set_route(src, Routing::To(cpu));
            net.set_route(cpu, Routing::To(sink));
            black_box(net.run(SimTime::from_us(500)))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queues,
    bench_raw_queue_ops,
    bench_qnet_mm1
);
criterion_main!(benches);

//! Criterion bench behind E-F5/E-F6: cost of evaluating HWP/LWP design points, both in
//! closed form and through the queuing simulation, and of the full Figure 5 sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_core::prelude::*;
use std::hint::black_box;

fn bench_single_point(c: &mut Criterion) {
    let study = PartitionStudy::table1();
    let mut group = c.benchmark_group("study1_point");
    group.sample_size(20);
    group.bench_function("expected", |b| {
        b.iter(|| black_box(study.evaluate(black_box(32), black_box(0.7), EvalMode::Expected)))
    });
    for sim_ops in [50_000u64, 200_000] {
        group.bench_with_input(
            BenchmarkId::new("simulated", sim_ops),
            &sim_ops,
            |b, &ops| {
                b.iter(|| {
                    black_box(study.evaluate(
                        black_box(32),
                        black_box(0.7),
                        EvalMode::Simulated {
                            sim_ops: Some(ops),
                            ops_per_event: 64,
                            seed: 1,
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_figure5_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("study1_sweep");
    group.sample_size(10);
    let spec = SweepSpec::figure5_6();
    group.bench_function("figure5_expected_grid", |b| {
        b.iter(|| {
            black_box(run_sweep(
                SystemConfig::table1(),
                &spec,
                EvalMode::Expected,
                4,
            ))
        })
    });
    group.bench_function("figure5_simulated_grid_small", |b| {
        let mode = EvalMode::Simulated {
            sim_ops: Some(20_000),
            ops_per_event: 64,
            seed: 1,
        };
        b.iter(|| black_box(run_sweep(SystemConfig::table1(), &spec, mode, 4)))
    });
    group.finish();
}

criterion_group!(benches, bench_single_point, bench_figure5_sweep);
criterion_main!(benches);

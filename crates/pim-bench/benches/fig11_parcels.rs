//! Criterion bench behind E-F11/E-F12: cost of one parcel-study design point (both
//! systems) as the degree of parallelism and the node count grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_parcels::prelude::*;
use std::hint::black_box;

fn bench_point_by_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("study2_point_parallelism");
    group.sample_size(10);
    for parallelism in [1usize, 8, 32] {
        let config = ParcelConfig {
            nodes: 4,
            parallelism,
            latency_cycles: 1_000.0,
            remote_fraction: 0.4,
            horizon_cycles: 300_000.0,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(parallelism),
            &config,
            |b, &cfg| b.iter(|| black_box(evaluate_point(black_box(cfg), 7))),
        );
    }
    group.finish();
}

fn bench_point_by_nodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("study2_point_nodes");
    group.sample_size(10);
    for nodes in [4usize, 32, 128] {
        let config = ParcelConfig {
            nodes,
            parallelism: 8,
            latency_cycles: 1_000.0,
            remote_fraction: 0.4,
            horizon_cycles: 150_000.0,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &config, |b, &cfg| {
            b.iter(|| black_box(evaluate_point(black_box(cfg), 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_point_by_parallelism, bench_point_by_nodes);
criterion_main!(benches);

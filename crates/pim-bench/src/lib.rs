//! # pim-bench — benchmark harness and figure/table regeneration
//!
//! Every table and figure in the paper's evaluation has a report binary here that
//! regenerates its data as CSV (see DESIGN.md's per-experiment index), plus Criterion
//! benches that measure the cost of the underlying models and of the simulation engine
//! itself.
//!
//! The report binaries are thin wrappers over the scenario registry in `pim-harness`
//! (`pim_harness::bin_support::scenario_main`); the scenario definitions, the parallel
//! batch runner, the stdout/CSV rendering and the JSON artifact schema all live there,
//! and `pim-tradeoffs list|run` is the batch front end. Each binary prints CSV to
//! stdout and headline metrics to stderr; the `PIM_RESULTS_DIR` environment variable
//! saves each table as `<dir>/<table>.csv`, and `PIM_ARTIFACTS_DIR` additionally saves
//! the full JSON artifact.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod perf;

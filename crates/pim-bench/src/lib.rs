//! # pim-bench — benchmark harness and figure/table regeneration
//!
//! Every table and figure in the paper's evaluation has a report binary here that
//! regenerates its data as CSV (see DESIGN.md's per-experiment index), plus Criterion
//! benches that measure the cost of the underlying models and of the simulation engine
//! itself.
//!
//! Report binaries print CSV to stdout. If the `PIM_RESULTS_DIR` environment variable
//! is set, each binary also writes its CSV into that directory under
//! `<experiment>.csv`, which is how `EXPERIMENTS.md`'s measured numbers were produced.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::io::Write as _;
use std::path::PathBuf;

/// Number of worker threads to use for parameter sweeps.
pub fn sweep_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Print a report to stdout and, when `PIM_RESULTS_DIR` is set, save it as
/// `<dir>/<name>.csv`.
pub fn emit(name: &str, description: &str, csv: &str) {
    println!("# {name}: {description}");
    print!("{csv}");
    if let Ok(dir) = std::env::var("PIM_RESULTS_DIR") {
        let path = PathBuf::from(dir).join(format!("{name}.csv"));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let _ = f.write_all(csv.as_bytes());
                eprintln!("wrote {}", path.display());
            }
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

/// Shared, documented seed so every report run is reproducible.
pub const REPORT_SEED: u64 = 0x5C_2004;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(sweep_threads() >= 1);
    }

    #[test]
    fn emit_prints_without_results_dir() {
        // Just exercises the stdout path; no environment manipulation (tests run in
        // parallel and PIM_RESULTS_DIR is process-global).
        emit("unit-test", "test artifact", "a,b\n1,2\n");
    }
}
